"""Tests for the stash-augmented Cuckoo directory extension."""

import pytest

from repro.core.cuckoo_directory import CuckooDirectory
from repro.core.stashed_cuckoo import StashedCuckooDirectory
from repro.hashing.strong import StrongHashFamily


def make_directory(num_caches=4, sets=4, ways=2, stash=4, max_attempts=4, seed=1):
    return StashedCuckooDirectory(
        num_caches=num_caches,
        num_sets=sets,
        num_ways=ways,
        stash_entries=stash,
        max_insertion_attempts=max_attempts,
        hash_family=StrongHashFamily(ways, sets, seed=seed),
    )


def overflow_the_table(directory, blocks, cache_id=0):
    for block in range(blocks):
        directory.add_sharer(block, cache_id)


class TestBasics:
    def test_behaves_like_cuckoo_when_not_overflowing(self):
        directory = make_directory(sets=64, ways=4)
        directory.add_sharer(0x10, 1)
        directory.add_sharer(0x10, 2)
        assert directory.lookup(0x10).sharers == frozenset({1, 2})
        directory.remove_sharer(0x10, 1)
        directory.remove_sharer(0x10, 2)
        assert directory.entry_count() == 0
        assert directory.stash_occupancy == 0

    def test_capacity_includes_stash(self):
        directory = make_directory(sets=8, ways=2, stash=4)
        assert directory.capacity == 8 * 2 + 4

    def test_rejects_negative_stash(self):
        with pytest.raises(ValueError):
            make_directory(stash=-1)

    def test_zero_stash_recovers_plain_cuckoo_behaviour(self):
        stashed = make_directory(stash=0)
        plain = CuckooDirectory(
            num_caches=4,
            num_sets=4,
            num_ways=2,
            max_insertion_attempts=4,
            hash_family=StrongHashFamily(2, 4, seed=1),
        )
        overflow_the_table(stashed, 40)
        overflow_the_table(plain, 40)
        assert stashed.stats.forced_invalidations == plain.stats.forced_invalidations
        assert stashed.stash_occupancy == 0


class TestStashBehaviour:
    def test_overflow_victims_land_in_stash_not_invalidated(self):
        directory = make_directory(stash=8)
        # Insert more blocks than the 8-entry table can hold, but within the
        # combined table+stash capacity.
        overflow_the_table(directory, 12)
        assert directory.stash_insertions > 0
        assert directory.stats.forced_invalidations == 0
        # Every inserted block is still tracked somewhere.
        for block in range(12):
            assert directory.contains(block)

    def test_stash_entries_are_found_and_updatable(self):
        directory = make_directory(stash=8)
        overflow_the_table(directory, 12)
        stashed_blocks = [b for b in range(12) if b in directory._stash]
        assert stashed_blocks
        block = stashed_blocks[0]
        directory.add_sharer(block, 3)
        assert 3 in directory.lookup(block).sharers

    def test_stash_overflow_invalidates_oldest(self):
        directory = make_directory(stash=2)
        overflow_the_table(directory, 60)
        assert directory.stats.forced_invalidations > 0
        # The stash never exceeds its configured size.
        assert directory.stash_occupancy <= 2

    def test_stash_reduces_invalidations_versus_plain_cuckoo(self):
        stashed = make_directory(sets=8, ways=2, stash=8, seed=3)
        plain = CuckooDirectory(
            num_caches=4,
            num_sets=8,
            num_ways=2,
            max_insertion_attempts=4,
            hash_family=StrongHashFamily(2, 8, seed=3),
        )
        for block in range(22):
            stashed.add_sharer(block, 0)
            plain.add_sharer(block, 0)
        assert stashed.stats.forced_invalidations <= plain.stats.forced_invalidations
        assert stashed.entry_count() >= plain.entry_count()

    def test_removing_last_sharer_from_stash_frees_entry(self):
        directory = make_directory(stash=8)
        overflow_the_table(directory, 12)
        stashed_blocks = [b for b in range(12) if b in directory._stash]
        block = stashed_blocks[0]
        directory.remove_sharer(block, 0)
        assert not directory.lookup(block).found

    def test_stash_drains_back_into_table_when_space_frees(self):
        directory = make_directory(stash=8, seed=2)
        overflow_the_table(directory, 14)
        assert directory.stash_occupancy > 0
        before = directory.stash_occupancy
        # Free table entries by removing blocks that live in the table.
        table_blocks = [b for b in range(14) if b not in directory._stash]
        for block in table_blocks:
            directory.remove_sharer(block, 0)
        assert directory.stash_occupancy < before
        # Nothing was lost: the remaining tracked blocks are still found.
        for block in range(14):
            if block in directory._stash or directory._table.get(block) is not None:
                assert directory.contains(block)

    def test_statistics_still_consistent(self):
        directory = make_directory(stash=4)
        overflow_the_table(directory, 50)
        stats = directory.stats
        assert stats.insertions == 50
        assert sum(stats.attempt_histogram.values()) == 50
        assert stats.forced_invalidation_rate == pytest.approx(
            stats.forced_invalidations / stats.insertions
        )

    def test_acquire_exclusive_works_for_stashed_blocks(self):
        directory = make_directory(stash=8)
        overflow_the_table(directory, 12)
        stashed_blocks = [b for b in range(12) if b in directory._stash]
        block = stashed_blocks[0]
        directory.add_sharer(block, 2)
        result = directory.acquire_exclusive(block, 2)
        assert result.coherence_invalidations == frozenset({0})
        assert directory.lookup(block).sharers == frozenset({2})


class TestSharerPoolRecycling:
    def test_pool_does_not_grow_across_add_remove_cycles(self):
        """The stash variant must consume the sharer-set pool its inherited
        remove_sharer fills, or a long run leaks one dead set per removed
        entry (regression test for exactly that)."""
        directory = make_directory(sets=64, ways=4)
        for _ in range(5):
            for block in range(100):
                directory.add_sharer(block, 1)
            for block in range(100):
                directory.remove_sharer(block, 1)
        assert directory.entry_count() == 0
        # Steady state: every insertion pops what the removals pushed.
        assert len(directory._sharer_pool) <= 100

    def test_cuckoo_pool_bounded_by_entry_churn(self):
        directory = CuckooDirectory(
            num_caches=4, num_sets=64, num_ways=4,
            hash_family=StrongHashFamily(4, 64, seed=1),
        )
        for _ in range(5):
            for block in range(100):
                directory.add_sharer(block, 1)
            for block in range(100):
                directory.remove_sharer(block, 1)
        assert len(directory._sharer_pool) <= 100
