"""Tests for the Cuckoo directory organization."""

import pytest

from repro.core.cuckoo_directory import CuckooDirectory
from repro.directories.sharers import CoarseVector, HierarchicalVector
from repro.hashing.strong import StrongHashFamily


def make_directory(num_caches=8, sets=64, ways=4, **kwargs):
    return CuckooDirectory(
        num_caches=num_caches,
        num_sets=sets,
        num_ways=ways,
        hash_family=StrongHashFamily(ways, sets, seed=1),
        **kwargs,
    )


class TestBasicOperations:
    def test_lookup_miss(self):
        directory = make_directory()
        result = directory.lookup(0x100)
        assert not result.found
        assert result.sharers == frozenset()

    def test_add_sharer_creates_entry(self):
        directory = make_directory()
        result = directory.add_sharer(0x100, 3)
        assert result.inserted_new_entry
        assert result.attempts == 1
        lookup = directory.lookup(0x100)
        assert lookup.found
        assert lookup.sharers == frozenset({3})

    def test_add_second_sharer_does_not_reinsert(self):
        directory = make_directory()
        directory.add_sharer(0x100, 1)
        result = directory.add_sharer(0x100, 2)
        assert not result.inserted_new_entry
        assert result.attempts == 0
        assert directory.lookup(0x100).sharers == frozenset({1, 2})
        assert directory.stats.insertions == 1
        assert directory.stats.sharer_additions == 1

    def test_remove_last_sharer_frees_entry(self):
        directory = make_directory()
        directory.add_sharer(0x200, 0)
        directory.remove_sharer(0x200, 0)
        assert not directory.lookup(0x200).found
        assert directory.entry_count() == 0
        assert directory.stats.entry_removals == 1

    def test_remove_one_of_many_sharers_keeps_entry(self):
        directory = make_directory()
        directory.add_sharer(0x200, 0)
        directory.add_sharer(0x200, 5)
        directory.remove_sharer(0x200, 0)
        assert directory.lookup(0x200).sharers == frozenset({5})

    def test_remove_sharer_for_untracked_block_is_noop(self):
        directory = make_directory()
        directory.remove_sharer(0x300, 2)
        assert directory.entry_count() == 0

    def test_acquire_exclusive_invalidates_other_sharers(self):
        directory = make_directory()
        for cache in (0, 1, 2):
            directory.add_sharer(0x400, cache)
        result = directory.acquire_exclusive(0x400, 1)
        assert result.coherence_invalidations == frozenset({0, 2})
        assert directory.lookup(0x400).sharers == frozenset({1})

    def test_acquire_exclusive_on_untracked_block(self):
        directory = make_directory()
        result = directory.acquire_exclusive(0x500, 4)
        assert result.inserted_new_entry
        assert result.coherence_invalidations == frozenset()
        assert directory.lookup(0x500).sharers == frozenset({4})

    def test_acquire_exclusive_does_not_count_extra_insertion(self):
        directory = make_directory()
        for cache in range(4):
            directory.add_sharer(0x600, cache)
        before = directory.stats.insertions
        directory.acquire_exclusive(0x600, 0)
        assert directory.stats.insertions == before

    def test_occupancy(self):
        directory = make_directory(sets=16, ways=4)  # capacity 64
        for block in range(16):
            directory.add_sharer(block, 0)
        assert directory.occupancy() == pytest.approx(16 / 64)

    def test_capacity_and_geometry(self):
        directory = make_directory(sets=128, ways=3)
        assert directory.capacity == 384
        assert directory.num_ways == 3
        assert directory.num_sets == 128

    def test_rejects_bad_cache_id(self):
        directory = make_directory(num_caches=4)
        with pytest.raises(IndexError):
            directory.add_sharer(0x1, 4)
        with pytest.raises(IndexError):
            directory.remove_sharer(0x1, -1)

    def test_contains(self):
        directory = make_directory()
        directory.add_sharer(0x700, 2)
        assert directory.contains(0x700)
        assert not directory.contains(0x701)


class TestForcedInvalidations:
    def test_no_invalidations_at_half_occupancy(self):
        """The paper's key claim: at <=50% occupancy the Cuckoo directory
        never forces invalidations."""
        directory = make_directory(num_caches=4, sets=128, ways=4)  # capacity 512
        for block in range(256):
            result = directory.add_sharer(block, block % 4)
            assert result.forced_invalidation_count == 0
        assert directory.stats.forced_invalidations == 0

    def test_overflow_forces_invalidations_and_reports_them(self):
        directory = make_directory(num_caches=2, sets=4, ways=2,
                                   max_insertion_attempts=4)  # capacity 8
        reported = []
        for block in range(64):
            result = directory.add_sharer(block, 0)
            reported.extend(result.invalidations)
        assert reported
        assert directory.stats.forced_invalidations == len(reported)
        for invalidation in reported:
            # The evicted entry's sharers are exactly what must be invalidated.
            assert invalidation.caches == frozenset({0})
            assert not directory.contains(invalidation.address)

    def test_forced_invalidation_rate_matches_counts(self):
        directory = make_directory(num_caches=2, sets=4, ways=2,
                                   max_insertion_attempts=4)
        for block in range(64):
            directory.add_sharer(block, 1)
        stats = directory.stats
        assert stats.forced_invalidation_rate == pytest.approx(
            stats.forced_invalidations / stats.insertions
        )


class TestStatistics:
    def test_attempt_histogram_sums_to_insertions(self):
        directory = make_directory(sets=32, ways=4)
        for block in range(100):
            directory.add_sharer(block, 0)
        stats = directory.stats
        assert sum(stats.attempt_histogram.values()) == stats.insertions

    def test_average_attempts_at_least_one(self):
        directory = make_directory(sets=64, ways=4)
        for block in range(100):
            directory.add_sharer(block, 0)
        assert directory.stats.average_insertion_attempts >= 1.0

    def test_reset_stats(self):
        directory = make_directory()
        directory.add_sharer(1, 0)
        directory.reset_stats()
        assert directory.stats.insertions == 0
        # Contents survive a stats reset (only counters are cleared).
        assert directory.contains(1)

    def test_sample_occupancy_recorded(self):
        directory = make_directory(sets=16, ways=4)
        directory.add_sharer(1, 0)
        value = directory.sample_occupancy()
        assert value == pytest.approx(1 / 64)
        assert directory.stats.average_occupancy == pytest.approx(value)

    def test_bits_accounting_increases(self):
        directory = make_directory()
        directory.lookup(0x1)
        directory.add_sharer(0x1, 0)
        assert directory.stats.bits_read > 0
        assert directory.stats.bits_written > 0


class TestSharerRepresentations:
    def test_coarse_vector_entries(self):
        directory = make_directory(num_caches=16, sharer_cls=CoarseVector)
        for cache in range(6):
            directory.add_sharer(0x10, cache)
        sharers = directory.lookup(0x10).sharers
        assert set(range(6)) <= set(sharers)

    def test_hierarchical_vector_entries(self):
        directory = make_directory(num_caches=16, sharer_cls=HierarchicalVector)
        directory.add_sharer(0x20, 3)
        directory.add_sharer(0x20, 12)
        assert directory.lookup(0x20).sharers == frozenset({3, 12})

    def test_entry_bits_reflect_encoding(self):
        full = make_directory(num_caches=64)
        coarse = make_directory(num_caches=64, sharer_cls=CoarseVector)
        assert coarse.entry_bits < full.entry_bits


class TestPaperDesigns:
    def test_shared_l2_design_geometry(self):
        directory = CuckooDirectory.paper_shared_l2_design()
        assert directory.num_ways == 4
        assert directory.num_sets == 512
        assert directory.capacity == 2048

    def test_private_l2_design_geometry(self):
        directory = CuckooDirectory.paper_private_l2_design()
        assert directory.num_ways == 3
        assert directory.num_sets == 8192
        assert directory.capacity == 24576
