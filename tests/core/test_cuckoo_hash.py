"""Tests for the d-ary cuckoo hash table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cuckoo_hash import CuckooHashTable, InsertOutcome
from repro.hashing.strong import StrongHashFamily


def make_table(ways=4, sets=64, max_attempts=32, seed=0):
    return CuckooHashTable(
        num_ways=ways,
        num_sets=sets,
        hash_family=StrongHashFamily(ways, sets, seed=seed),
        max_attempts=max_attempts,
    )


class TestBasics:
    def test_empty_table(self):
        table = make_table()
        assert len(table) == 0
        assert table.occupancy() == 0.0
        assert 123 not in table
        assert table.get(123) is None
        assert table.get(123, "default") == "default"

    def test_capacity(self):
        table = make_table(ways=3, sets=100)
        assert table.capacity == 300

    def test_insert_and_find(self):
        table = make_table()
        result = table.insert(0xABC, "value")
        assert result.outcome is InsertOutcome.INSERTED
        assert result.attempts == 1
        assert 0xABC in table
        assert table.get(0xABC) == "value"
        assert len(table) == 1

    def test_insert_existing_key_updates_value(self):
        table = make_table()
        table.insert(7, "a")
        result = table.insert(7, "b")
        assert result.outcome is InsertOutcome.UPDATED
        assert result.attempts == 0
        assert table.get(7) == "b"
        assert len(table) == 1

    def test_remove(self):
        table = make_table()
        table.insert(42)
        assert table.remove(42) is True
        assert 42 not in table
        assert len(table) == 0

    def test_remove_absent_key(self):
        table = make_table()
        assert table.remove(42) is False

    def test_clear(self):
        table = make_table()
        for key in range(50):
            table.insert(key)
        table.clear()
        assert len(table) == 0
        assert all(key not in table for key in range(50))

    def test_items_and_keys(self):
        table = make_table()
        expected = {}
        for key in range(20):
            table.insert(key, key * 10)
            expected[key] = key * 10
        assert dict(table.items()) == expected
        assert set(table.keys()) == set(expected)

    def test_candidate_slots_one_per_way(self):
        table = make_table(ways=3)
        slots = table.candidate_slots(99)
        assert len(slots) == 3
        assert [w for w, _ in slots] == [0, 1, 2]

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CuckooHashTable(num_ways=1, num_sets=16)
        with pytest.raises(ValueError):
            CuckooHashTable(num_ways=2, num_sets=0)
        with pytest.raises(ValueError):
            CuckooHashTable(num_ways=2, num_sets=16, max_attempts=0)

    def test_rejects_mismatched_hash_family(self):
        with pytest.raises(ValueError):
            CuckooHashTable(
                num_ways=4, num_sets=64, hash_family=StrongHashFamily(2, 64)
            )


class TestDisplacement:
    def test_displacement_preserves_all_keys(self):
        """Displacement moves entries but never loses them (until the cap)."""
        table = make_table(ways=4, sets=64)
        keys = list(range(1000, 1000 + 180))  # 70% of 256 capacity
        for key in keys:
            result = table.insert(key, key)
            assert result.success
        for key in keys:
            assert table.get(key) == key
        assert len(table) == len(keys)

    def test_high_occupancy_insertions_use_multiple_attempts(self):
        table = make_table(ways=4, sets=32)
        multi_attempt = 0
        for key in range(int(table.capacity * 0.95)):
            result = table.insert(key)
            if result.attempts > 1:
                multi_attempt += 1
        assert multi_attempt > 0

    def test_eviction_reports_the_lost_key(self):
        table = make_table(ways=2, sets=4, max_attempts=4)
        evicted = []
        inserted = []
        for key in range(200):
            result = table.insert(key, key * 3)
            inserted.append(key)
            if result.evicted:
                evicted.append((result.evicted_key, result.evicted_value))
        assert evicted, "a tiny 2-way table must eventually overflow"
        for key, value in evicted:
            assert value == key * 3
        # Size accounting: inserted - evicted - still resident == 0.
        assert len(table) == len(set(inserted)) - len(evicted)

    def test_evicted_key_is_no_longer_findable(self):
        table = make_table(ways=2, sets=2, max_attempts=2)
        lost = None
        for key in range(50):
            result = table.insert(key)
            if result.evicted:
                lost = result.evicted_key
                break
        assert lost is not None
        assert lost not in table

    def test_attempts_never_exceed_cap(self):
        table = make_table(ways=3, sets=16, max_attempts=8)
        for key in range(200):
            result = table.insert(key)
            assert result.attempts <= 8

    def test_full_table_stays_full_not_over(self):
        table = make_table(ways=2, sets=8, max_attempts=16)
        for key in range(500):
            table.insert(key)
        assert len(table) <= table.capacity

    def test_way_occupancies_are_balanced(self):
        """The round-robin start way keeps ways roughly equally full."""
        table = make_table(ways=4, sets=256)
        for key in range(int(table.capacity * 0.6)):
            table.insert(key)
        occupancies = table.way_occupancies()
        assert max(occupancies) - min(occupancies) < 0.25

    def test_low_occupancy_single_attempt(self):
        """Below 50% occupancy 3+-ary insertions almost always take 1 attempt
        (Figure 7's observation)."""
        table = make_table(ways=4, sets=512)
        attempts = []
        for key in range(table.capacity // 2):
            attempts.append(table.insert(key).attempts)
        average = sum(attempts) / len(attempts)
        assert average < 1.3

    def test_occupancy_tracks_size(self):
        table = make_table(ways=4, sets=16)
        for key in range(32):
            table.insert(key)
        assert table.occupancy() == pytest.approx(32 / 64)


class TestHashFamilies:
    def test_works_with_default_skewing_family(self):
        table = CuckooHashTable(num_ways=4, num_sets=64)
        for key in range(100):
            assert table.insert(key).success
        assert len(table) == 100

    def test_three_way_table(self):
        table = make_table(ways=3, sets=128)
        for key in range(256):
            table.insert(key)
        assert len(table) == 256


@given(
    keys=st.lists(st.integers(min_value=0, max_value=1 << 32), max_size=120, unique=True)
)
@settings(max_examples=60, deadline=None)
def test_property_inserted_keys_retrievable_until_evicted(keys):
    """Every key is either retrievable or was explicitly reported evicted."""
    table = make_table(ways=4, sets=48, max_attempts=16, seed=11)
    evicted = set()
    for key in keys:
        result = table.insert(key, key)
        if result.evicted:
            evicted.add(result.evicted_key)
    for key in keys:
        if key in evicted:
            assert key not in table
        else:
            assert table.get(key) == key
    assert len(table) == len(set(keys)) - len(evicted)


@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["insert", "remove"]), st.integers(0, 60)),
        max_size=200,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_matches_reference_dict_when_capacity_sufficient(operations):
    """With plenty of capacity the table behaves exactly like a dict."""
    table = make_table(ways=4, sets=64, seed=5)  # capacity 256 >> 61 keys
    reference = {}
    for op, key in operations:
        if op == "insert":
            result = table.insert(key, key * 7)
            assert result.success
            reference[key] = key * 7
        else:
            assert table.remove(key) == (key in reference)
            reference.pop(key, None)
    assert dict(table.items()) == reference
    assert len(table) == len(reference)


class TestIndicesCacheBoundary:
    """The key -> candidate-indices cache evicts FIFO at its bound."""

    def test_fifo_eviction_at_the_limit(self, monkeypatch):
        import repro.core.cuckoo_hash as module

        monkeypatch.setattr(module, "_INDICES_CACHE_LIMIT", 4)
        table = make_table()
        for key in range(4):
            table._indices_of(key)
        assert list(table._indices_cache) == [0, 1, 2, 3]

        # One past the bound: exactly the oldest entry (key 0) leaves.
        table._indices_of(4)
        assert list(table._indices_cache) == [1, 2, 3, 4]

        # A cache hit must not reorder or evict anything (FIFO, not LRU).
        table._indices_of(2)
        assert list(table._indices_cache) == [1, 2, 3, 4]

        # The next miss still evicts insertion-order-oldest, not
        # least-recently-used.
        table._indices_of(5)
        assert list(table._indices_cache) == [2, 3, 4, 5]

    def test_cached_and_recomputed_indices_agree(self, monkeypatch):
        import repro.core.cuckoo_hash as module

        monkeypatch.setattr(module, "_INDICES_CACHE_LIMIT", 2)
        table = make_table()
        fresh = [table._indices_fn(key) for key in range(6)]
        for key in range(6):  # every lookup past key 1 evicts one entry
            assert table._indices_of(key) == fresh[key]
        for key in range(6):  # re-probe: half cached, half recomputed
            assert table._indices_of(key) == fresh[key]
        assert len(table._indices_cache) == 2

    def test_table_operations_survive_a_tiny_cache(self, monkeypatch):
        import repro.core.cuckoo_hash as module

        monkeypatch.setattr(module, "_INDICES_CACHE_LIMIT", 1)
        table = make_table()
        for key in range(100):
            assert table.insert(key, key * 3).success
        for key in range(100):
            assert table.get(key) == key * 3
        for key in range(0, 100, 2):
            assert table.remove(key)
        assert len(table) == 50
        assert table.get(51) == 153
