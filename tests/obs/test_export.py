"""Export formats: golden-pinned JSON snapshot shape and Prometheus text."""

import json

from repro.obs import export
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def _populated():
    registry = MetricsRegistry()
    registry.enable()
    registry.counter("sim.batch.chunks", help="Chunks simulated.").add(3)
    registry.gauge("engine.workers").set(2)
    hist = registry.histogram("store.put_bytes", buckets=[100, 1000])
    hist.observe(50)
    hist.observe(500)
    hist.observe(5000)
    tracer = Tracer()
    tracer._totals["batch_kernel"] = [4, 2.5, 2.5]
    tracer._totals["translate"] = [4, 0.5, 0.5]
    return registry, tracer


class TestJsonSnapshot:
    def test_golden_document_shape(self):
        registry, tracer = _populated()
        document = export.snapshot(registry, tracer, meta={"command": "sweep"})
        # Golden pin: this exact shape is the repro-obs/1 contract that
        # EXPERIMENTS.md's dump-diffing workflow depends on.
        assert document == {
            "schema": "repro-obs/1",
            "meta": {"command": "sweep"},
            "metrics": {
                "counters": {"sim.batch.chunks": 3},
                "gauges": {"engine.workers": 2},
                "histograms": {
                    "store.put_bytes": {
                        "count": 3,
                        "sum": 5550.0,
                        "buckets": {"100": 1, "1000": 1, "+Inf": 1},
                    }
                },
            },
            "phases": {
                "batch_kernel": {
                    "count": 4,
                    "total_seconds": 2.5,
                    "self_seconds": 2.5,
                },
                "translate": {
                    "count": 4,
                    "total_seconds": 0.5,
                    "self_seconds": 0.5,
                },
            },
        }

    def test_meta_omitted_when_empty(self):
        registry, tracer = _populated()
        assert "meta" not in export.snapshot(registry, tracer)

    def test_write_snapshot_round_trips(self, tmp_path):
        registry, tracer = _populated()
        path = export.write_snapshot(tmp_path / "nested" / "dump.json", registry, tracer)
        loaded = json.loads(path.read_text())
        assert loaded == export.snapshot(registry, tracer)
        assert loaded["schema"] == export.SCHEMA


class TestPrometheusText:
    def test_golden_counter_and_gauge_lines(self):
        registry, tracer = _populated()
        text = export.to_prometheus_text(registry, tracer)
        assert "# HELP repro_sim_batch_chunks Chunks simulated.\n" in text
        assert "# TYPE repro_sim_batch_chunks counter\n" in text
        assert "repro_sim_batch_chunks 3\n" in text
        assert "# TYPE repro_engine_workers gauge\n" in text
        assert "repro_engine_workers 2\n" in text

    def test_histogram_buckets_are_cumulative(self):
        registry, tracer = _populated()
        text = export.to_prometheus_text(registry, tracer)
        assert 'repro_store_put_bytes_bucket{le="100"} 1\n' in text
        assert 'repro_store_put_bytes_bucket{le="1000"} 2\n' in text
        assert 'repro_store_put_bytes_bucket{le="+Inf"} 3\n' in text
        assert "repro_store_put_bytes_sum 5550\n" in text
        assert "repro_store_put_bytes_count 3\n" in text

    def test_phase_series(self):
        registry, tracer = _populated()
        text = export.to_prometheus_text(registry, tracer)
        assert 'repro_phase_seconds{phase="batch_kernel"} 2.5\n' in text
        assert 'repro_phase_count{phase="translate"} 4\n' in text

    def test_empty_registry_renders_empty(self):
        assert export.to_prometheus_text(MetricsRegistry(), Tracer()) == ""

    def test_dotted_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("a.b-c.d")
        text = export.to_prometheus_text(registry, Tracer())
        assert "repro_a_b_c_d 0" in text
