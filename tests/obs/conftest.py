"""Fixtures for the observability tests.

The metrics registry and tracer under test are module-level singletons
(that is the point: call sites hold them forever), so every test here
leaves them disabled and zeroed to keep the rest of the suite — which
assumes telemetry is off — hermetic.
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Disable + reset the global telemetry singletons around every test."""
    obs.disable()
    obs.reset()
    obs.clear_context()
    yield
    obs.disable()
    obs.reset()
    obs.clear_context()
