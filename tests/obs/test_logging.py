"""Structured logging: formatters, context injection, state replication."""

import io
import json
import logging

import pytest

from repro.obs.logging import (
    apply_logging_state,
    clear_context,
    current_context,
    get_logger,
    logging_state,
    set_context,
    setup_logging,
)


@pytest.fixture(autouse=True)
def restore_logging():
    """Leave the ``repro`` logger tree the way the suite found it."""
    yield
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)
    clear_context()


class TestContext:
    def test_set_and_clear(self):
        set_context(spec="abc123", workload="Oracle")
        assert current_context() == {"spec": "abc123", "workload": "Oracle"}
        set_context(spec=None)
        assert current_context() == {"workload": "Oracle"}
        clear_context()
        assert current_context() == {}


class TestGetLogger:
    def test_names_are_rooted_under_repro(self):
        assert get_logger("engine").name == "repro.engine"
        assert get_logger("repro.engine").name == "repro.engine"
        assert get_logger("repro").name == "repro"


class TestHumanFormat:
    def test_line_carries_level_logger_and_context(self):
        stream = io.StringIO()
        setup_logging(level="info", stream=stream)
        set_context(spec="deadbeef", workload="ocean")
        get_logger("engine").info("simulated %s", "a point")
        line = stream.getvalue().strip()
        assert " info " in line
        assert "repro.engine: simulated a point" in line
        assert "[spec=deadbeef workload=ocean]" in line

    def test_level_filtering(self):
        stream = io.StringIO()
        setup_logging(level="warning", stream=stream)
        get_logger("engine").info("suppressed")
        get_logger("engine").warning("kept")
        assert "suppressed" not in stream.getvalue()
        assert "kept" in stream.getvalue()


class TestJsonLines:
    def test_each_line_is_one_json_object(self):
        stream = io.StringIO()
        setup_logging(level="info", json_lines=True, stream=stream)
        set_context(spec="cafe01")
        logger = get_logger("engine")
        logger.info("first")
        logger.info("second")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["msg"] == "first"
        assert first["level"] == "info"
        assert first["logger"] == "repro.engine"
        assert first["spec"] == "cafe01"
        assert isinstance(first["ts"], float)

    def test_extra_fields_pass_through(self):
        stream = io.StringIO()
        setup_logging(level="info", json_lines=True, stream=stream)
        get_logger("engine").info("point done", extra={"elapsed": 1.25})
        record = json.loads(stream.getvalue())
        assert record["elapsed"] == 1.25


class TestSetup:
    def test_idempotent_reconfiguration_keeps_one_handler(self):
        stream = io.StringIO()
        setup_logging(level="info", stream=stream)
        setup_logging(level="debug", stream=stream)
        logger = logging.getLogger("repro")
        assert len(logger.handlers) == 1
        get_logger("engine").info("once")
        assert stream.getvalue().count("once") == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            setup_logging(level="loudest")


class TestStateReplication:
    def test_state_round_trips_into_a_fresh_process_shape(self):
        setup_logging(level="debug", json_lines=True, stream=io.StringIO())
        state = logging_state()
        assert state == {"level": "debug", "json_lines": True}
        # What a pool worker does with the shipped state:
        apply_logging_state(state)
        logger = logging.getLogger("repro")
        assert logger.level == logging.DEBUG
