"""Metrics registry: free disabled path, enable/disable swap, absorb."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NOOP,
    format_bound,
)


class TestDisabledPath:
    """Disabled instruments must cost one shared no-op call, nothing more."""

    def test_disabled_methods_are_the_shared_noop(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        histogram = registry.histogram("h")
        # Identity, not equality: every disabled method is literally the one
        # module-level function, so there is no per-instrument closure.
        assert counter.inc is NOOP
        assert counter.add is NOOP
        assert gauge.set is NOOP and gauge.inc is NOOP and gauge.dec is NOOP
        assert histogram.observe is NOOP

    def test_disabled_calls_record_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        histogram = registry.histogram("h")
        for _ in range(100):
            counter.inc()
            counter.add(5)
            histogram.observe(3.0)
        assert counter.value == 0
        assert histogram.count == 0
        assert histogram.sum == 0.0
        assert all(count == 0 for count in histogram.counts)

    def test_instrument_created_while_enabled_records_immediately(self):
        registry = MetricsRegistry()
        registry.enable()
        counter = registry.counter("late")
        counter.inc()
        assert counter.value == 1


class TestEnableDisable:
    def test_enable_swaps_in_recording_implementations(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        registry.enable()
        assert counter.inc is not NOOP
        counter.inc()
        counter.add(4)
        assert counter.value == 5

    def test_disable_swaps_noops_back_and_keeps_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        registry.enable()
        counter.add(7)
        registry.disable()
        assert counter.inc is NOOP
        counter.inc()  # free and ignored
        assert counter.value == 7

    def test_reset_zeroes_without_changing_enablement(self):
        registry = MetricsRegistry()
        registry.enable()
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        histogram = registry.histogram("h")
        counter.add(3)
        gauge.set(9.5)
        histogram.observe(2.0)
        registry.reset()
        assert counter.value == 0
        assert gauge.value == 0.0
        assert histogram.count == 0 and histogram.sum == 0.0
        assert registry.enabled
        counter.inc()
        assert counter.value == 1


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("same") is registry.counter("same")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("metric")

    def test_names_are_sorted(self):
        registry = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            registry.counter(name)
        assert registry.names() == ["alpha", "mid", "zeta"]


class TestHistogram:
    def test_buckets_partition_observations(self):
        registry = MetricsRegistry()
        registry.enable()
        histogram = registry.histogram("h", buckets=[1, 10])
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        snapshot = registry.snapshot()["histograms"]["h"]
        assert snapshot["buckets"] == {"1": 1, "10": 1, "+Inf": 1}
        assert snapshot["count"] == 3
        assert snapshot["sum"] == pytest.approx(55.5)

    def test_boundary_value_lands_in_its_le_bucket(self):
        registry = MetricsRegistry()
        registry.enable()
        histogram = registry.histogram("h", buckets=[1, 10])
        histogram.observe(1.0)  # le="1" bucket includes the bound itself
        assert registry.snapshot()["histograms"]["h"]["buckets"]["1"] == 1

    def test_default_buckets_are_powers_of_two(self):
        assert DEFAULT_BUCKETS[0] == 1
        assert all(b == 2 * a for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]))

    def test_empty_bucket_list_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=[])


class TestFormatBound:
    def test_integral_and_inf_bounds(self):
        assert format_bound(4.0) == "4"
        assert format_bound(float("inf")) == "+Inf"
        assert format_bound(0.5) == "0.5"


class TestAbsorb:
    """Cross-process merge semantics: counters add, gauges overwrite."""

    def _populated(self):
        registry = MetricsRegistry()
        registry.enable()
        registry.counter("c").add(10)
        registry.gauge("g").set(3.0)
        hist = registry.histogram("h", buckets=[1, 10])
        hist.observe(0.5)
        hist.observe(50.0)
        return registry

    def test_absorb_adds_counters_and_histograms(self):
        parent = self._populated()
        parent.absorb(self._populated().snapshot())
        snapshot = parent.snapshot()
        assert snapshot["counters"]["c"] == 20
        assert snapshot["histograms"]["h"]["count"] == 4
        assert snapshot["histograms"]["h"]["buckets"] == {"1": 2, "10": 0, "+Inf": 2}

    def test_absorb_overwrites_gauges(self):
        parent = self._populated()
        worker = MetricsRegistry()
        worker.enable()
        worker.gauge("g").set(42.0)
        parent.absorb(worker.snapshot())
        assert parent.snapshot()["gauges"]["g"] == 42.0

    def test_absorb_creates_unknown_instruments(self):
        parent = MetricsRegistry()
        parent.absorb(self._populated().snapshot())
        snapshot = parent.snapshot()
        assert snapshot["counters"]["c"] == 10
        assert snapshot["histograms"]["h"]["count"] == 2
