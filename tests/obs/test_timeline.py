"""Unit tests for the counter-timeline layer (:mod:`repro.obs.timeline`).

Collection is driven through a fake system here — the simulator-facing
integration (sampling points, kernel identity) lives in
``tests/coherence/test_timeline_identity.py``.
"""

import numpy as np
import pytest

from repro import obs
from repro.obs.timeline import (
    ATTEMPT_CHAIN_BINS,
    CHANNEL_NAMES,
    COUNTER_CHANNELS,
    Timeline,
    load_timeline,
    save_timeline,
    sparkline,
    unknown_channels_message,
)


class FakeSystem:
    """Feeds deterministic, advancing counters to ``Timeline.sample``."""

    def __init__(self, banks=2):
        self.banks = banks
        self.ticks = 0

    def timeline_counters(self):
        self.ticks += 1
        t = self.ticks
        return {
            "forced_invalidations": t,
            "insertions": 10 * t,
            "insertion_attempts": 12 * t,
            "stash_occupancy": t % 3,
            "tracked_hit_rate": 0.5 + 0.01 * t,
            "shared_l2_hit_rate": 0.25,
            "total_messages": 100 * t,
            "traffic_bytes": 6400 * t,
            "traffic_hops": 300 * t,
        }

    def bank_occupancies(self):
        return [0.1 * self.ticks + 0.05 * bank for bank in range(self.banks)]

    def attempt_chain_bins(self, bins):
        assert bins == ATTEMPT_CHAIN_BINS
        return [8 * self.ticks, 2 * self.ticks, self.ticks, 0, 0]


def _collected(banks=2, samples=3):
    timeline = Timeline(occupancy_interval=100, interval=50, banks=banks)
    system = FakeSystem(banks=banks)
    for i in range(samples):
        timeline.record_occupancy(0.1 * (i + 1))
        timeline.sample(system)
    return timeline


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Timeline(occupancy_interval=0)
        with pytest.raises(ValueError):
            Timeline(occupancy_interval=100, interval=0)
        with pytest.raises(ValueError):
            Timeline(occupancy_interval=100, banks=0)
        with pytest.raises(ValueError):
            Timeline(occupancy_interval=100, mode="bogus")

    def test_disabled_timeline_only_collects_occupancy(self):
        timeline = Timeline(occupancy_interval=100)
        assert not timeline.enabled
        assert timeline.channel_names() == ["occupancy"]
        timeline.record_occupancy(0.5)
        assert timeline.occupancy_list() == [0.5]
        with pytest.raises(KeyError, match="not collected"):
            timeline.channel("forced_invalidations")

    def test_enabled_timeline_has_every_channel(self):
        timeline = Timeline(occupancy_interval=100, interval=50, banks=4)
        assert timeline.enabled
        assert timeline.channel_names() == list(CHANNEL_NAMES)

    def test_unknown_channel_raises_with_valid_names(self):
        timeline = _collected()
        with pytest.raises(KeyError, match="expected: occupancy"):
            timeline.channel("bogus")


class TestCollection:
    def test_sample_shapes_and_cadences(self):
        timeline = _collected(banks=2, samples=3)
        assert timeline.channel("occupancy").shape == (3,)
        assert timeline.channel("occupancy_banks").shape == (3, 2)
        assert timeline.channel("attempt_chains").shape == (3, ATTEMPT_CHAIN_BINS)
        assert timeline.channel_cadence("occupancy") == 100
        assert timeline.channel_cadence("forced_invalidations") == 50
        for name in COUNTER_CHANNELS:
            assert timeline.num_samples(name) == 3

    def test_attempt_chains_are_differenced_per_sample(self):
        timeline = _collected(samples=3)
        # FakeSystem reports a cumulative histogram of 8t,2t,t,0,0 — each
        # sample must record only the increment since the previous one.
        chains = timeline.channel("attempt_chains")
        assert chains.tolist() == [[8, 2, 1, 0, 0]] * 3

    def test_mark_reset_restarts_the_chain_baseline(self):
        timeline = Timeline(occupancy_interval=100, interval=50, banks=2)
        system = FakeSystem()
        timeline.sample(system)
        timeline.mark_reset()
        system.ticks = 0  # the simulated machine's stats reset too
        timeline.sample(system)
        chains = timeline.channel("attempt_chains")
        assert chains.tolist() == [[8, 2, 1, 0, 0], [8, 2, 1, 0, 0]]

    def test_window_mode_has_no_cadence(self):
        timeline = Timeline(occupancy_interval=100, interval=50, mode="window")
        assert timeline.channel_cadence("occupancy") is None
        assert timeline.channel_cadence("insertions") is None


class TestDisplaySeries:
    def test_cumulative_channels_render_interval_deltas(self):
        timeline = _collected(samples=3)
        # insertions go 10, 20, 30 cumulatively -> 10/interval each.
        assert timeline.display_series("insertions").tolist() == [10.0, 10.0, 10.0]

    def test_window_mode_keeps_per_window_totals(self):
        timeline = Timeline(occupancy_interval=100, interval=50, banks=2, mode="window")
        system = FakeSystem()
        for _ in range(3):
            timeline.sample(system)
            timeline.mark_reset()
        # Window stats reset between samples; differencing would produce
        # nonsense, so the per-window totals must pass through unchanged.
        assert timeline.display_series("insertions").tolist() == [10.0, 20.0, 30.0]

    def test_vector_channels_collapse(self):
        timeline = _collected(banks=2, samples=2)
        banks = timeline.channel("occupancy_banks")
        np.testing.assert_allclose(
            timeline.display_series("occupancy_banks"), banks.mean(axis=1)
        )
        chains = timeline.channel("attempt_chains")
        np.testing.assert_allclose(
            timeline.display_series("attempt_chains"), chains.sum(axis=1)
        )


class TestSparkline:
    def test_empty_and_flat_series(self):
        assert sparkline([]) == ""
        assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"

    def test_short_series_one_block_per_value(self):
        line = sparkline([0.0, 1.0])
        assert len(line) == 2
        assert line[0] == "▁" and line[1] == "█"

    def test_long_series_downsamples_to_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40

    def test_non_finite_values_are_dropped(self):
        assert len(sparkline([0.0, float("nan"), 1.0])) == 2


class TestRender:
    def test_render_contains_channels_and_rates(self):
        text = _collected().render()
        assert "occupancy" in text
        assert "insertions/interval" in text  # cumulative channels as rates
        assert "▁" in text or "█" in text

    def test_render_rejects_unknown_channels(self):
        with pytest.raises(ValueError, match="unknown channel"):
            _collected().render(channels=["nope"])

    def test_render_subset_only_shows_requested(self):
        text = _collected().render(channels=["occupancy"])
        assert "occupancy" in text
        assert "traffic_bytes" not in text


class TestUnknownChannelsMessage:
    def test_lists_every_valid_name(self):
        message = unknown_channels_message(["typo"])
        assert message.startswith("unknown channel(s): typo")
        for name in CHANNEL_NAMES:
            assert name in message

    def test_silent_on_valid_or_empty(self):
        assert unknown_channels_message(None) is None
        assert unknown_channels_message([]) is None
        assert unknown_channels_message(["occupancy", "traffic_bytes"]) is None


class TestTransportAndStorage:
    def test_payload_roundtrip_is_equal(self):
        timeline = _collected()
        clone = Timeline.from_payload(timeline.to_payload())
        assert clone == timeline

    def test_payload_schema_is_checked(self):
        with pytest.raises(ValueError, match="schema"):
            Timeline.from_payload({"schema": "bogus"})

    def test_save_load_roundtrip_is_exact(self, tmp_path):
        timeline = _collected(banks=3, samples=5)
        path = tmp_path / "tl.npz"
        written = save_timeline(path, timeline)
        assert written == path.stat().st_size > 0
        loaded = load_timeline(path)
        assert loaded == timeline
        for name in timeline.channel_names():
            assert loaded.channel(name).dtype == timeline.channel(name).dtype

    def test_saved_bytes_are_deterministic(self, tmp_path):
        a = save_timeline(tmp_path / "a.npz", _collected())
        b = save_timeline(tmp_path / "b.npz", _collected())
        assert a == b
        assert (tmp_path / "a.npz").read_bytes() == (tmp_path / "b.npz").read_bytes()

    def test_roundtrip_preserves_values_needing_wide_deltas(self, tmp_path):
        timeline = Timeline(occupancy_interval=10, interval=5, banks=1)
        system = FakeSystem(banks=1)
        timeline.record_occupancy(1 / 3)  # not float32-exact
        timeline.sample(system)
        # Force a huge counter jump so int deltas cannot narrow to int8/16.
        system.ticks = 10_000_000
        timeline.sample(system)
        loaded = load_timeline(
            (lambda p: (save_timeline(p, timeline), p)[1])(tmp_path / "wide.npz")
        )
        assert loaded == timeline
        assert loaded.occupancy_list() == [1 / 3]


class TestGauges:
    def test_publish_gauges_sets_last_values(self):
        obs.enable()
        timeline = _collected(samples=2)
        timeline.publish_gauges()
        snapshot = obs.REGISTRY.snapshot()
        gauges = snapshot["gauges"]
        assert gauges["timeline.last.occupancy"] == pytest.approx(0.2)
        assert gauges["timeline.last.insertions"] == 20.0
        # Vector channels have no scalar "last" gauge.
        assert "timeline.last.occupancy_banks" not in gauges

    def test_publish_gauges_noop_when_disabled(self):
        _collected().publish_gauges()  # must not raise or enable anything
        assert not obs.REGISTRY.enabled


class TestExports:
    def test_json_dict_schema(self):
        document = _collected().to_json_dict()
        assert document["schema"] == "repro-timeline/1"
        assert document["mode"] == "interval"
        assert set(document["channels"]) == set(CHANNEL_NAMES)
        occupancy = document["channels"]["occupancy"]
        assert occupancy["kind"] == "gauge"
        assert occupancy["interval"] == 100
        assert occupancy["values"] == [
            pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.3)
        ]

    def test_csv_is_tidy_with_lane_expansion(self):
        lines = _collected(banks=2, samples=2).to_csv().strip().splitlines()
        assert lines[0] == "channel,lane,sample,accesses,value"
        banks_rows = [line for line in lines if line.startswith("occupancy_banks,")]
        assert len(banks_rows) == 4  # 2 samples x 2 lanes
        # accesses column carries the sample's cadence position
        assert banks_rows[0].split(",")[3] == "50"
