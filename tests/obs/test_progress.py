"""Sweep progress: monitor accounting, heartbeats across fork and spawn,
throttled rendering."""

import io
import multiprocessing
import time

import pytest

from repro import obs
from repro.engine.runner import ParallelRunner
from repro.engine.spec import RunGrid
from repro.obs.progress import (
    ProgressRenderer,
    SweepMonitor,
    format_eta,
    format_progress_line,
    make_event,
)


class TestMakeEvent:
    def test_event_shape(self):
        before = time.time()
        kind, pid, timestamp, label = make_event("start", 1234, "Oracle")
        assert (kind, pid, label) == ("start", 1234, "Oracle")
        assert before <= timestamp <= time.time()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_event("explode", 1)


class TestSweepMonitor:
    def test_point_accounting(self):
        monitor = SweepMonitor()
        monitor.begin(4)
        monitor.point_finished("cached")
        monitor.point_finished("simulated")
        monitor.point_finished("simulated")
        monitor.point_finished("failed")
        assert monitor.done == 4
        assert monitor.cached == 1
        assert monitor.simulated == 2
        assert monitor.failed == 1

    def test_worker_events_build_health_rows(self):
        monitor = SweepMonitor()
        monitor.begin(2)
        monitor.record_worker_event(make_event("online", 10))
        monitor.record_worker_event(make_event("start", 10, "Oracle"))
        monitor.record_worker_event(make_event("heartbeat", 10, "Oracle"))
        monitor.record_worker_event(make_event("done", 10, "Oracle"))
        assert monitor.worker_count() == 1
        (row,) = monitor.workers()
        assert row["pid"] == 10
        assert row["beats"] == 4
        assert row["points_done"] == 1
        assert row["current"] == ""  # cleared by "done"

    def test_start_sets_current_label(self):
        monitor = SweepMonitor()
        monitor.record_worker_event(make_event("start", 7, "ocean"))
        assert monitor.workers()[0]["current"] == "ocean"

    def test_eta_none_until_rate_exists(self):
        monitor = SweepMonitor(total=10)
        assert monitor.eta_seconds is None

    def test_snapshot_is_json_shaped(self):
        monitor = SweepMonitor()
        monitor.begin(3)
        monitor.point_finished("simulated")
        snapshot = monitor.snapshot()
        assert snapshot["total"] == 3
        assert snapshot["done"] == 1
        assert isinstance(snapshot["workers"], list)


class TestFormatting:
    def test_format_eta(self):
        assert format_eta(None) == "--:--"
        assert format_eta(65) == "01:05"
        assert format_eta(3725) == "1:02:05"

    def test_progress_line_contents(self):
        monitor = SweepMonitor()
        monitor.begin(8)
        monitor.started_at = time.time() - 2.0
        for _ in range(4):
            monitor.point_finished("simulated")
        monitor.point_finished("cached")
        monitor.point_finished("failed")
        line = format_progress_line(monitor, width=10)
        assert "6/8" in line
        assert "75.0%" in line
        assert "1 cached" in line
        assert "1 FAILED" in line
        assert "eta " in line

    def test_progress_line_handles_zero_total(self):
        line = format_progress_line(SweepMonitor())
        assert "0/0" in line


class TestProgressRenderer:
    def _monitor(self):
        monitor = SweepMonitor()
        monitor.begin(2)
        monitor.point_finished("simulated")
        return monitor

    def test_tty_mode_rewrites_in_place(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream, force_tty=True)
        renderer.update(self._monitor())
        assert stream.getvalue().startswith("\r")
        assert "\n" not in stream.getvalue()

    def test_finish_releases_the_tty_line(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream, force_tty=True)
        renderer.finish(self._monitor())
        assert stream.getvalue().endswith("\n")

    def test_plain_mode_writes_normal_lines(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream, force_tty=False)
        renderer.update(self._monitor(), force=True)
        value = stream.getvalue()
        assert "\r" not in value
        assert value.endswith("\n")

    def test_updates_are_throttled(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream, tty_interval=60.0, force_tty=True)
        monitor = self._monitor()
        assert renderer.update(monitor) is True
        assert renderer.update(monitor) is False  # inside the throttle window
        assert renderer.update(monitor, force=True) is True
        assert renderer.renders == 2

    def test_stringio_defaults_to_plain_mode(self):
        renderer = ProgressRenderer(io.StringIO())
        assert renderer.is_tty is False


def _available_start_methods():
    methods = multiprocessing.get_all_start_methods()
    return [m for m in ("fork", "spawn") if m in methods]


@pytest.mark.parametrize("start_method", _available_start_methods())
class TestPooledHeartbeats:
    """End-to-end: events and telemetry cross the pool boundary under both
    start methods (spawn re-imports everything; fork inherits)."""

    def _grid(self):
        return RunGrid.product(
            workload="Oracle",
            tracked_level=["L1", "L2"],
            scale=64,
            measure_accesses=1_000,
            seed=[0, 1],
        )

    def test_heartbeats_and_worker_events_arrive(self, start_method):
        monitor = SweepMonitor()
        runner = ParallelRunner(
            workers=2,
            monitor=monitor,
            start_method=start_method,
            heartbeat_interval=0.05,
        )
        report = runner.run(self._grid())
        assert report.ok and report.simulated == 4
        assert 1 <= monitor.worker_count() <= 2
        for row in monitor.workers():
            assert row["beats"] >= 1  # the "online" event is the first beat
        assert monitor.done == 4
        assert monitor.finished_at is not None

    def test_worker_telemetry_absorbed_into_parent(self, start_method):
        obs.enable()
        runner = ParallelRunner(
            workers=2,
            monitor=SweepMonitor(),
            start_method=start_method,
            heartbeat_interval=0.05,
        )
        report = runner.run(self._grid())
        assert report.ok
        measured = obs.REGISTRY.counter("sim.run.measured_accesses").value
        assert measured == 4 * 1_000
        phases = obs.TRACER.totals()
        # Each run traces its batch front-end under "batch_kernel"
        # (scalar loop) or "hit_kernel" (whole-chunk kernel), depending
        # on which kernel the per-chunk heuristic picked.
        batch_spans = sum(
            phases[name]["count"]
            for name in ("batch_kernel", "hit_kernel")
            if name in phases
        )
        assert batch_spans >= 4
        assert len(report.worker_pids) >= 1

    def test_no_monitor_means_no_queue_but_results_still_flow(self, start_method):
        runner = ParallelRunner(workers=2, start_method=start_method)
        report = runner.run(self._grid())
        assert report.ok and report.simulated == 4
