"""Phase tracing: nesting accounting, exception safety, absorb, rendering."""

import time

import pytest

from repro.obs.tracing import Tracer, _NULL_SPAN, render_phase_breakdown


class TestDisabledPath:
    def test_disabled_span_is_the_shared_null_span(self):
        tracer = Tracer()
        assert tracer.span("anything") is _NULL_SPAN
        assert tracer.span("other") is _NULL_SPAN

    def test_disabled_spans_record_nothing(self):
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        assert tracer.totals() == {}
        assert tracer.depth == 0


class TestNesting:
    def test_totals_and_counts(self):
        tracer = Tracer()
        tracer.enable()
        for _ in range(3):
            with tracer.span("outer"):
                time.sleep(0.001)
        totals = tracer.totals()
        assert totals["outer"]["count"] == 3
        assert totals["outer"]["total_seconds"] >= 0.003
        assert totals["outer"]["self_seconds"] == pytest.approx(
            totals["outer"]["total_seconds"]
        )

    def test_child_time_excluded_from_parent_self_time(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.005)
        totals = tracer.totals()
        outer, inner = totals["outer"], totals["inner"]
        # outer.total covers inner entirely; outer.self excludes it.
        assert outer["total_seconds"] >= inner["total_seconds"]
        assert outer["self_seconds"] == pytest.approx(
            outer["total_seconds"] - inner["total_seconds"], abs=1e-6
        )
        assert inner["self_seconds"] == pytest.approx(inner["total_seconds"])

    def test_sibling_spans_both_charge_the_parent(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("a"):
                time.sleep(0.002)
            with tracer.span("a"):
                time.sleep(0.002)
        totals = tracer.totals()
        assert totals["a"]["count"] == 2
        assert totals["outer"]["self_seconds"] == pytest.approx(
            totals["outer"]["total_seconds"] - totals["a"]["total_seconds"], abs=1e-6
        )

    def test_depth_tracks_open_spans(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("outer"):
            assert tracer.depth == 1
            with tracer.span("inner"):
                assert tracer.depth == 2
        assert tracer.depth == 0


class TestExceptionSafety:
    def test_raising_body_still_records_and_unwinds(self):
        tracer = Tracer()
        tracer.enable()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        totals = tracer.totals()
        assert totals["outer"]["count"] == 1
        assert totals["inner"]["count"] == 1
        assert tracer.depth == 0

    def test_tracer_still_usable_after_exception(self):
        tracer = Tracer()
        tracer.enable()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError
        with tracer.span("after"):
            pass
        assert tracer.totals()["after"]["count"] == 1


class TestAbsorb:
    def test_absorb_merges_counts_and_seconds(self):
        a, b = Tracer(), Tracer()
        for tracer in (a, b):
            tracer.enable()
            with tracer.span("phase"):
                pass
        a.absorb(b.snapshot())
        assert a.totals()["phase"]["count"] == 2

    def test_absorb_creates_unknown_phases(self):
        parent, worker = Tracer(), Tracer()
        worker.enable()
        with worker.span("worker_only"):
            pass
        parent.absorb(worker.snapshot())
        assert parent.totals()["worker_only"]["count"] == 1


class TestRenderPhaseBreakdown:
    def test_empty_totals_say_so(self):
        text = render_phase_breakdown({})
        assert "no spans recorded" in text

    def test_rows_sorted_by_descending_self_time(self):
        totals = {
            "small": {"count": 1, "total_seconds": 0.1, "self_seconds": 0.1},
            "big": {"count": 2, "total_seconds": 0.9, "self_seconds": 0.9},
        }
        text = render_phase_breakdown(totals)
        assert text.index("big") < text.index("small")
        assert "90.0%" in text and "10.0%" in text
