"""Shared fixtures for the test suite.

Tests run against *tiny* system configurations (a few KB of cache) so the
whole suite stays fast; the behaviour under test — hashing, displacement,
inclusion, invalidation accounting — is size-independent.
"""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, CacheLevel, SystemConfig


@pytest.fixture
def tiny_l1() -> CacheConfig:
    """A 2-way, 16-frame cache (1 KB with 64-byte blocks)."""
    return CacheConfig(size_bytes=1024, associativity=2)


@pytest.fixture
def tiny_l2() -> CacheConfig:
    """A 16-way, 128-frame cache (8 KB with 64-byte blocks)."""
    return CacheConfig(size_bytes=8192, associativity=16)


@pytest.fixture
def tiny_shared_system(tiny_l1, tiny_l2) -> SystemConfig:
    """A 4-core Shared-L2 system small enough for exhaustive tests."""
    return SystemConfig(
        num_cores=4,
        l1_config=tiny_l1,
        l2_config=tiny_l2,
        tracked_level=CacheLevel.L1,
        page_bytes=256,
    )


@pytest.fixture
def tiny_private_system(tiny_l1, tiny_l2) -> SystemConfig:
    """A 4-core Private-L2 system small enough for exhaustive tests."""
    return SystemConfig(
        num_cores=4,
        l1_config=tiny_l1,
        l2_config=tiny_l2,
        tracked_level=CacheLevel.L2,
        page_bytes=256,
    )
