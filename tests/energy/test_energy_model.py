"""Tests for the SRAM primitives and the directory energy/area scaling model."""

import pytest

from repro.config import CacheConfig, PAPER_EVENT_MIX
from repro.energy.model import (
    FIGURE4_ORGANIZATIONS,
    FIGURE13_ORGANIZATIONS,
    ORGANIZATIONS,
    CuckooModel,
    DuplicateTagModel,
    InCacheModel,
    ScalingScenario,
    SparseModel,
    TaglessModel,
    organization_names,
    relative_area,
    relative_energy,
    scaling_table,
)
from repro.energy.sram import (
    SramParameters,
    cam_area,
    cam_search_energy,
    l2_data_array_area,
    l2_tag_lookup_energy,
    sram_area,
    sram_read_energy,
    sram_write_energy,
)

L2 = CacheConfig(size_bytes=1024 * 1024, associativity=16)


class TestSramPrimitives:
    def test_read_energy_monotonic_in_bits(self):
        assert sram_read_energy(128) > sram_read_energy(64)

    def test_write_costs_more_than_read(self):
        assert sram_write_energy(100) > sram_read_energy(100)

    def test_cam_search_costs_more_than_sram_read(self):
        assert cam_search_energy(100) > sram_read_energy(100)

    def test_cam_area_costs_more_than_sram(self):
        assert cam_area(1000) > sram_area(1000)

    def test_negative_bits_rejected(self):
        for fn in (sram_read_energy, sram_write_energy, cam_search_energy, sram_area, cam_area):
            with pytest.raises(ValueError):
                fn(-1)

    def test_l2_references_positive(self):
        assert l2_tag_lookup_energy(L2) > 0
        assert l2_data_array_area(L2) == pytest.approx(1024 * 1024 * 8)

    def test_custom_parameters_respected(self):
        params = SramParameters(read_energy_per_bit=10.0, access_overhead_bits=0.0)
        assert sram_read_energy(10, params) == pytest.approx(100.0)


class TestScenario:
    def test_shared_scenario_tracks_two_l1s_per_core(self):
        scenario = ScalingScenario.shared_l2()
        assert scenario.caches_per_core == 2
        assert scenario.num_caches(16) == 32
        assert scenario.frames_per_slice() == 2048

    def test_private_scenario_tracks_one_l2_per_core(self):
        scenario = ScalingScenario.private_l2()
        assert scenario.caches_per_core == 1
        assert scenario.num_caches(1024) == 1024
        assert scenario.frames_per_slice() == 16384

    def test_frames_per_slice_constant_in_core_count(self):
        scenario = ScalingScenario.shared_l2()
        # frames_per_slice has no core-count parameter by construction;
        # verify it matches the aggregate divided by slices for several sizes.
        for cores in (16, 64, 1024):
            aggregate = scenario.num_caches(cores) * scenario.tracked_cache.num_frames
            assert aggregate / cores == scenario.frames_per_slice()


class TestOrganizationModels:
    def test_registry_contains_all_figure_organizations(self):
        names = set(organization_names())
        assert set(FIGURE4_ORGANIZATIONS) <= names
        assert set(FIGURE13_ORGANIZATIONS) <= names

    def test_duplicate_tag_energy_grows_linearly_with_cores(self):
        model = DuplicateTagModel()
        scenario = ScalingScenario.shared_l2()
        e16 = model.energy_per_operation(scenario, 16)
        e256 = model.energy_per_operation(scenario, 256)
        assert e256 / e16 == pytest.approx(16, rel=0.2)

    def test_duplicate_tag_area_is_constant_per_core(self):
        model = DuplicateTagModel()
        scenario = ScalingScenario.shared_l2()
        assert model.area(scenario, 16) == model.area(scenario, 1024)

    def test_tagless_energy_grows_with_cores_but_area_does_not(self):
        model = TaglessModel()
        scenario = ScalingScenario.shared_l2()
        assert model.energy_per_operation(scenario, 1024) > 10 * model.energy_per_operation(
            scenario, 16
        )
        assert model.area(scenario, 1024) == model.area(scenario, 16)

    def test_tagless_is_most_area_efficient_baseline(self):
        scenario = ScalingScenario.shared_l2()
        tagless = relative_area("Tagless", scenario, 1024)
        for name in ("Duplicate-Tag", "Sparse 8x Coarse", "Sparse 8x Hierarchical"):
            assert tagless < relative_area(name, scenario, 1024)

    def test_sparse_full_vector_area_grows_with_cores(self):
        model = SparseModel("full", encoding="full")
        scenario = ScalingScenario.shared_l2()
        assert model.area(scenario, 1024) > 10 * model.area(scenario, 16)

    def test_sparse_coarse_area_nearly_constant(self):
        model = SparseModel("coarse", encoding="coarse")
        scenario = ScalingScenario.shared_l2()
        growth = model.area(scenario, 1024) / model.area(scenario, 16)
        assert growth < 1.5

    def test_in_cache_not_applicable_to_private_l2(self):
        model = InCacheModel()
        assert model.applicable(ScalingScenario.shared_l2())
        assert not model.applicable(ScalingScenario.private_l2())

    def test_in_cache_area_grows_linearly_with_cores(self):
        model = InCacheModel()
        scenario = ScalingScenario.shared_l2()
        ratio = model.area(scenario, 1024) / model.area(scenario, 128)
        assert ratio == pytest.approx(8.0, rel=0.1)

    def test_cuckoo_energy_nearly_constant_with_cores(self):
        model = CuckooModel("cuckoo", encoding="coarse")
        scenario = ScalingScenario.shared_l2()
        growth = model.energy_per_operation(scenario, 1024) / model.energy_per_operation(
            scenario, 16
        )
        assert growth < 1.3

    def test_cuckoo_beats_sparse_8x_area_by_provisioning_ratio(self):
        scenario = ScalingScenario.shared_l2()
        for cores in (16, 256, 1024):
            sparse = relative_area("Sparse 8x Coarse", scenario, cores)
            cuckoo = relative_area("Cuckoo Coarse", scenario, cores)
            assert 4.0 < sparse / cuckoo < 8.5

    def test_cuckoo_energy_cheaper_than_sparse_8x(self):
        scenario = ScalingScenario.private_l2()
        for cores in (16, 1024):
            assert relative_energy("Cuckoo Coarse", scenario, cores) < relative_energy(
                "Sparse 8x Coarse", scenario, cores
            )

    def test_duplicate_tag_much_less_efficient_than_cuckoo_at_16_cores(self):
        """Paper: 'up to 16x more energy-efficient than Duplicate-Tag at 16 cores'."""
        scenario = ScalingScenario.private_l2()
        ratio = relative_energy("Duplicate-Tag", scenario, 16) / relative_energy(
            "Cuckoo Coarse", scenario, 16
        )
        assert ratio > 10

    def test_tagless_energy_much_higher_than_cuckoo_at_1024(self):
        """Paper: 'up to 80x energy-efficiency over Tagless at 1024 cores'."""
        scenario = ScalingScenario.shared_l2()
        ratio = relative_energy("Tagless", scenario, 1024) / relative_energy(
            "Cuckoo Coarse", scenario, 1024
        )
        assert ratio > 10

    def test_event_mix_weighting(self):
        model = CuckooModel("c", encoding="coarse")
        scenario = ScalingScenario.shared_l2()
        energies = model.operation_energies(scenario, 16)
        assert set(energies) == set(PAPER_EVENT_MIX)
        weighted = model.energy_per_operation(scenario, 16)
        assert min(energies.values()) <= weighted <= max(energies.values())

    def test_model_parameter_validation(self):
        with pytest.raises(ValueError):
            SparseModel("bad", provisioning=0)
        with pytest.raises(ValueError):
            CuckooModel("bad", ways=1)
        with pytest.raises(ValueError):
            CuckooModel("bad", average_attempts=0.5)
        with pytest.raises(ValueError):
            TaglessModel(bits_per_frame=0)


class TestScalingTable:
    def test_table_structure(self):
        scenario = ScalingScenario.shared_l2()
        table = scaling_table(["Duplicate-Tag", "Cuckoo Coarse"], scenario, (16, 64))
        assert set(table) == {"Duplicate-Tag", "Cuckoo Coarse"}
        assert set(table["Duplicate-Tag"]) == {16, 64}
        assert set(table["Duplicate-Tag"][16]) == {"energy", "area"}

    def test_in_cache_omitted_for_private_scenario(self):
        table = scaling_table(
            ["Sparse 8x In-Cache", "Cuckoo Coarse"], ScalingScenario.private_l2(), (16,)
        )
        assert "Sparse 8x In-Cache" not in table
        assert "Cuckoo Coarse" in table

    def test_all_values_positive(self):
        table = scaling_table(FIGURE13_ORGANIZATIONS, ScalingScenario.shared_l2())
        for series in table.values():
            for point in series.values():
                assert point["energy"] > 0
                assert point["area"] > 0
