"""Paper-reference curves and error metrics on synthetic known-error inputs."""

import pytest

from repro.analysis.reference import (
    REFERENCES,
    get_reference,
    geomean_relative_error,
    max_absolute_deviation,
    max_relative_deviation,
    rank_order_agreement,
    score_series,
)


class TestErrorMetrics:
    def test_geomean_relative_error_known_values(self):
        # 10% error on both points -> geomean exactly 0.10.
        pairs = [(1.1, 1.0), (2.2, 2.0)]
        assert geomean_relative_error(pairs) == pytest.approx(0.10)

    def test_geomean_mixed_errors(self):
        # 10% and 40% -> sqrt(0.1 * 0.4) = 0.2.
        pairs = [(1.1, 1.0), (1.4, 1.0)]
        assert geomean_relative_error(pairs) == pytest.approx(0.2)

    def test_exact_reproduction_scores_near_zero(self):
        pairs = [(1.0, 1.0), (2.0, 2.0)]
        assert geomean_relative_error(pairs) < 1e-6
        assert max_relative_deviation(pairs) == 0.0
        assert max_absolute_deviation(pairs) == 0.0

    def test_max_deviations(self):
        pairs = [(1.1, 1.0), (3.0, 2.0)]
        assert max_relative_deviation(pairs) == pytest.approx(0.5)
        assert max_absolute_deviation(pairs) == pytest.approx(1.0)

    def test_empty_pairs(self):
        assert geomean_relative_error([]) == 0.0
        assert max_relative_deviation([]) == 0.0
        assert max_absolute_deviation([]) == 0.0

    def test_zero_reference_does_not_divide_by_zero(self):
        assert max_relative_deviation([(0.1, 0.0)]) > 0


class TestRankOrderAgreement:
    def test_identical_ordering_is_one(self):
        expected = {"a": 1.0, "b": 2.0, "c": 3.0}
        actual = {"a": 10.0, "b": 20.0, "c": 30.0}
        assert rank_order_agreement(actual, expected) == 1.0

    def test_reversed_ordering_is_minus_one(self):
        expected = {"a": 1.0, "b": 2.0, "c": 3.0}
        actual = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert rank_order_agreement(actual, expected) == -1.0

    def test_one_swapped_pair(self):
        expected = {"a": 1.0, "b": 2.0, "c": 3.0}
        actual = {"a": 2.0, "b": 1.0, "c": 3.0}
        # 2 of 3 pairs concordant, 1 discordant -> (2 - 1) / 3.
        assert rank_order_agreement(actual, expected) == pytest.approx(1 / 3)

    def test_fewer_than_two_common_points(self):
        assert rank_order_agreement({"a": 1.0}, {"a": 5.0, "b": 6.0}) == 1.0
        assert rank_order_agreement({}, {"a": 5.0}) == 1.0

    def test_only_common_keys_participate(self):
        expected = {"a": 1.0, "b": 2.0, "zz": 99.0}
        actual = {"a": 5.0, "b": 6.0, "other": -1.0}
        assert rank_order_agreement(actual, expected) == 1.0


class TestScoreSeries:
    def test_score_fields(self):
        expected = {"a": 1.0, "b": 2.0}
        actual = {"a": 1.1, "b": 1.8}
        score = score_series(actual, expected)
        assert score.points == 2
        assert score.rank_order_agreement == 1.0
        assert score.max_absolute_deviation == pytest.approx(0.2)
        assert "2 points" in str(score)

    def test_intersection_only(self):
        score = score_series({"a": 1.0}, {"a": 1.0, "b": 2.0})
        assert score.points == 1


class TestReferenceRegistry:
    def test_digitized_figures_present(self):
        assert {"fig08", "fig09", "fig10", "fig12", "fig13"} <= set(REFERENCES)

    def test_get_reference_names_valid_set_on_error(self):
        with pytest.raises(KeyError, match="fig08"):
            get_reference("fig99")

    def test_fig08_covers_the_full_workload_suite(self):
        from repro.workloads.suite import WORKLOAD_NAMES

        reference = get_reference("fig08")
        for config in ("Shared L2", "Private L2"):
            assert set(reference.series[config]) == set(WORKLOAD_NAMES)

    def test_fig09_labels_match_the_experiment_geometries(self):
        from repro.experiments.fig09_provisioning import (
            PRIVATE_L2_GEOMETRIES,
            SHARED_L2_GEOMETRIES,
        )

        reference = get_reference("fig09")
        assert set(reference.series["Shared L2"]) == {
            label for _w, _p, label in SHARED_L2_GEOMETRIES
        }
        assert set(reference.series["Private L2"]) == {
            label for _w, _p, label in PRIVATE_L2_GEOMETRIES
        }

    def test_fig12_orders_organizations_like_the_paper(self):
        # The digitized curve must encode the paper's ordering: Sparse 2x
        # worst, then Skewed 2x, then Sparse 8x, Cuckoo near-zero.
        for config in ("Shared L2", "Private L2"):
            series = get_reference("fig12").series[config]
            assert (
                series["Sparse 2x"] > series["Skewed 2x"]
                > series["Sparse 8x"] > series["Cuckoo"]
            )

    def test_score_skips_series_the_reproduction_did_not_produce(self):
        reference = get_reference("fig08")
        scores = reference.score({"Shared L2": {"Oracle": 0.5}})
        assert set(scores) == {"Shared L2"}
        assert scores["Shared L2"].points == 1

    def test_perfect_reproduction_of_the_curve_scores_zero_error(self):
        reference = get_reference("fig10")
        scores = reference.score(
            {label: dict(points) for label, points in reference.series.items()}
        )
        for score in scores.values():
            assert score.geomean_relative_error < 1e-6
            assert score.rank_order_agreement == 1.0
