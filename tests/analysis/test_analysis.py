"""Tests for the analysis helpers (tables, statistics)."""

import math

import pytest

from repro.analysis.stats import bin_by, geometric_mean, summarize
from repro.analysis.tables import format_percentage, format_ratio, render_table


class TestFormatting:
    def test_percentage(self):
        assert format_percentage(0.034) == "3.40%"
        assert format_percentage(1.5, digits=0) == "150%"

    def test_ratio(self):
        assert format_ratio(2.5) == "2.50x"
        assert format_ratio(0.125, digits=3) == "0.125x"


class TestRenderTable:
    def test_contains_headers_and_rows(self):
        text = render_table(["Name", "Value"], [["a", 1], ["bb", 22]])
        assert "Name" in text and "Value" in text
        assert "a" in text and "22" in text

    def test_title_included(self):
        text = render_table(["H"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_columns_aligned(self):
        text = render_table(["H1", "H2"], [["x", 1], ["longer", 2]])
        lines = [line for line in text.splitlines() if line.startswith("|")]
        assert len({len(line) for line in lines}) == 1

    def test_numeric_cells_right_justified(self):
        text = render_table(["Metric"], [["5"], ["12345"]])
        lines = [line for line in text.splitlines() if line.startswith("|")]
        # The short number must be padded on the left.
        assert "|     5 |" in lines[1] or "|      5 |" in lines[1]

    def test_mismatched_row_length_rejected(self):
        with pytest.raises(ValueError):
            render_table(["A", "B"], [["only-one"]])

    def test_placeholder_follows_numeric_column_alignment(self):
        # A '—' standing in for a missing baseline must not flip its cell
        # to left-alignment inside an otherwise-numeric column.
        text = render_table(
            ["Metric"], [["1.25"], ["—"], ["12345.00"]]
        )
        lines = [line for line in text.splitlines() if line.startswith("|")]
        assert lines[2] == "|        — |"

    def test_mixed_text_column_is_uniformly_left_aligned(self):
        # A genuinely textual cell ("failed") makes the whole column
        # left-aligned — per-column, never ragged per-cell.
        text = render_table(
            ["Value"], [["1.25"], ["failed"], ["12345.00"]]
        )
        lines = [line for line in text.splitlines() if line.startswith("|")]
        assert lines[1] == "| 1.25     |"
        assert lines[2] == "| failed   |"

    def test_numeric_suffixes_keep_right_alignment(self):
        text = render_table(
            ["Rate", "Ratio"], [["3.40%", "2.50x"], ["12.00%", "10.00x"]]
        )
        lines = [line for line in text.splitlines() if line.startswith("|")]
        assert lines[1] == "|  3.40% |  2.50x |"

    def test_empty_rows_ok(self):
        text = render_table(["A"], [])
        assert "A" in text


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_zero_values_clamped(self):
        value = geometric_mean([0.0, 1.0])
        assert 0.0 < value < 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([-1.0, 2.0])

    def test_identity(self):
        assert geometric_mean([3.0, 3.0, 3.0]) == pytest.approx(3.0)


class TestBinBy:
    def test_averages_within_bins(self):
        pairs = [(0.05, 1.0), (0.07, 3.0), (0.55, 10.0)]
        result = bin_by(pairs, bin_width=0.1)
        assert result[0.05] == pytest.approx(2.0)
        assert result[0.55] == pytest.approx(10.0)

    def test_out_of_range_ignored(self):
        result = bin_by([(1.5, 99.0), (0.5, 1.0)], bin_width=0.5)
        assert 99.0 not in result.values()

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            bin_by([], bin_width=0)

    def test_bins_sorted(self):
        pairs = [(0.9, 1.0), (0.1, 2.0), (0.5, 3.0)]
        result = bin_by(pairs, bin_width=0.2)
        keys = list(result)
        assert keys == sorted(keys)

    def test_upper_edge_clamps_into_last_bin(self):
        # A key exactly on the upper edge (occupancy 1.0 with the Figure 7
        # binning) must land in the last valid bin, not an overflow bin
        # whose center lies beyond ``upper``.
        result = bin_by([(1.0, 4.0)], bin_width=0.05)
        assert list(result) == [0.975]
        assert result[0.975] == 4.0
        assert all(center <= 1.0 for center in result)

    def test_upper_edge_merges_with_existing_last_bin(self):
        result = bin_by([(0.96, 2.0), (1.0, 4.0)], bin_width=0.05)
        assert list(result) == [0.975]
        assert result[0.975] == pytest.approx(3.0)

    def test_upper_edge_with_custom_range(self):
        result = bin_by([(2.0, 10.0)], bin_width=0.5, lower=1.0, upper=2.0)
        assert list(result) == [1.75]

    def test_beyond_upper_still_ignored(self):
        result = bin_by([(1.0 + 1e-9, 9.0)], bin_width=0.05)
        assert result == {}


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_empty(self):
        summary = summarize([])
        assert summary["count"] == 0
        assert summary["mean"] == 0.0
