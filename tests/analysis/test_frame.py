"""SweepFrame streaming aggregation: reductions, pivots, serialization."""

import json
import math

import pytest

from repro.analysis.frame import REDUCTIONS, Column, SweepFrame, flatten_record
from repro.analysis.stats import geometric_mean


def _records():
    return [
        {"workload": "Oracle", "config": "L1", "attempts": 1.2, "rate": 0.01},
        {"workload": "Oracle", "config": "L2", "attempts": 1.4, "rate": 0.02},
        {"workload": "ocean", "config": "L1", "attempts": 1.8, "rate": 0.00},
        {"workload": "ocean", "config": "L2", "attempts": 2.0, "rate": 0.04},
    ]


class TestFlattenRecord:
    def test_nested_spec_is_merged(self):
        flat = flatten_record(
            {"spec": {"workload": "Oracle", "ways": 4}, "cache_hit_rate": 0.5}
        )
        assert flat["workload"] == "Oracle"
        assert flat["ways"] == 4
        assert flat["cache_hit_rate"] == 0.5

    def test_histogram_and_elapsed_dropped(self):
        flat = flatten_record(
            {"spec": {}, "attempt_histogram": [[1, 5]], "elapsed_seconds": 2.0,
             "accesses": 10}
        )
        assert "attempt_histogram" not in flat
        assert "elapsed_seconds" not in flat
        assert flat["accesses"] == 10

    def test_run_result_objects_flatten_via_to_dict(self):
        from repro.engine.results import RunResult
        from repro.engine.spec import RunSpec

        result = RunResult(
            spec=RunSpec(workload="Oracle"),
            accesses=100, cache_hit_rate=0.5, average_occupancy=0.4,
            occupancy_vs_worst_case=0.4, average_insertion_attempts=1.1,
            forced_invalidation_rate=0.0, insertions=10, insertion_attempts=11,
            forced_invalidations=0, tracked_frames_total=64,
            directory_capacity_total=64, total_messages=200,
        )
        flat = flatten_record(result)
        assert flat["workload"] == "Oracle"
        assert flat["average_insertion_attempts"] == 1.1

    def test_non_mapping_rejected(self):
        with pytest.raises(TypeError):
            flatten_record(42)


class TestAggregate:
    def test_group_means_match_naive_loops(self):
        frame = SweepFrame.aggregate(
            iter(_records()),  # a one-shot iterator: consumed streaming
            group_by=("workload",),
            metrics={"attempts": ("attempts", "mean"), "rate": ("rate", "mean")},
        )
        rows = {row["workload"]: row for row in frame.rows()}
        assert rows["Oracle"]["attempts"] == pytest.approx((1.2 + 1.4) / 2)
        assert rows["ocean"]["rate"] == pytest.approx((0.0 + 0.04) / 2)

    def test_geomean_matches_stats_helper_exactly(self):
        values = [1.2, 1.4, 0.0, 2.5]
        frame = SweepFrame.aggregate(
            ({"v": value} for value in values),
            group_by=(),
            metrics={"g": ("v", "geomean")},
        )
        assert frame.rows()[0]["g"] == geometric_mean(values)

    def test_mean_matches_sum_over_len_exactly(self):
        values = [0.1, 0.2, 0.30000000000000004, 7.7]
        frame = SweepFrame.aggregate(
            ({"v": value} for value in values),
            group_by=(),
            metrics={"m": ("v", "mean")},
        )
        assert frame.rows()[0]["m"] == sum(values) / len(values)

    def test_min_max_sum_count(self):
        frame = SweepFrame.aggregate(
            _records(),
            group_by=(),
            metrics={
                "lo": ("attempts", "min"),
                "hi": ("attempts", "max"),
                "total": ("attempts", "sum"),
                "n": ("attempts", "count"),
            },
        )
        row = frame.rows()[0]
        assert row["lo"] == 1.2 and row["hi"] == 2.0
        assert row["total"] == pytest.approx(1.2 + 1.4 + 1.8 + 2.0)
        assert row["n"] == 4

    def test_group_order_is_first_seen(self):
        frame = SweepFrame.aggregate(
            _records(), group_by=("workload",), metrics={"n": ("attempts", "count")}
        )
        assert [row["workload"] for row in frame.rows()] == ["Oracle", "ocean"]

    def test_where_filters_records(self):
        frame = SweepFrame.aggregate(
            _records(),
            group_by=("workload",),
            metrics={"n": ("attempts", "count")},
            where=lambda record: record["config"] == "L1",
        )
        assert all(row["n"] == 1 for row in frame.rows())

    def test_unknown_reduction_rejected(self):
        with pytest.raises(ValueError):
            SweepFrame.aggregate(
                _records(), group_by=(), metrics={"x": ("attempts", "median")}
            )

    def test_empty_stream_yields_empty_frame(self):
        frame = SweepFrame.aggregate(
            [], group_by=("workload",), metrics={"n": ("attempts", "count")}
        )
        assert len(frame) == 0
        assert frame.rows() == []

    def test_every_reduction_has_an_accumulator(self):
        for name, factory in REDUCTIONS.items():
            accumulator = factory()
            accumulator.add(1.0)
            accumulator.value()


class TestPivot:
    def test_basic_grid(self):
        frame = SweepFrame.from_rows(_records())
        pivot = frame.pivot(
            index="workload", columns="config", value="attempts",
            index_label="Workload", fmt=lambda value: f"{value:.1f}",
        )
        assert pivot.headers == ["Workload", "L1", "L2"]
        assert pivot.rows == [["Oracle", "1.2", "1.4"], ["ocean", "1.8", "2.0"]]

    def test_missing_cell_placeholder_and_default(self):
        rows = _records()[:3]  # ocean has no L2 point
        frame = SweepFrame.from_rows(rows)
        pivot = frame.pivot(index="workload", columns="config", value="attempts")
        assert pivot.rows[1][2] == "-"
        pivot = frame.pivot(
            index="workload", columns="config", value="attempts", default=0.0
        )
        assert pivot.rows[1][2] == "0.0"

    def test_explicit_orders(self):
        frame = SweepFrame.from_rows(_records())
        pivot = frame.pivot(
            index="workload", columns="config", value="attempts",
            index_order=["ocean", "Oracle"], column_order=["L2", "L1"],
        )
        assert pivot.headers == ["workload", "L2", "L1"]
        assert pivot.rows[0][0] == "ocean"

    def test_render_is_an_aligned_table(self):
        text = SweepFrame.from_rows(_records()).pivot(
            index="workload", columns="config", value="attempts"
        ).render(title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1


class TestOutput:
    def test_render_with_columns(self):
        frame = SweepFrame.from_rows(_records())
        text = frame.render(
            [Column("Workload", "workload"),
             Column("Attempts", "attempts", lambda value: f"{value:.2f}")],
            title="Table",
        )
        assert "Workload" in text and "1.20" in text

    def test_csv_round_trip(self):
        frame = SweepFrame.from_rows(_records())
        lines = frame.to_csv().splitlines()
        assert lines[0] == "workload,config,attempts,rate"
        assert lines[1] == "Oracle,L1,1.2,0.01"
        assert len(lines) == 5

    def test_json_round_trip(self):
        frame = SweepFrame.aggregate(
            _records(), group_by=("workload",), metrics={"n": ("attempts", "count")}
        )
        payload = json.loads(frame.to_json())
        assert payload["group_by"] == ["workload"]
        assert payload["rows"][0] == {"workload": "Oracle", "n": 2}

    def test_from_records_field_selection(self):
        frame = SweepFrame.from_records(_records(), fields=("workload", "rate"))
        assert frame.fields() == ["workload", "rate"]
        assert frame.column("rate") == [0.01, 0.02, 0.00, 0.04]
