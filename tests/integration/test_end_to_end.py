"""End-to-end integration tests across the whole stack.

These tests replay Table 2 workloads through the full coherence system with
different directory organizations and check cross-cutting invariants:
directory/cache inclusion, identical occupancy regardless of organization,
the paper's qualitative invalidation ordering, and deterministic replay.
"""

import pytest

from repro.config import CacheLevel
from repro.coherence.simulator import TraceSimulator
from repro.coherence.system import TiledCMP
from repro.experiments import common
from repro.workloads.suite import get_workload

SCALE = 64
MEASURE = 4_000


def simulate(workload_name, tracked_level, factory_builder, seed=0, measure=MEASURE):
    system_config = common.scaled_system(tracked_level, scale=SCALE)
    workload = get_workload(workload_name)
    factory = factory_builder(system_config)
    system = TiledCMP(system_config, factory)
    simulator = TraceSimulator(
        system, warmup_accesses=workload.recommended_warmup(system_config)
    )
    result = simulator.run(workload.trace(system_config, seed=seed), max_accesses=measure)
    return system, result


class TestInclusionAcrossOrganizations:
    @pytest.mark.parametrize(
        "factory_builder",
        [
            lambda cfg: common.cuckoo_factory(cfg, ways=4, provisioning=1.0),
            lambda cfg: common.sparse_factory(cfg, ways=8, provisioning=2.0),
            lambda cfg: common.skewed_factory(cfg, ways=4, provisioning=2.0),
        ],
        ids=["cuckoo", "sparse", "skewed"],
    )
    def test_directory_tracks_every_cached_block(self, factory_builder):
        system, _ = simulate("Oracle", CacheLevel.L1, factory_builder)
        assert system.check_inclusion() == []

    def test_inclusion_private_l2_with_scientific_workload(self):
        system, _ = simulate(
            "ocean",
            CacheLevel.L2,
            lambda cfg: common.cuckoo_factory(cfg, ways=3, provisioning=1.5),
        )
        assert system.check_inclusion() == []


class TestOrganizationIndependentMetrics:
    def test_occupancy_is_a_workload_property_not_an_organization_property(self):
        """Figure 8's occupancy depends on the workload, not on which
        (sufficiently provisioned) organization tracks it."""
        runs = {}
        for name, builder in (
            ("cuckoo", lambda cfg: common.cuckoo_factory(cfg, ways=4, provisioning=2.0)),
            ("sparse", lambda cfg: common.sparse_factory(cfg, ways=8, provisioning=2.0)),
        ):
            system, result = simulate("DB2", CacheLevel.L1, builder)
            entries = sum(d.entry_count() for d in system.directories)
            frames = (
                system.config.num_tracked_caches
                * system.config.tracked_cache_config.num_frames
            )
            runs[name] = entries / frames
        assert runs["cuckoo"] == pytest.approx(runs["sparse"], abs=0.05)

    def test_deterministic_replay(self):
        results = []
        for _ in range(2):
            _, result = simulate(
                "Apache",
                CacheLevel.L1,
                lambda cfg: common.cuckoo_factory(cfg, ways=4, provisioning=1.0),
                seed=7,
            )
            results.append(result)
        assert results[0].directory_stats.insertions == results[1].directory_stats.insertions
        assert results[0].directory_stats.insertion_attempts == (
            results[1].directory_stats.insertion_attempts
        )
        assert results[0].cache_hit_rate == results[1].cache_hit_rate

    def test_different_seeds_change_the_stream(self):
        _, a = simulate(
            "Apache",
            CacheLevel.L1,
            lambda cfg: common.cuckoo_factory(cfg, ways=4, provisioning=1.0),
            seed=1,
        )
        _, b = simulate(
            "Apache",
            CacheLevel.L1,
            lambda cfg: common.cuckoo_factory(cfg, ways=4, provisioning=1.0),
            seed=2,
        )
        assert (
            a.directory_stats.insertions != b.directory_stats.insertions
            or a.directory_stats.insertion_attempts != b.directory_stats.insertion_attempts
        )


class TestPaperHeadlineBehaviour:
    def test_cuckoo_eliminates_invalidations_where_sparse_conflicts(self):
        """The paper's core claim on real workloads (Figure 12): the Cuckoo
        directory at 1x-1.5x capacity has (near-)zero forced invalidations
        while a 2x Sparse directory conflicts."""
        _, sparse = simulate(
            "ocean",
            CacheLevel.L2,
            lambda cfg: common.sparse_factory(cfg, ways=8, provisioning=2.0),
        )
        _, cuckoo = simulate(
            "ocean",
            CacheLevel.L2,
            lambda cfg: common.cuckoo_factory(cfg, ways=3, provisioning=1.5),
        )
        assert sparse.forced_invalidation_rate > 0.0
        assert cuckoo.forced_invalidation_rate < sparse.forced_invalidation_rate
        assert cuckoo.forced_invalidation_rate < 0.005

    def test_cuckoo_average_attempts_below_two_for_chosen_designs(self):
        """Figure 10: despite 1x sizing the average stays well under two."""
        for workload, level, ways, provisioning in (
            ("Oracle", CacheLevel.L1, 4, 1.0),
            ("ocean", CacheLevel.L2, 3, 1.5),
        ):
            _, result = simulate(
                workload,
                level,
                lambda cfg, w=ways, p=provisioning: common.cuckoo_factory(
                    cfg, ways=w, provisioning=p
                ),
            )
            assert 1.0 <= result.average_insertion_attempts < 2.5

    def test_forced_invalidations_generate_extra_misses_not_errors(self):
        """Forced invalidations must leave the system consistent: the
        invalidated blocks simply miss again on their next access."""
        system, result = simulate(
            "Qry17",
            CacheLevel.L2,
            lambda cfg: common.sparse_factory(cfg, ways=8, provisioning=1.0),
        )
        assert result.directory_stats.forced_invalidations > 0
        assert system.check_inclusion() == []

    def test_invalidation_traffic_accounted(self):
        system, result = simulate(
            "DB2",
            CacheLevel.L1,
            lambda cfg: common.cuckoo_factory(cfg, ways=4, provisioning=1.0),
        )
        # OLTP has shared-data writes, so protocol invalidations must appear.
        assert result.traffic.invalidation_messages > 0
        assert result.traffic.total_messages > 0
        assert result.traffic.hops > 0
