"""Tests for the tiled-CMP coherence system (protocol-level behaviour)."""

import pytest

from repro.cache.cache import CoherenceState
from repro.coherence.messages import MessageType
from repro.coherence.paging import PageMapper
from repro.coherence.system import MemoryAccess, TiledCMP
from repro.config import CacheLevel
from repro.core.cuckoo_directory import CuckooDirectory
from repro.directories.sparse import SparseDirectory


def cuckoo_factory(num_caches, slice_id):
    return CuckooDirectory(num_caches=num_caches, num_sets=64, num_ways=4)


def tiny_sparse_factory(num_caches, slice_id):
    # Deliberately tiny so set conflicts (forced invalidations) occur.
    return SparseDirectory(num_caches=num_caches, num_sets=2, num_ways=2)


def identity_mapper():
    """A page mapper whose pool is laid out deterministically is still fine
    for protocol tests; we only need determinism, which the seed gives us."""
    return PageMapper(page_bytes=256, seed=0)


def make_system(config, factory=cuckoo_factory):
    return TiledCMP(config, factory, page_mapper=identity_mapper())


BLOCK = 64  # one block in bytes


class TestAddressing:
    def test_tracked_cache_ids_shared(self, tiny_shared_system):
        system = make_system(tiny_shared_system)
        assert system.tracked_cache_id(0, is_instruction=True) == 0
        assert system.tracked_cache_id(0, is_instruction=False) == 1
        assert system.tracked_cache_id(3, is_instruction=False) == 7
        assert len(system.tracked_caches) == 8

    def test_tracked_cache_ids_private(self, tiny_private_system):
        system = make_system(tiny_private_system)
        assert system.tracked_cache_id(2, is_instruction=True) == 2
        assert system.tracked_cache_id(2, is_instruction=False) == 2
        assert len(system.tracked_caches) == 4

    def test_core_of_cache_inverse(self, tiny_shared_system):
        system = make_system(tiny_shared_system)
        for core in range(4):
            for instruction in (True, False):
                cache_id = system.tracked_cache_id(core, instruction)
                assert system.core_of_cache(cache_id) == core

    def test_home_slice_and_local_address_roundtrip(self, tiny_shared_system):
        system = make_system(tiny_shared_system)
        for block in range(0, 100, 7):
            home = system.home_slice(block)
            local = system.slice_local_address(block)
            assert system.global_address(local, home) == block

    def test_one_directory_slice_per_core(self, tiny_shared_system):
        system = make_system(tiny_shared_system)
        assert len(system.directories) == 4

    def test_shared_config_has_l2_banks_private_does_not(
        self, tiny_shared_system, tiny_private_system
    ):
        assert make_system(tiny_shared_system).l2_banks is not None
        assert make_system(tiny_private_system).l2_banks is None

    def test_invalid_core_rejected(self, tiny_shared_system):
        system = make_system(tiny_shared_system)
        with pytest.raises(IndexError):
            system.tracked_cache_id(4, is_instruction=False)


class TestReadProtocol:
    def test_read_miss_installs_block_and_registers_sharer(self, tiny_private_system):
        system = make_system(tiny_private_system)
        system.access(MemoryAccess(core=0, address=0x1000, is_write=False))
        cache = system.tracked_caches[0]
        block = system.block_address(0x1000)
        assert cache.contains(block)
        directory = system.directories[system.home_slice(block)]
        assert 0 in directory.lookup(system.slice_local_address(block)).sharers

    def test_first_reader_gets_exclusive_state(self, tiny_private_system):
        system = make_system(tiny_private_system)
        system.access(MemoryAccess(core=0, address=0x1000, is_write=False))
        block = system.block_address(0x1000)
        assert system.tracked_caches[0].state_of(block) is CoherenceState.EXCLUSIVE

    def test_second_reader_gets_shared_state_and_owner_downgrades(
        self, tiny_private_system
    ):
        system = make_system(tiny_private_system)
        system.access(MemoryAccess(core=0, address=0x1000, is_write=True))
        system.access(MemoryAccess(core=1, address=0x1000, is_write=False))
        block = system.block_address(0x1000)
        assert system.tracked_caches[0].state_of(block) is CoherenceState.SHARED
        assert system.tracked_caches[1].state_of(block) is CoherenceState.SHARED

    def test_read_hit_no_directory_traffic(self, tiny_private_system):
        system = make_system(tiny_private_system)
        system.access(MemoryAccess(core=0, address=0x1000, is_write=False))
        lookups_before = system.directory_stats().lookups
        system.access(MemoryAccess(core=0, address=0x1000, is_write=False))
        assert system.directory_stats().lookups == lookups_before

    def test_instruction_accesses_use_the_instruction_l1(self, tiny_shared_system):
        system = make_system(tiny_shared_system)
        system.access(
            MemoryAccess(core=0, address=0x2000, is_write=False, is_instruction=True)
        )
        block = system.block_address(0x2000)
        assert system.tracked_caches[0].contains(block)      # L1I of core 0
        assert not system.tracked_caches[1].contains(block)  # L1D untouched


class TestWriteProtocol:
    def test_write_installs_modified(self, tiny_private_system):
        system = make_system(tiny_private_system)
        system.access(MemoryAccess(core=2, address=0x3000, is_write=True))
        block = system.block_address(0x3000)
        assert system.tracked_caches[2].state_of(block) is CoherenceState.MODIFIED

    def test_write_invalidates_other_sharers(self, tiny_private_system):
        system = make_system(tiny_private_system)
        for core in (0, 1, 2):
            system.access(MemoryAccess(core=core, address=0x4000, is_write=False))
        system.access(MemoryAccess(core=3, address=0x4000, is_write=True))
        block = system.block_address(0x4000)
        for core in (0, 1, 2):
            assert not system.tracked_caches[core].contains(block)
        assert system.tracked_caches[3].state_of(block) is CoherenceState.MODIFIED
        directory = system.directories[system.home_slice(block)]
        assert directory.lookup(system.slice_local_address(block)).sharers == frozenset({3})

    def test_write_invalidation_messages_counted(self, tiny_private_system):
        system = make_system(tiny_private_system)
        for core in (0, 1):
            system.access(MemoryAccess(core=core, address=0x4000, is_write=False))
        before = system.traffic.invalidation_messages
        system.access(MemoryAccess(core=2, address=0x4000, is_write=True))
        assert system.traffic.invalidation_messages >= before + 2

    def test_write_hit_on_exclusive_is_silent_upgrade(self, tiny_private_system):
        system = make_system(tiny_private_system)
        system.access(MemoryAccess(core=0, address=0x5000, is_write=False))
        lookups_before = system.directory_stats().lookups
        system.access(MemoryAccess(core=0, address=0x5000, is_write=True))
        block = system.block_address(0x5000)
        assert system.tracked_caches[0].state_of(block) is CoherenceState.MODIFIED
        assert system.directory_stats().lookups == lookups_before

    def test_write_hit_on_shared_upgrades_via_directory(self, tiny_private_system):
        system = make_system(tiny_private_system)
        system.access(MemoryAccess(core=0, address=0x6000, is_write=False))
        system.access(MemoryAccess(core=1, address=0x6000, is_write=False))
        system.access(MemoryAccess(core=0, address=0x6000, is_write=True))
        block = system.block_address(0x6000)
        assert system.tracked_caches[0].state_of(block) is CoherenceState.MODIFIED
        assert not system.tracked_caches[1].contains(block)

    def test_write_after_write_by_other_core_steals_ownership(self, tiny_private_system):
        system = make_system(tiny_private_system)
        system.access(MemoryAccess(core=0, address=0x7000, is_write=True))
        system.access(MemoryAccess(core=1, address=0x7000, is_write=True))
        block = system.block_address(0x7000)
        assert not system.tracked_caches[0].contains(block)
        assert system.tracked_caches[1].state_of(block) is CoherenceState.MODIFIED


class TestEvictionsAndInclusion:
    def test_cache_eviction_notifies_directory(self, tiny_private_system):
        system = make_system(tiny_private_system)
        cache = system.tracked_caches[0]
        # Generate enough distinct blocks to force evictions from the cache.
        for i in range(cache.num_frames * 3):
            system.access(MemoryAccess(core=0, address=i * 64 * 4, is_write=False))
        assert cache.stats.evictions > 0
        assert len(system.check_inclusion()) == 0

    def test_forced_invalidation_removes_block_from_cache(self, tiny_private_system):
        system = TiledCMP(
            tiny_private_system, tiny_sparse_factory, page_mapper=identity_mapper()
        )
        for i in range(200):
            system.access(MemoryAccess(core=i % 4, address=i * 64 * 4, is_write=False))
        stats = system.directory_stats()
        assert stats.forced_invalidations > 0
        assert len(system.check_inclusion()) == 0

    def test_inclusion_holds_across_mixed_traffic(self, tiny_shared_system):
        system = make_system(tiny_shared_system)
        for i in range(300):
            system.access(
                MemoryAccess(
                    core=i % 4,
                    address=(i * 37) % 200 * 64,
                    is_write=(i % 5 == 0),
                    is_instruction=(i % 3 == 0),
                )
            )
        assert len(system.check_inclusion()) == 0

    def test_reset_stats_clears_counters_but_not_contents(self, tiny_private_system):
        system = make_system(tiny_private_system)
        system.access(MemoryAccess(core=0, address=0x100, is_write=False))
        system.reset_stats()
        assert system.directory_stats().insertions == 0
        assert system.traffic.total_messages == 0
        block = system.block_address(0x100)
        assert system.tracked_caches[0].contains(block)

    def test_sample_occupancy_returns_mean_of_slices(self, tiny_private_system):
        system = make_system(tiny_private_system)
        for i in range(50):
            system.access(MemoryAccess(core=0, address=i * 64, is_write=False))
        value = system.sample_occupancy()
        assert 0.0 < value <= 1.0


class TestTraffic:
    def test_read_miss_produces_request_and_data(self, tiny_private_system):
        system = make_system(tiny_private_system)
        system.access(MemoryAccess(core=0, address=0x9000, is_write=False))
        assert system.traffic.messages[MessageType.GET_SHARED] == 1
        assert system.traffic.messages[MessageType.DATA] == 1

    def test_write_miss_produces_getm(self, tiny_private_system):
        system = make_system(tiny_private_system)
        system.access(MemoryAccess(core=0, address=0x9000, is_write=True))
        assert system.traffic.messages[MessageType.GET_MODIFIED] == 1

    def test_traffic_tracking_can_be_disabled(self, tiny_private_system):
        system = TiledCMP(
            tiny_private_system,
            cuckoo_factory,
            track_traffic=False,
            page_mapper=identity_mapper(),
        )
        system.access(MemoryAccess(core=0, address=0x9000, is_write=True))
        assert system.traffic.total_messages == 0
