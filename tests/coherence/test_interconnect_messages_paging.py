"""Tests for the mesh model, message accounting and page mapping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence.interconnect import MeshInterconnect
from repro.coherence.messages import MessageType, TrafficStats, message_bytes
from repro.coherence.paging import PageMapper


class TestMeshInterconnect:
    def test_square_mesh_dimensions(self):
        mesh = MeshInterconnect(16)
        assert mesh.dimensions == (4, 4)

    def test_non_square_count(self):
        mesh = MeshInterconnect(8)
        rows, cols = mesh.dimensions
        assert rows * cols >= 8

    def test_hops_is_manhattan_distance(self):
        mesh = MeshInterconnect(16)
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 3) == 3
        assert mesh.hops(0, 15) == 6  # corner to corner on a 4x4 mesh
        assert mesh.hops(5, 6) == 1

    def test_hops_symmetry(self):
        mesh = MeshInterconnect(16)
        for a in range(16):
            for b in range(16):
                assert mesh.hops(a, b) == mesh.hops(b, a)

    def test_average_distance_positive(self):
        mesh = MeshInterconnect(4)
        assert 0 < mesh.average_distance() < 4

    def test_out_of_range_tile(self):
        mesh = MeshInterconnect(4)
        with pytest.raises(IndexError):
            mesh.hops(0, 4)

    def test_single_tile(self):
        mesh = MeshInterconnect(1)
        assert mesh.hops(0, 0) == 0

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_property_triangle_inequality(self, tiles):
        mesh = MeshInterconnect(tiles)
        a, b, c = 0, tiles // 2, tiles - 1
        assert mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c)


class TestTrafficStats:
    def test_record_counts_messages_hops_and_bytes(self):
        stats = TrafficStats()
        stats.record(MessageType.INVALIDATE, hops=2)
        stats.record(MessageType.DATA, hops=3)
        assert stats.total_messages == 2
        assert stats.invalidation_messages == 1
        assert stats.hops == 5
        assert stats.bytes_transferred == message_bytes(
            MessageType.INVALIDATE
        ) + message_bytes(MessageType.DATA)

    def test_data_messages_are_larger_than_control(self):
        assert message_bytes(MessageType.DATA) > message_bytes(MessageType.GET_SHARED)

    def test_record_with_count(self):
        stats = TrafficStats()
        stats.record(MessageType.INV_ACK, hops=1, count=5)
        assert stats.messages[MessageType.INV_ACK] == 5
        assert stats.hops == 5

    def test_negative_count_rejected(self):
        stats = TrafficStats()
        with pytest.raises(ValueError):
            stats.record(MessageType.DATA, count=-1)

    def test_merge(self):
        a, b = TrafficStats(), TrafficStats()
        a.record(MessageType.GET_SHARED, hops=1)
        b.record(MessageType.GET_SHARED, hops=2)
        b.record(MessageType.DATA, hops=1)
        merged = a.merge(b)
        assert merged.messages[MessageType.GET_SHARED] == 2
        assert merged.messages[MessageType.DATA] == 1
        assert merged.hops == 4


class TestPageMapper:
    def test_translation_is_stable(self):
        mapper = PageMapper(page_bytes=4096, seed=1)
        first = mapper.translate(0x12345)
        assert mapper.translate(0x12345) == first

    def test_same_page_offsets_preserved(self):
        mapper = PageMapper(page_bytes=4096, seed=1)
        base = mapper.translate(0x8000)
        assert mapper.translate(0x8000 + 100) == base + 100

    def test_different_pages_map_to_different_frames(self):
        mapper = PageMapper(page_bytes=4096, seed=2)
        pages = {mapper.translate(i * 4096) // 4096 for i in range(500)}
        assert len(pages) == 500

    def test_seed_determines_layout(self):
        a = PageMapper(page_bytes=4096, seed=7)
        b = PageMapper(page_bytes=4096, seed=7)
        c = PageMapper(page_bytes=4096, seed=8)
        addresses = [i * 4096 for i in range(50)]
        assert [a.translate(x) for x in addresses] == [b.translate(x) for x in addresses]
        assert [a.translate(x) for x in addresses] != [c.translate(x) for x in addresses]

    def test_pages_mapped_counter(self):
        mapper = PageMapper(page_bytes=1024)
        mapper.translate(0)
        mapper.translate(100)      # same page
        mapper.translate(5000)     # new page
        assert mapper.pages_mapped == 2

    def test_scattering_is_not_contiguous(self):
        """Random placement must break virtual contiguity (that is its job)."""
        mapper = PageMapper(page_bytes=4096, seed=3)
        physical = [mapper.translate(i * 4096) // 4096 for i in range(64)]
        deltas = {physical[i + 1] - physical[i] for i in range(len(physical) - 1)}
        assert deltas != {1}

    def test_pool_exhaustion_raises(self):
        mapper = PageMapper(page_bytes=64, physical_pages=4, seed=0)
        for page in range(4):
            mapper.translate(page * 64)
        with pytest.raises(RuntimeError):
            mapper.translate(10_000 * 64)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PageMapper(page_bytes=0)
        with pytest.raises(ValueError):
            PageMapper(physical_pages=0)
        mapper = PageMapper()
        with pytest.raises(ValueError):
            mapper.translate(-1)
