"""Timeline collection must be observation-only and kernel-independent.

Two invariants anchor the timeline design:

1. **On/off identity** — enabling ``timeline_interval`` may not change a
   single measured statistic: sampling reads non-mutating accessors at
   sub-slice boundaries only.
2. **Kernel identity** — the scalar protocol path and the vectorised
   whole-chunk kernel must produce ``==``-equal timelines, byte-identical
   once persisted: samples are taken at boundaries where both kernels
   have retired exactly the same accesses.

Both are exercised property-style over randomized access streams with
randomized chunk boundaries, including an under-provisioned configuration
that forces displacement chains and forced invalidations.
"""

import numpy as np
import pytest

from repro.coherence.simulator import TraceSimulator
from repro.coherence.system import MemoryAccess, TiledCMP
from repro.config import CacheConfig, CacheLevel, SystemConfig
from repro.core.cuckoo_directory import CuckooDirectory
from repro.obs.timeline import save_timeline


def _config(cores=4):
    return SystemConfig(
        num_cores=cores,
        l1_config=CacheConfig(size_bytes=1024, associativity=2),
        l2_config=CacheConfig(size_bytes=8192, associativity=16),
        tracked_level=CacheLevel.L1,
        page_bytes=256,
    )


def _roomy_factory(num_caches, slice_id):
    return CuckooDirectory(num_caches=num_caches, num_sets=64, num_ways=4)


def _cramped_factory(num_caches, slice_id):
    # Deliberately under-provisioned: long displacement chains and forced
    # invalidations are routine, exercising every cumulative channel.
    return CuckooDirectory(num_caches=num_caches, num_sets=4, num_ways=2)


def _stream(seed, length, cores=4, blocks=120):
    rng = np.random.default_rng(seed)
    cores_arr = rng.integers(0, cores, size=length)
    addresses = rng.integers(0, blocks, size=length) * 64
    writes = rng.random(size=length) < 0.3
    instrs = np.zeros(length, dtype=bool)
    return cores_arr, addresses, writes, instrs


def _chunks(stream, seed):
    """The stream cut at random chunk boundaries (chunk production shape)."""
    rng = np.random.default_rng(seed + 1)
    cores, addresses, writes, instrs = stream
    position = 0
    out = []
    while position < len(cores):
        span = int(rng.integers(1, 97))
        stop = min(position + span, len(cores))
        out.append(
            (
                cores[position:stop],
                addresses[position:stop],
                writes[position:stop],
                instrs[position:stop],
            )
        )
        position = stop
    return out


def _run(kernel, factory, stream, seed, timeline_interval, warmup=100,
         max_accesses=900):
    system = TiledCMP(_config(), factory, batch_kernel=kernel)
    simulator = TraceSimulator(
        system,
        warmup_accesses=warmup,
        occupancy_sample_interval=150,
        timeline_interval=timeline_interval,
    )
    return simulator.run_chunks(_chunks(stream, seed), max_accesses=max_accesses)


def _stats_fingerprint(result):
    stats = result.directory_stats
    return (
        result.accesses,
        result.cache_hit_rate,
        result.average_occupancy,
        tuple(result.occupancy_samples),
        stats.insertions,
        stats.insertion_attempts,
        stats.forced_invalidations,
        tuple(sorted(stats.attempt_histogram.items())),
        result.traffic.total_messages,
        result.traffic.bytes_transferred,
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("factory", [_roomy_factory, _cramped_factory],
                         ids=["roomy", "forced-invalidations"])
class TestKernelIdentity:
    def test_scalar_and_vector_timelines_are_equal(self, seed, factory):
        stream = _stream(seed, 1200)
        scalar = _run("scalar", factory, stream, seed, timeline_interval=100)
        vector = _run("vector", factory, stream, seed, timeline_interval=100)
        assert _stats_fingerprint(scalar) == _stats_fingerprint(vector)
        assert scalar.timeline == vector.timeline
        assert scalar.timeline.num_samples("occupancy_banks") > 0

    def test_persisted_timelines_are_byte_identical(self, seed, factory, tmp_path):
        stream = _stream(seed, 1200)
        scalar = _run("scalar", factory, stream, seed, timeline_interval=100)
        vector = _run("vector", factory, stream, seed, timeline_interval=100)
        save_timeline(tmp_path / "scalar.npz", scalar.timeline)
        save_timeline(tmp_path / "vector.npz", vector.timeline)
        assert (
            (tmp_path / "scalar.npz").read_bytes()
            == (tmp_path / "vector.npz").read_bytes()
        )


@pytest.mark.parametrize("seed", [0, 5])
@pytest.mark.parametrize("kernel", ["scalar", "vector"])
class TestObservationOnly:
    def test_timeline_on_off_identity(self, seed, kernel):
        stream = _stream(seed, 1200)
        off = _run(kernel, _cramped_factory, stream, seed, timeline_interval=None)
        on = _run(kernel, _cramped_factory, stream, seed, timeline_interval=75)
        assert _stats_fingerprint(off) == _stats_fingerprint(on)
        assert off.timeline is not None and not off.timeline.enabled
        assert on.timeline.enabled

    def test_interval_choice_does_not_change_results(self, seed, kernel):
        stream = _stream(seed, 1200)
        coarse = _run(kernel, _cramped_factory, stream, seed, timeline_interval=300)
        fine = _run(kernel, _cramped_factory, stream, seed, timeline_interval=50)
        assert _stats_fingerprint(coarse) == _stats_fingerprint(fine)
        assert fine.timeline.num_samples("insertions") > (
            coarse.timeline.num_samples("insertions")
        )


class TestPerAccessChunkAgreement:
    def test_run_and_run_chunks_produce_the_same_timeline(self):
        stream = _stream(7, 1000)
        chunked = _run("scalar", _roomy_factory, stream, 7, timeline_interval=120,
                       warmup=50, max_accesses=800)

        system = TiledCMP(_config(), _roomy_factory, batch_kernel="scalar")
        simulator = TraceSimulator(
            system, warmup_accesses=50, occupancy_sample_interval=150,
            timeline_interval=120,
        )
        cores, addresses, writes, instrs = stream
        accesses = (
            MemoryAccess(int(c), int(a), bool(w), bool(i))
            for c, a, w, i in zip(cores, addresses, writes, instrs)
        )
        per_access = simulator.run(accesses, max_accesses=800)
        assert _stats_fingerprint(per_access) == _stats_fingerprint(chunked)
        assert per_access.timeline == chunked.timeline


class TestTimelineContents:
    def test_cumulative_channels_match_final_statistics(self):
        stream = _stream(11, 1200)
        result = _run("vector", _cramped_factory, stream, 11, timeline_interval=100,
                      max_accesses=800)
        timeline = result.timeline
        stats = result.directory_stats
        # 800 measured accesses at interval 100 -> the last sample lands on
        # the final access, so cumulative channels end at the run's totals.
        assert timeline.num_samples("insertions") == 8
        assert timeline.channel("insertions")[-1] == stats.insertions
        assert timeline.channel("insertion_attempts")[-1] == stats.insertion_attempts
        assert timeline.channel("forced_invalidations")[-1] == (
            stats.forced_invalidations
        )
        assert timeline.channel("total_messages")[-1] == (
            result.traffic.total_messages
        )
        chains = timeline.channel("attempt_chains")
        assert chains.sum() == stats.insertions
        assert (chains >= 0).all()

    def test_occupancy_channel_is_the_legacy_samples(self):
        stream = _stream(13, 1200)
        result = _run("vector", _roomy_factory, stream, 13, timeline_interval=200)
        assert result.timeline.occupancy_list() == result.occupancy_samples
        assert result.average_occupancy == (
            sum(result.occupancy_samples) / len(result.occupancy_samples)
        )


class TestSampledWindows:
    def test_window_mode_samples_once_per_completed_window(self):
        stream = _stream(17, 2000)
        system = TiledCMP(_config(), _roomy_factory, batch_kernel="vector")
        simulator = TraceSimulator(
            system, occupancy_sample_interval=100, timeline_interval=50
        )
        result, windows = simulator.run_sampled(
            _chunks(stream, 17), measure_window=300, skip_window=200,
            max_windows=3,
        )
        timeline = result.timeline
        assert windows == 3
        assert timeline.mode == "window"
        assert timeline.num_samples("insertions") == windows
        # Window stats reset per window: every per-window total is fresh.
        assert (timeline.channel("insertions") >= 0).all()
        assert timeline.channel("insertions").sum() == (
            result.directory_stats.insertions
        )

    def test_sampled_statistics_unchanged_by_timeline(self):
        stream = _stream(19, 2000)

        def run_sampled(timeline_interval):
            system = TiledCMP(_config(), _roomy_factory, batch_kernel="vector")
            simulator = TraceSimulator(
                system, occupancy_sample_interval=100,
                timeline_interval=timeline_interval,
            )
            return simulator.run_sampled(
                _chunks(stream, 19), measure_window=250, skip_window=250,
                max_windows=3,
            )

        off, windows_off = run_sampled(None)
        on, windows_on = run_sampled(50)
        assert windows_off == windows_on
        assert _stats_fingerprint(off) == _stats_fingerprint(on)
