"""Vectorized drain pipeline vs scalar drain: bit-identity property suite.

``TiledCMP._drain_batch_vector`` replaces the scalar miss drain with an
all-miss accounting baseline plus per-hit corrections, batched candidate
hashing, inlined directory probes and a decoupled per-bank L2 replay.
These tests drive the *same* vector hit-kernel front-end into both drain
back-ends (the cached support decision is overridden to force the scalar
fallback) and require every observable — flat cache arrays, DirectoryStats
including the attempt histogram, the cuckoo tables' way arrays / locators /
start-way cursors, bank stats and traffic — to match bit for bit:

* across directory organizations (cuckoo takes the vector path; sparse
  and stashed-cuckoo variants must *refuse* it and still agree),
* under tight tables where displacement walks terminate in forced
  invalidations (the rollback / re-injection machinery), and
* with chunk boundaries placed at every offset of a conflict-heavy
  stream, so every drain class crosses a boundary somewhere.
"""

import numpy as np
import pytest

import repro.coherence.system as sysmod
from repro.coherence.paging import PageMapper
from repro.coherence.system import TiledCMP
from repro.config import CacheConfig, CacheLevel, SystemConfig
from repro.core.cuckoo_directory import CuckooDirectory
from repro.core.stashed_cuckoo import StashedCuckooDirectory
from repro.directories.sparse import SparseDirectory
from repro.hashing.strong import StrongHashFamily
from repro.obs.metrics import REGISTRY

from test_batch_equivalence import _config, _make_system, _run_batched, _snapshot
from test_batch_kernel import _deep_directory_state


@pytest.fixture
def vector_kernel(monkeypatch):
    """Pin the whole-chunk kernel so only the drain back-end differs."""
    monkeypatch.setattr(sysmod, "DEFAULT_BATCH_KERNEL", "vector")
    yield


@pytest.fixture
def counters():
    """Enabled drain counters, read as a dict; restored afterwards."""
    was_enabled = REGISTRY.enabled
    REGISTRY.enable()

    def read():
        return {
            "vector": sysmod._DRAIN_VECTOR.value,
            "scalar": sysmod._DRAIN_SCALAR.value,
            "classes": {
                "hits": sysmod._DRAIN_CLS_HITS.value,
                "upgrades": sysmod._DRAIN_CLS_UPGRADES.value,
                "read_dirhit": sysmod._DRAIN_CLS_READ_DIRHIT.value,
                "read_insert": sysmod._DRAIN_CLS_READ_INSERT.value,
                "write_miss": sysmod._DRAIN_CLS_WRITE_MISS.value,
                "walks": sysmod._DRAIN_CLS_WALKS.value,
            },
        }

    yield read
    if not was_enabled:
        REGISTRY.disable()


def _force_scalar_drain(system):
    """Poison the cached support decision: every drain takes the fallback."""
    system._drain_vector_support = False
    return system


def _deep_state(system):
    return (_snapshot(system), _deep_directory_state(system))


def _run_pair(stream, chunk, factory, level=CacheLevel.L1, cores=4):
    """One stream through both drain back-ends; returns both systems."""
    vector_system = _make_system(_config(level, cores), factory)
    _run_batched(vector_system, stream, chunk)
    scalar_system = _force_scalar_drain(
        _make_system(_config(level, cores), factory)
    )
    _run_batched(scalar_system, stream, chunk)
    assert _deep_state(vector_system) == _deep_state(scalar_system)
    return vector_system, scalar_system


def _cuckoo_factory(num_caches, slice_id):
    return CuckooDirectory(num_caches=num_caches, num_sets=64, num_ways=4)


def _tight_cuckoo_factory(num_caches, slice_id):
    # Saturates quickly: displacement walks hit the attempt cut-off and
    # evict victims, driving forced invalidations and kernel rollbacks.
    return CuckooDirectory(
        num_caches=num_caches, num_sets=4, num_ways=2, max_attempts=4
    )


def _strong_cuckoo_factory(num_caches, slice_id):
    return CuckooDirectory(
        num_caches=num_caches,
        num_sets=64,
        num_ways=4,
        hash_family=StrongHashFamily(num_ways=4, num_sets=64, seed=9),
    )


def _stash_factory(num_caches, slice_id):
    return StashedCuckooDirectory(
        num_caches=num_caches, num_sets=64, num_ways=4, stash_entries=4
    )


def _sparse_factory(num_caches, slice_id):
    return SparseDirectory(num_caches=num_caches, num_sets=2, num_ways=2)


def _mixed_stream(seed=11, rounds=160, num_cores=4, blocks=28):
    """Every drain class: read runs, write runs, upgrades, ping-pong."""
    rng = np.random.default_rng(seed)
    stream = []
    for _ in range(rounds):
        core = int(rng.integers(num_cores))
        block = int(rng.integers(blocks)) * 64
        kind = int(rng.integers(5))
        run = int(rng.integers(1, 7))
        if kind == 0:
            stream += [(core, block, False, False)] * run
        elif kind == 1:
            stream += [(core, block, True, False)] * run
        elif kind == 2:  # S/E -> M upgrade after a read run
            stream += [(core, block, False, False)] * run
            stream.append((core, block, True, False))
        elif kind == 3:  # widely shared, then one writer invalidates
            for reader in range(num_cores):
                stream.append((reader, block, False, False))
            stream.append((core, block, True, False))
        else:  # ping-pong
            other = (core + 1) % num_cores
            for i in range(run):
                stream.append(
                    (core if i % 2 == 0 else other, block, i % 2 == 1, False)
                )
    return stream


# -- organization coverage ----------------------------------------------------


def test_cuckoo_vector_vs_scalar_drain(vector_kernel, counters):
    before = counters()
    vector_system, _scalar_system = _run_pair(
        _mixed_stream(), 64, _cuckoo_factory
    )
    after = counters()
    # The pair really exercised both back-ends.
    assert after["vector"] > before["vector"]
    assert after["scalar"] > before["scalar"]
    assert vector_system._drain_vector_support  # cuckoo supports the pipeline


def test_strong_hash_family_shared_batch_key(vector_kernel, counters):
    before = counters()
    _run_pair(_mixed_stream(seed=23), 96, _strong_cuckoo_factory)
    assert counters()["vector"] > before["vector"]


def test_stash_variant_refuses_vector_drain(vector_kernel, counters):
    before = counters()
    vector_system, _ = _run_pair(_mixed_stream(seed=5), 64, _stash_factory)
    after = counters()
    # drain_handles() is None for the stashed subclass: both systems take
    # the scalar fallback and the vector counter must not move.
    assert vector_system._drain_vector_support is False
    assert after["vector"] == before["vector"]
    assert after["scalar"] > before["scalar"]


def test_sparse_refuses_vector_drain(vector_kernel, counters):
    before = counters()
    vector_system, _ = _run_pair(_mixed_stream(seed=7), 64, _sparse_factory)
    after = counters()
    assert vector_system._drain_vector_support is False
    assert after["vector"] == before["vector"]


def test_default_drain_pipeline_scalar_forces_fallback(
    vector_kernel, counters, monkeypatch
):
    # The module default is the benchmark's control point: with it pinned
    # to "scalar" even a fully supported cuckoo system must resolve the
    # cached support decision to the fallback.
    monkeypatch.setattr(sysmod, "DEFAULT_DRAIN_PIPELINE", "scalar")
    before = counters()
    system = _make_system(_config(CacheLevel.L1, 4), _cuckoo_factory)
    _run_batched(system, _mixed_stream(seed=19), 64)
    after = counters()
    assert system._drain_vector_support is False
    assert after["vector"] == before["vector"]
    assert after["scalar"] > before["scalar"]


def test_l2_tracking_replays_banks_identically(vector_kernel):
    # Tracking L1 keeps shared-L2 banks live: the vector drain's decoupled
    # per-bank replay must reproduce the scalar drain's bank stats exactly
    # (asserted via the banks field of the snapshot).
    vector_system, _ = _run_pair(_mixed_stream(seed=13), 128, _cuckoo_factory)
    assert vector_system.l2_banks is not None


# -- forced invalidations, rollbacks, re-injection ----------------------------


def test_tight_tables_force_invalidations_identically(vector_kernel):
    stream = _mixed_stream(seed=3, rounds=220, blocks=48)
    for chunk in (32, 64, len(stream)):
        vector_system, _ = _run_pair(stream, chunk, _tight_cuckoo_factory)
        stats = vector_system.directory_stats()
        assert stats.forced_invalidations > 0


def test_walks_and_histogram_match_under_pressure(vector_kernel):
    stream = _mixed_stream(seed=29, rounds=260, blocks=64)
    vector_system, scalar_system = _run_pair(stream, 96, _tight_cuckoo_factory)
    v_stats = vector_system.directory_stats()
    s_stats = scalar_system.directory_stats()
    assert dict(v_stats.attempt_histogram) == dict(s_stats.attempt_histogram)
    assert v_stats.insertion_attempts == s_stats.insertion_attempts
    assert max(v_stats.attempt_histogram) > 1  # walks actually happened


# -- chunk boundaries at every offset -----------------------------------------


def test_chunk_boundaries_at_every_offset(vector_kernel, monkeypatch):
    # Without the floor override, chunks draining fewer than
    # _DRAIN_VECTOR_MIN accesses would take the scalar fallback on both
    # sides and compare trivially; forcing it to 1 makes every offset
    # exercise the vector pipeline for real.
    monkeypatch.setattr(sysmod, "_DRAIN_VECTOR_MIN", 1)
    stream = _mixed_stream(seed=17, rounds=60, blocks=12)
    boundary_span = 24  # covers every phase of the longest generated run
    for chunk in range(1, boundary_span + 1):
        _run_pair(stream, chunk, _cuckoo_factory)


def test_single_chunk_whole_stream(vector_kernel):
    stream = _mixed_stream(seed=41, rounds=300)
    _run_pair(stream, len(stream), _cuckoo_factory)
