"""Tests for the trace-driven simulation harness."""

import itertools

import pytest

from repro.coherence.simulator import TraceSimulator
from repro.coherence.system import MemoryAccess, TiledCMP
from repro.core.cuckoo_directory import CuckooDirectory


def factory(num_caches, slice_id):
    return CuckooDirectory(num_caches=num_caches, num_sets=64, num_ways=4)


def make_system(config):
    return TiledCMP(config, factory)


def round_robin_trace(num_cores, blocks, write_every=5):
    """Deterministic unbounded trace cycling cores over a block range."""
    for i in itertools.count():
        yield MemoryAccess(
            core=i % num_cores,
            address=(i % blocks) * 64,
            is_write=(i % write_every == 0),
        )


class TestTraceSimulator:
    def test_measurement_window_is_bounded(self, tiny_private_system):
        simulator = TraceSimulator(make_system(tiny_private_system), warmup_accesses=10)
        result = simulator.run(round_robin_trace(4, 100), max_accesses=500)
        assert result.accesses == 500

    def test_warmup_statistics_are_discarded(self, tiny_private_system):
        system = make_system(tiny_private_system)
        simulator = TraceSimulator(system, warmup_accesses=200)
        result = simulator.run(round_robin_trace(4, 50), max_accesses=100)
        # All 50 blocks were inserted during warm-up, so the measurement
        # window should see almost no new insertions.
        assert result.directory_stats.insertions < 50

    def test_zero_warmup_counts_everything(self, tiny_private_system):
        system = make_system(tiny_private_system)
        simulator = TraceSimulator(system, warmup_accesses=0)
        result = simulator.run(round_robin_trace(4, 50), max_accesses=200)
        assert result.directory_stats.insertions >= 50

    def test_occupancy_samples_collected(self, tiny_private_system):
        simulator = TraceSimulator(
            make_system(tiny_private_system),
            warmup_accesses=0,
            occupancy_sample_interval=50,
        )
        result = simulator.run(round_robin_trace(4, 200), max_accesses=400)
        assert len(result.occupancy_samples) >= 8
        assert 0.0 < result.average_occupancy <= 1.0

    def test_short_run_still_reports_an_occupancy_sample(self, tiny_private_system):
        simulator = TraceSimulator(
            make_system(tiny_private_system),
            warmup_accesses=0,
            occupancy_sample_interval=10_000,
        )
        result = simulator.run(round_robin_trace(4, 20), max_accesses=30)
        assert len(result.occupancy_samples) == 1

    def test_finite_trace_terminates_naturally(self, tiny_private_system):
        simulator = TraceSimulator(make_system(tiny_private_system), warmup_accesses=0)
        finite = [MemoryAccess(core=0, address=i * 64) for i in range(25)]
        result = simulator.run(finite)
        assert result.accesses == 25

    def test_per_slice_stats_cover_all_slices(self, tiny_private_system):
        simulator = TraceSimulator(make_system(tiny_private_system), warmup_accesses=0)
        result = simulator.run(round_robin_trace(4, 64), max_accesses=200)
        assert len(result.per_slice_stats) == 4
        assert sum(s.insertions for s in result.per_slice_stats) == (
            result.directory_stats.insertions
        )

    def test_cache_hit_rate_in_range(self, tiny_private_system):
        simulator = TraceSimulator(make_system(tiny_private_system), warmup_accesses=50)
        result = simulator.run(round_robin_trace(4, 30), max_accesses=300)
        assert 0.0 <= result.cache_hit_rate <= 1.0
        # A 30-block working set fits easily, so hits dominate after warm-up.
        assert result.cache_hit_rate > 0.5

    def test_result_convenience_properties(self, tiny_private_system):
        simulator = TraceSimulator(make_system(tiny_private_system), warmup_accesses=0)
        result = simulator.run(round_robin_trace(4, 64), max_accesses=200)
        assert result.average_insertion_attempts >= 1.0
        assert result.forced_invalidation_rate >= 0.0
        assert isinstance(result.attempt_distribution(), dict)

    def test_rejects_bad_parameters(self, tiny_private_system):
        system = make_system(tiny_private_system)
        with pytest.raises(ValueError):
            TraceSimulator(system, warmup_accesses=-1)
        with pytest.raises(ValueError):
            TraceSimulator(system, occupancy_sample_interval=0)

    def test_deterministic_given_same_trace(self, tiny_private_system):
        results = []
        for _ in range(2):
            simulator = TraceSimulator(make_system(tiny_private_system), warmup_accesses=0)
            results.append(simulator.run(round_robin_trace(4, 100), max_accesses=500))
        assert (
            results[0].directory_stats.insertions
            == results[1].directory_stats.insertions
        )
        assert results[0].cache_hit_rate == results[1].cache_hit_rate
