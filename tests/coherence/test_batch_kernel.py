"""The whole-chunk kernel must be bit-identical to the scalar loop.

``TiledCMP._access_batch_vector`` resolves every tracked-cache lookup of a
chunk at once, retires conflict-free hits with vectorised stamp writes,
and drains the remainder through the scalar MESI protocol.  Its conflict-
group partition (blocks with any miss/coherence event drain everywhere;
``(cache, set)`` groups with drains drag their hits) and its rollback /
re-injection hazard handling are exactly what these tests attack:
adversarial chunks — interleaved writers, chunk boundaries splitting
runs, forced invalidations mid-chunk, single-access chunks, all-miss
chunks — replayed through both kernels must leave every statistic, every
flat cache array, and the cuckoo tables' internal state identical.
"""

import numpy as np
import pytest

import repro.coherence.system as sysmod
from repro.coherence.system import (
    _BATCH_FOLDED,
    _BATCH_KERNEL_HITS,
    _BATCH_ROLLBACKS,
)
from repro.config import CacheLevel
from repro.core.cuckoo_directory import CuckooDirectory
from repro.hashing.strong import StrongHashFamily

from test_batch_equivalence import (
    _config,
    _cuckoo_factory,
    _make_system,
    _run_batched,
    _run_scalar,
    _snapshot,
    _sparse_factory,
)


@pytest.fixture
def kernel(monkeypatch):
    """Force a kernel per system via the module default; restores after."""

    def force(name):
        monkeypatch.setattr(sysmod, "DEFAULT_BATCH_KERNEL", name)

    yield force


def _deep_directory_state(system):
    """Cuckoo-table internals the public snapshot does not reach."""
    out = []
    for directory in system._directories:
        if not isinstance(directory, CuckooDirectory):
            return None
        table = directory._table
        out.append(
            (
                [list(way_keys) for way_keys in table._keys],
                [
                    [None if v is None else v._mask for v in way_values]
                    for way_values in table._values
                ],
                dict(table._locator),
                table._size,
                table._start_way,
            )
        )
    return out


def _assert_identical(scalar_system, vector_system):
    assert _snapshot(scalar_system) == _snapshot(vector_system)
    assert _deep_directory_state(scalar_system) == _deep_directory_state(
        vector_system
    )


def _run_pair(stream, chunk, factory=_cuckoo_factory, level=CacheLevel.L1,
              kernel=None, cores=4):
    kernel("scalar")
    scalar_system = _make_system(_config(level, cores), factory)
    _run_scalar(scalar_system, stream)
    kernel("vector")
    vector_system = _make_system(_config(level, cores), factory)
    _run_batched(vector_system, stream, chunk)
    _assert_identical(scalar_system, vector_system)


# -- conflict-group partitioner: adversarial chunk shapes -----------------------


def test_interleaved_writers_same_block(kernel):
    """Writers ping-ponging one block force invalidation chains mid-chunk."""
    stream = []
    for round_ in range(40):
        block = (round_ % 3) * 64
        for core in (0, 1, 2, 3, 0, 2):
            stream.append((core, block, True, False))
            stream.append(((core + 1) % 4, block, False, False))
    for chunk in (5, 64, len(stream)):
        _run_pair(stream, chunk, kernel=kernel)


def test_chunk_boundary_splits_runs(kernel):
    """Same-block runs split across chunk boundaries at every offset."""
    stream = []
    for i in range(30):
        core = i % 4
        block = (i % 5) * 64
        stream += [(core, block, False, False)] * 7
        stream.append((core, block, True, False))
    # Chunk sizes chosen to cut the 8-access runs at every phase.
    for chunk in (1, 2, 3, 5, 7, 8, 9, 13):
        _run_pair(stream, chunk, kernel=kernel)


def test_single_access_chunks(kernel):
    rng = np.random.default_rng(5)
    n = 400
    stream = list(
        zip(
            rng.integers(0, 4, n).tolist(),
            (rng.integers(0, 80, n) * 64).tolist(),
            (rng.random(n) < 0.3).tolist(),
            [False] * n,
        )
    )
    _run_pair(stream, 1, kernel=kernel)


def test_all_miss_chunks(kernel):
    """Strictly fresh addresses: every access misses, the drain is the chunk."""
    stream = [(i % 4, i * 64, i % 3 == 0, False) for i in range(600)]
    for chunk in (17, 128, 600):
        _run_pair(stream, chunk, kernel=kernel)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("level", [CacheLevel.L1, CacheLevel.L2])
def test_randomized_streams(kernel, seed, level):
    rng = np.random.default_rng(seed)
    n = 1500
    stream = list(
        zip(
            rng.integers(0, 4, n).tolist(),
            (rng.integers(0, 300, n) * 64).tolist(),
            (rng.random(n) < 0.3).tolist(),
            (rng.random(n) < 0.1).tolist(),
        )
    )
    for chunk in (13, 101, n):
        _run_pair(stream, chunk, level=level, kernel=kernel)


def test_sparse_forced_invalidations(kernel):
    """A 2x2 sparse directory floods the forced-invalidation path."""
    rng = np.random.default_rng(9)
    n = 1200
    stream = list(
        zip(
            rng.integers(0, 4, n).tolist(),
            (rng.integers(0, 200, n) * 64).tolist(),
            (rng.random(n) < 0.25).tolist(),
            [False] * n,
        )
    )
    for chunk in (8, 64, 512):
        _run_pair(stream, chunk, factory=_sparse_factory, kernel=kernel)


def _tight_cuckoo(num_caches, slice_id):
    # Two ways over eight sets with a three-attempt walk: insertions cut
    # off constantly, so forced invalidations (and the kernel's rollback
    # machinery) fire inside the *cuckoo* fast-path drain as well.
    return CuckooDirectory(
        num_caches=num_caches,
        num_sets=8,
        num_ways=2,
        hash_family=StrongHashFamily(2, 8, seed=1),
        max_insertion_attempts=3,
    )


def test_cuckoo_forced_invalidations_midchunk(kernel, obs_enabled):
    rng = np.random.default_rng(11)
    n = 3000
    stream = list(
        zip(
            rng.integers(0, 4, n).tolist(),
            (rng.integers(0, 400, n) * 64).tolist(),
            (rng.random(n) < 0.25).tolist(),
            [False] * n,
        )
    )
    rollbacks_before = _BATCH_ROLLBACKS.value
    for chunk in (8, 64, 512):
        kernel("scalar")
        scalar_system = _make_system(_config(CacheLevel.L1), _tight_cuckoo)
        _run_scalar(scalar_system, stream)
        kernel("vector")
        vector_system = _make_system(_config(CacheLevel.L1), _tight_cuckoo)
        _run_batched(vector_system, stream, chunk)
        # The scenario must actually exercise the hazard path.
        assert scalar_system.directory_stats().forced_invalidations > 0
        _assert_identical(scalar_system, vector_system)
    # At least one chunking makes a forced invalidation victimise a block
    # with already-retired kernel hits, forcing rollback + re-injection.
    assert _BATCH_ROLLBACKS.value > rollbacks_before


# -- run-length fold vs vectorized kernel (two fast paths, one answer) ----------


@pytest.fixture
def obs_enabled():
    import repro.obs as obs

    obs.enable()
    yield
    obs.disable()


def test_same_block_run_fold_vs_kernel(kernel, obs_enabled):
    """A chunk that is one long same-block run: the scalar kernel folds it
    through ``touch_repeats``, the vector kernel retires it vectorised —
    the stats must not drift apart, and each fast path must engage.

    The warm-up (fill + upgrade to M) goes in its own chunk: a chunk's
    conflict-group rule drains every access to a block that misses or
    upgrades inside that same chunk, so only a pure-hit chunk lets the
    vector kernel retire the run.
    """
    core, block = 1, 7 * 64
    warm = [(core, block, False, False), (core, block, True, False)]
    run = [(core, block, False, False)] * 500  # read run, M resident
    run += [(core, block, True, False)] * 300  # write run, stays M

    def execute(system):
        for chunk in (warm, run):
            cores, addresses, writes, instrs = zip(*chunk)
            system.access_batch(
                list(cores), list(addresses), list(writes), list(instrs)
            )

    folded_before = _BATCH_FOLDED.value
    kernel("scalar")
    scalar_system = _make_system(_config(CacheLevel.L1), _cuckoo_factory)
    execute(scalar_system)
    assert _BATCH_FOLDED.value - folded_before >= len(run) - 1

    kernel_before = _BATCH_KERNEL_HITS.value
    kernel("vector")
    vector_system = _make_system(_config(CacheLevel.L1), _cuckoo_factory)
    execute(vector_system)
    assert _BATCH_KERNEL_HITS.value - kernel_before >= len(run)

    _assert_identical(scalar_system, vector_system)
