"""The batched front-end must be bit-identical to the scalar access path.

``TiledCMP.access_batch`` vectorises per-access address math, hoists the
core bounds check to chunk level, and collapses same-cache/same-block runs
into counter bumps.  None of that may change a single statistic: these
tests replay identical access streams through ``access()`` (scalar) and
``access_batch`` (with adversarial chunk boundaries and run-heavy
patterns) and require equal directory stats, cache stats, traffic and
residency; plus the batched page translation against its scalar twin.
"""

import numpy as np
import pytest

from repro.coherence.paging import PageMapper
from repro.coherence.system import MemoryAccess, TiledCMP
from repro.config import CacheConfig, CacheLevel, SystemConfig
from repro.core.cuckoo_directory import CuckooDirectory
from repro.directories.sparse import SparseDirectory


def _config(level=CacheLevel.L1, cores=4):
    return SystemConfig(
        num_cores=cores,
        l1_config=CacheConfig(size_bytes=1024, associativity=2),
        l2_config=CacheConfig(size_bytes=8192, associativity=16),
        tracked_level=level,
        page_bytes=256,
    )


def _cuckoo_factory(num_caches, slice_id):
    return CuckooDirectory(num_caches=num_caches, num_sets=64, num_ways=4)


def _sparse_factory(num_caches, slice_id):
    # Tiny on purpose: set conflicts force invalidations, exercising the
    # forced-invalidation path under batching.
    return SparseDirectory(num_caches=num_caches, num_sets=2, num_ways=2)


def _make_system(config, factory=_cuckoo_factory):
    return TiledCMP(config, factory, page_mapper=PageMapper(page_bytes=256, seed=0))


def _run_scalar(system, accesses):
    for core, address, is_write, is_instr in accesses:
        system.access(MemoryAccess(core, address, is_write, is_instr))


def _run_batched(system, accesses, chunk_size):
    for start in range(0, len(accesses), chunk_size):
        chunk = accesses[start : start + chunk_size]
        cores, addresses, writes, instrs = zip(*chunk)
        system.access_batch(
            list(cores), list(addresses), list(writes), list(instrs)
        )


def _snapshot(system):
    directory = system.directory_stats()
    return {
        "accesses": system.accesses_processed,
        "dir": (
            directory.lookups,
            directory.lookup_hits,
            directory.insertions,
            directory.insertion_attempts,
            dict(directory.attempt_histogram),
            directory.sharer_additions,
            directory.sharer_removals,
            directory.entry_removals,
            directory.forced_invalidations,
            directory.forced_invalidation_messages,
            directory.invalidate_all_operations,
            directory.bits_read,
            directory.bits_written,
        ),
        "caches": [
            (
                c.stats.accesses,
                c.stats.hits,
                c.stats.misses,
                c.stats.evictions,
                c.stats.dirty_evictions,
                c.stats.invalidations_received,
            )
            for c in system.tracked_caches
        ],
        "banks": None
        if system.l2_banks is None
        else [(b.stats.hits, b.stats.misses, b.stats.evictions) for b in system.l2_banks],
        "traffic": (
            dict(system.traffic.messages),
            system.traffic.hops,
            system.traffic.bytes_transferred,
        ),
        "resident": [
            sorted((a, c.state_of(a).value, c.probe(a).dirty) for a in c.resident_addresses())
            for c in system.tracked_caches
        ],
    }


def _run_heavy_stream(num_cores=4):
    """A stream dense in same-core/same-block runs of every flavour."""
    rng = np.random.default_rng(7)
    accesses = []
    for _ in range(120):
        core = int(rng.integers(num_cores))
        block = int(rng.integers(24)) * 64
        kind = int(rng.integers(6))
        run = int(rng.integers(1, 9))
        if kind == 0:  # read run
            accesses += [(core, block, False, False)] * run
        elif kind == 1:  # write run (M after the first write)
            accesses += [(core, block, True, False)] * run
        elif kind == 2:  # read run then a write (S/E -> M upgrade mid-run)
            accesses += [(core, block, False, False)] * run
            accesses.append((core, block, True, False))
        elif kind == 3:  # write then reads (stay M)
            accesses.append((core, block, True, False))
            accesses += [(core, block, False, False)] * run
        elif kind == 4:  # instruction-fetch run (separate L1I cache)
            accesses += [(core, block, False, True)] * run
        else:  # ping-pong between two cores on one block
            other = (core + 1) % num_cores
            for i in range(run):
                accesses.append((core if i % 2 == 0 else other, block, i % 3 == 0, False))
    return accesses


@pytest.mark.parametrize("level", [CacheLevel.L1, CacheLevel.L2])
@pytest.mark.parametrize("chunk_size", [1, 3, 17, 4096])
def test_batched_equals_scalar_on_run_heavy_stream(level, chunk_size):
    accesses = _run_heavy_stream()
    scalar = _make_system(_config(level))
    batched = _make_system(_config(level))
    _run_scalar(scalar, accesses)
    _run_batched(batched, accesses, chunk_size)
    assert _snapshot(batched) == _snapshot(scalar)


def test_batched_equals_scalar_under_forced_invalidations():
    accesses = _run_heavy_stream()
    scalar = _make_system(_config(), _sparse_factory)
    batched = _make_system(_config(), _sparse_factory)
    _run_scalar(scalar, accesses)
    _run_batched(batched, accesses, 13)
    assert _snapshot(batched) == _snapshot(scalar)


def test_batched_accepts_numpy_and_list_chunks_identically():
    accesses = _run_heavy_stream()
    cores, addresses, writes, instrs = (list(f) for f in zip(*accesses))
    as_lists = _make_system(_config())
    as_arrays = _make_system(_config())
    as_lists.access_batch(cores, addresses, writes, instrs)
    as_arrays.access_batch(
        np.asarray(cores, dtype=np.int32),
        np.asarray(addresses, dtype=np.int64),
        np.asarray(writes, dtype=np.bool_),
        np.asarray(instrs, dtype=np.bool_),
    )
    assert _snapshot(as_arrays) == _snapshot(as_lists)


def test_chunk_validation_rejects_out_of_range_cores_before_executing():
    system = _make_system(_config(cores=4))
    for bad_core in (-1, 4, 99):
        with pytest.raises(IndexError):
            system.access_batch([0, bad_core], [0x100, 0x200], [False, False], [False, False])
        # Validation is chunk-level: nothing from the bad chunk executed.
        assert system.accesses_processed == 0


def test_access_batch_start_stop_slice():
    accesses = _run_heavy_stream()
    cores, addresses, writes, instrs = (list(f) for f in zip(*accesses))
    whole = _make_system(_config())
    sliced = _make_system(_config())
    whole.access_batch(cores, addresses, writes, instrs)
    step = 29
    for start in range(0, len(cores), step):
        sliced.access_batch(
            cores, addresses, writes, instrs, start, min(start + step, len(cores))
        )
    assert _snapshot(sliced) == _snapshot(whole)


class TestTranslateBatch:
    @pytest.mark.parametrize("page_bytes", [256, 2730])  # pow2 and non-pow2
    def test_matches_scalar_translation(self, page_bytes):
        scalar = PageMapper(page_bytes=page_bytes, seed=3)
        batched = PageMapper(page_bytes=page_bytes, seed=3)
        rng = np.random.default_rng(11)
        stream = rng.integers(0, 1 << 20, size=700)
        stream[100:200] = stream[:100]  # guaranteed repeats
        expected = [scalar.translate(int(a)) for a in stream]
        out = []
        for start in range(0, len(stream), 64):
            out.extend(batched.translate_batch(stream[start : start + 64]).tolist())
        assert out == expected
        assert batched.pages_mapped == scalar.pages_mapped

    def test_interleaves_with_scalar_translation(self):
        scalar = PageMapper(page_bytes=512, seed=5)
        mixed = PageMapper(page_bytes=512, seed=5)
        rng = np.random.default_rng(13)
        stream = rng.integers(0, 1 << 18, size=300)
        expected = [scalar.translate(int(a)) for a in stream]
        out = []
        for i, start in enumerate(range(0, len(stream), 50)):
            segment = stream[start : start + 50]
            if i % 2 == 0:
                out.extend(mixed.translate_batch(segment).tolist())
            else:
                out.extend(mixed.translate(int(a)) for a in segment)
        assert out == expected

    def test_rejects_negative_addresses(self):
        mapper = PageMapper(page_bytes=256, seed=0)
        with pytest.raises(ValueError):
            mapper.translate_batch(np.asarray([0x100, -4]))

    def test_empty_batch(self):
        mapper = PageMapper(page_bytes=256, seed=0)
        assert mapper.translate_batch(np.asarray([], dtype=np.int64)).size == 0
