"""Engine and CLI integration of counter timelines.

Covers the full plumbing chain — spec field, runner rewrite, worker
payload transport, store sidecars, ``report --timeline`` rendering — plus
a golden pin of the timeline JSON/CSV serialization schema
(``golden/timeline_golden.json``): downstream tooling parses these
formats, so schema drift must be a deliberate, reviewed change.
Regenerate with ``python tests/engine/test_timeline_cli.py regenerate``.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.engine.cli import main
from repro.engine.runner import ParallelRunner
from repro.engine.spec import RunSpec
from repro.engine.store import ResultStore
from repro.obs.timeline import ATTEMPT_CHAIN_BINS, Timeline

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "timeline_golden.json"


def _deterministic_timeline():
    """A hand-fed timeline: pins serialization, not simulator numerics."""
    timeline = Timeline(occupancy_interval=200, interval=100, banks=2)

    class _System:
        ticks = 0

        def timeline_counters(self):
            type(self).ticks += 1
            t = self.ticks
            return {
                "forced_invalidations": t // 2,
                "insertions": 7 * t,
                "insertion_attempts": 9 * t,
                "stash_occupancy": t % 2,
                "tracked_hit_rate": 0.5,
                "shared_l2_hit_rate": 0.25,
                "total_messages": 40 * t,
                "traffic_bytes": 2560 * t,
                "traffic_hops": 120 * t,
            }

        def bank_occupancies(self):
            return [0.125 * self.ticks, 0.25 * self.ticks]

        def attempt_chain_bins(self, bins):
            assert bins == ATTEMPT_CHAIN_BINS
            return [6 * self.ticks, self.ticks, 0, 0, 0]

    system = _System()
    for i in range(3):
        timeline.record_occupancy(0.25 * (i + 1))
        timeline.sample(system)
    return timeline


def _golden_document():
    timeline = _deterministic_timeline()
    return {
        "json": timeline.to_json_dict(),
        "csv": timeline.to_csv(),
    }


class TestGoldenSchema:
    def test_json_and_csv_schemas_are_pinned(self):
        assert GOLDEN_PATH.exists(), (
            "golden file missing; generate it with "
            "'python tests/engine/test_timeline_cli.py regenerate'"
        )
        golden = json.loads(GOLDEN_PATH.read_text())
        document = _golden_document()
        assert document["json"] == golden["json"]
        assert document["csv"] == golden["csv"]


def _spec(**overrides):
    base = dict(workload="Oracle", tracked_level="L1", provisioning=2.0,
                scale=64, measure_accesses=1_500)
    base.update(overrides)
    return RunSpec(**base)


class TestEnginePlumbing:
    def test_runner_rewrite_is_key_neutral(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        runner = ParallelRunner(workers=1, store=store, timeline_interval=500)
        spec = _spec()  # no timeline_interval on the original spec
        report = runner.run([spec])
        result = report.result_for(spec)  # lookup by the original spec
        assert result.timeline is not None
        assert result.timeline.interval == 500
        assert result.spec.key() == spec.key()

    def test_sidecar_roundtrip_through_the_store(self, tmp_path):
        path = tmp_path / "results.jsonl"
        runner = ParallelRunner(
            workers=1, store=ResultStore(path), timeline_interval=500
        )
        simulated = runner.run_spec(_spec())

        reopened = ResultStore(path)
        cached = reopened.get(_spec(timeline_interval=500))
        assert cached is not None
        assert cached.timeline == simulated.timeline
        assert reopened.timeline_path(_spec().key()).exists()

    def test_missing_sidecar_is_a_miss_for_timeline_requests(self, tmp_path):
        path = tmp_path / "results.jsonl"
        # Simulate WITHOUT a timeline...
        ParallelRunner(workers=1, store=ResultStore(path)).run_spec(_spec())
        store = ResultStore(path)
        # ...a non-timeline request hits, a timeline request misses.
        assert store.get(_spec()) is not None
        assert store.get(_spec(timeline_interval=500)) is None

    def test_cadence_mismatch_is_a_miss(self, tmp_path):
        path = tmp_path / "results.jsonl"
        ParallelRunner(
            workers=1, store=ResultStore(path), timeline_interval=500
        ).run_spec(_spec())
        store = ResultStore(path)
        assert store.get(_spec(timeline_interval=500)) is not None
        assert store.get(_spec(timeline_interval=250)) is None

    def test_rerun_with_timeline_upgrades_the_cached_point(self, tmp_path):
        path = tmp_path / "results.jsonl"
        plain = ParallelRunner(workers=1, store=ResultStore(path)).run_spec(_spec())
        report = ParallelRunner(
            workers=1, store=ResultStore(path), timeline_interval=500
        ).run([_spec()])
        assert report.simulated == 1  # re-simulated to collect the timeline
        upgraded = report.result_for(_spec())
        assert upgraded == plain  # identical statistics (frozen equality)
        assert upgraded.timeline is not None

    def test_results_without_timelines_stay_lean(self, tmp_path):
        path = tmp_path / "results.jsonl"
        runner = ParallelRunner(workers=1, store=ResultStore(path))
        result = runner.run_spec(_spec())
        assert result.timeline is None
        assert not (tmp_path / "results.jsonl.timelines").exists()

    def test_clear_and_compact_manage_sidecars(self, tmp_path):
        path = tmp_path / "results.jsonl"
        ParallelRunner(
            workers=1, store=ResultStore(path), timeline_interval=500
        ).run_spec(_spec())
        store = ResultStore(path)
        orphan = store.timeline_path("deadbeef")
        orphan.parent.mkdir(exist_ok=True)
        orphan.write_bytes(b"stale")
        store.compact()
        assert not orphan.exists()
        assert store.timeline_path(_spec().key()).exists()
        store.clear()
        assert not store.timeline_path(_spec().key()).parent.exists()


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "results.jsonl")


def _seed_fig08_with_timeline(store_path):
    options = [
        "--workloads", "Oracle",
        "--scale", "64",
        "--measure-accesses", "1500",
        "--store", store_path,
    ]
    assert main([
        "run", "fig08", *options, "--serial", "--quiet",
        "--timeline-interval", "500",
    ]) == 0
    return options


class TestReportTimelineCli:
    def test_report_renders_stored_timelines(self, capsys, store_path):
        options = _seed_fig08_with_timeline(store_path)
        capsys.readouterr()
        assert main(["report", "fig08", *options, "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "counter timelines" in out
        assert "occupancy_banks" in out

    def test_channel_filter_and_formats(self, capsys, store_path, tmp_path):
        options = _seed_fig08_with_timeline(store_path)
        capsys.readouterr()

        assert main([
            "report", "fig08", *options, "--timeline",
            "--channel", "occupancy,forced_invalidations", "--format", "json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        for point in document["points"]:
            assert set(point["channels"]) == {"occupancy", "forced_invalidations"}

        out_file = tmp_path / "tl.csv"
        assert main([
            "report", "fig08", *options, "--timeline", "--format", "csv",
            "--out", str(out_file),
        ]) == 0
        header = out_file.read_text().splitlines()[0]
        assert header == "point,channel,lane,sample,accesses,value"

    def test_unknown_channel_lists_valid_names(self, capsys, store_path):
        options = _seed_fig08_with_timeline(store_path)
        capsys.readouterr()
        assert main([
            "report", "fig08", *options, "--timeline", "--channel", "bogus",
        ]) == 2
        err = capsys.readouterr().err
        assert "unknown channel(s): bogus" in err
        assert "occupancy" in err and "traffic_hops" in err

    def test_report_without_stored_timelines_explains_how(
        self, capsys, store_path
    ):
        # Simulated without --timeline-interval: records but no sidecars.
        options = [
            "--workloads", "Oracle", "--scale", "64",
            "--measure-accesses", "1500", "--store", store_path,
        ]
        assert main(["run", "fig08", *options, "--serial", "--quiet"]) == 0
        capsys.readouterr()
        assert main(["report", "fig08", *options, "--timeline"]) == 1
        assert "--timeline-interval" in capsys.readouterr().err

    def test_timeline_flag_conflicts(self, capsys, store_path):
        assert main([
            "report", "--all", "--timeline", "--store", store_path,
        ]) == 2
        assert main([
            "report", "fig08", "--channel", "occupancy", "--store", store_path,
        ]) == 2


if __name__ == "__main__":
    if len(sys.argv) == 2 and sys.argv[1] == "regenerate":
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(_golden_document(), indent=2) + "\n")
        print(f"wrote {GOLDEN_PATH}")
    else:  # pragma: no cover
        print("usage: python tests/engine/test_timeline_cli.py regenerate")
