"""Spec hashing, serialization and grid-construction tests."""

import json

import pytest

from repro.config import CacheLevel
from repro.engine.spec import RunGrid, RunSpec


def _spec(**overrides):
    base = dict(
        workload="Oracle",
        tracked_level="L1",
        organization="cuckoo",
        ways=4,
        provisioning=1.0,
        scale=64,
        seed=0,
        measure_accesses=2_000,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestSpecKey:
    def test_key_is_stable_across_instances(self):
        assert _spec().key() == _spec().key()

    def test_key_is_hex_sha256(self):
        key = _spec().key()
        assert len(key) == 64
        int(key, 16)

    def test_equal_specs_are_equal_and_hashable(self):
        assert _spec() == _spec()
        assert hash(_spec()) == hash(_spec())
        assert len({_spec(), _spec()}) == 1

    def test_numeric_and_enum_normalisation(self):
        # 1 vs 1.0 provisioning and CacheLevel.L1 vs "L1" describe the same
        # point and must share a cache address.
        assert _spec(provisioning=1).key() == _spec(provisioning=1.0).key()
        assert _spec(tracked_level=CacheLevel.L1).key() == _spec(tracked_level="L1").key()
        # Integral floats on integer fields normalise too (4.0 ways == 4 ways),
        # while non-integral values are rejected rather than truncated.
        assert _spec(ways=4.0).key() == _spec(ways=4).key()
        assert _spec(scale=64.0) == _spec(scale=64)
        with pytest.raises(ValueError):
            _spec(ways=4.5)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("workload", "ocean"),
            ("tracked_level", "L2"),
            ("organization", "sparse"),
            ("ways", 3),
            ("provisioning", 2.0),
            ("num_cores", 32),
            ("scale", 32),
            ("seed", 1),
            ("measure_accesses", 4_000),
            ("warmup_accesses", 100),
            ("occupancy_sample_interval", 500),
            ("hash_family", "strong"),
        ],
    )
    def test_any_field_change_changes_key(self, field, value):
        assert _spec(**{field: value}).key() != _spec().key()

    def test_json_round_trip_preserves_key(self):
        spec = _spec(hash_family="skewing", warmup_accesses=500)
        restored = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert restored.key() == spec.key()

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            RunSpec.from_dict({"workload": "Oracle", "bogus": 1})


class TestSpecValidation:
    def test_rejects_bad_tracked_level(self):
        with pytest.raises(ValueError):
            _spec(tracked_level="L3")

    def test_rejects_bad_organization(self):
        with pytest.raises(ValueError):
            _spec(organization="hashlife")

    def test_hash_family_requires_cuckoo(self):
        with pytest.raises(ValueError):
            _spec(organization="sparse", hash_family="strong")

    @pytest.mark.parametrize(
        "field,value",
        [("ways", 0), ("provisioning", 0.0), ("scale", 0), ("measure_accesses", 0),
         ("warmup_accesses", -1), ("occupancy_sample_interval", 0)],
    )
    def test_rejects_non_positive_values(self, field, value):
        with pytest.raises(ValueError):
            _spec(**{field: value})


class TestRunGrid:
    def test_product_covers_cartesian_product_in_order(self):
        grid = RunGrid.product(
            workload=["Oracle", "ocean"],
            tracked_level=["L1", "L2"],
            scale=64,
            measure_accesses=2_000,
        )
        assert len(grid) == 4
        assert [(s.workload, s.tracked_level) for s in grid] == [
            ("Oracle", "L1"), ("Oracle", "L2"), ("ocean", "L1"), ("ocean", "L2"),
        ]

    def test_grid_deduplicates_identical_points(self):
        grid = RunGrid([_spec(), _spec(), _spec(seed=1)])
        assert len(grid) == 2

    def test_grid_concatenation(self):
        merged = RunGrid([_spec()]) + RunGrid([_spec(), _spec(seed=1)])
        assert len(merged) == 2
        assert _spec(seed=1) in merged

    def test_product_rejects_unknown_axis(self):
        with pytest.raises(TypeError):
            RunGrid.product(workload=["Oracle"], flux_capacitance=[1])

    def test_product_rejects_empty_axis(self):
        with pytest.raises(ValueError):
            RunGrid.product(workload=[])
