"""Telemetry through the CLI: --metrics-out dumps, progress output,
worker/cost fields in results and reports."""

import json

import pytest

from repro import obs
from repro.engine.cli import main
from repro.engine.results import RunResult
from repro.engine.spec import RunSpec
from repro.engine.store import ResultStore


@pytest.fixture(autouse=True)
def clean_obs_state():
    """CLI commands enable the global telemetry singletons; keep the rest
    of the suite running with them off and zeroed."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "results.jsonl")


def _sweep_argv(store_path, *extra):
    return [
        "sweep",
        "--workloads", "Oracle",
        "--tracked-levels", "L1",
        "--scale", "64",
        "--measure-accesses", "1500",
        "--store", store_path,
        "--serial",
        *extra,
    ]


class TestMetricsOut:
    def test_sweep_writes_a_schema_stamped_dump(self, capsys, tmp_path, store_path):
        dump = tmp_path / "metrics.json"
        argv = _sweep_argv(store_path, "--quiet", "--metrics-out", str(dump))
        assert main(argv) == 0
        document = json.loads(dump.read_text())
        assert document["schema"] == "repro-obs/1"
        assert document["meta"]["command"] == "sweep"
        counters = document["metrics"]["counters"]
        assert counters["sim.run.measured_accesses"] == 1500
        assert counters["sim.batch.chunks"] >= 1
        assert counters["store.puts"] == 1
        # The batch front-end phase depends on which kernel ran: the
        # scalar loop traces "batch_kernel", the whole-chunk kernel
        # traces "hit_kernel" (+ "drain_vector"/"drain_scalar" when
        # anything drains).
        phases = document["phases"]
        assert "batch_kernel" in phases or "hit_kernel" in phases
        assert "translate" in phases
        sweep = document["meta"]["sweep"]
        assert sweep["total"] == 1 and sweep["done"] == 1
        assert "metrics written to" in capsys.readouterr().err

    def test_quiet_without_metrics_out_keeps_telemetry_off(self, capsys, store_path):
        assert main(_sweep_argv(store_path, "--quiet")) == 0
        assert obs.REGISTRY.counter("sim.batch.chunks").value == 0
        assert "Phase breakdown" not in capsys.readouterr().err


class TestProgressOutput:
    def test_non_quiet_sweep_prints_progress_and_breakdown(self, capsys, store_path):
        assert main(_sweep_argv(store_path)) == 0
        err = capsys.readouterr().err
        # capsys streams are not TTYs, so the renderer emits plain lines.
        assert "1/1" in err
        assert "Phase breakdown" in err
        assert "batch_kernel" in err or "hit_kernel" in err

    def test_quiet_suppresses_progress(self, capsys, store_path):
        assert main(_sweep_argv(store_path, "--quiet")) == 0
        err = capsys.readouterr().err
        assert "Phase breakdown" not in err


class TestLoggingFlags:
    def test_log_json_emits_parseable_lines(self, capsys, store_path):
        argv = _sweep_argv(
            store_path, "--quiet", "--log-level", "info", "--log-json"
        )
        assert main(argv) == 0
        err = capsys.readouterr().err
        records = [
            json.loads(line) for line in err.splitlines() if line.startswith("{")
        ]
        simulated = [r for r in records if r["msg"].startswith("simulated")]
        assert simulated
        assert simulated[0]["workload"] == "Oracle"
        assert "spec" in simulated[0]


class TestWorkerAndCostFields:
    def test_run_result_round_trips_worker_and_elapsed(self, tmp_path):
        spec = RunSpec(
            workload="Oracle", tracked_level="L1", scale=64, measure_accesses=100
        )
        result = RunResult(
            spec=spec,
            accesses=100,
            cache_hit_rate=0.5,
            average_occupancy=0.4,
            occupancy_vs_worst_case=0.6,
            average_insertion_attempts=1.1,
            forced_invalidation_rate=0.0,
            insertions=10,
            insertion_attempts=11,
            forced_invalidations=0,
            tracked_frames_total=64,
            directory_capacity_total=64,
            total_messages=200,
            elapsed_seconds=1.5,
            worker="4242",
        )
        restored = RunResult.from_dict(result.to_dict())
        assert restored.worker == "4242"
        assert restored.elapsed_seconds == 1.5
        assert restored == result  # worker/elapsed stay out of equality

    def test_legacy_record_without_worker_defaults_empty(self):
        spec = RunSpec(
            workload="Oracle", tracked_level="L1", scale=64, measure_accesses=100
        )
        payload = RunResult(
            spec=spec,
            accesses=100,
            cache_hit_rate=0.5,
            average_occupancy=0.4,
            occupancy_vs_worst_case=0.6,
            average_insertion_attempts=1.1,
            forced_invalidation_rate=0.0,
            insertions=10,
            insertion_attempts=11,
            forced_invalidations=0,
            tracked_frames_total=64,
            directory_capacity_total=64,
            total_messages=200,
        ).to_dict()
        del payload["worker"]
        del payload["elapsed_seconds"]
        restored = RunResult.from_dict(payload)
        assert restored.worker == ""
        assert restored.elapsed_seconds == 0.0

    def test_simulated_points_record_worker_pid(self, capsys, store_path):
        assert main(_sweep_argv(store_path, "--quiet")) == 0
        capsys.readouterr()
        (result,) = list(ResultStore(store_path).iter_results())
        assert result.worker.isdigit()
        assert result.elapsed_seconds > 0.0

    def test_report_all_aggregates_cost(self, capsys, store_path):
        main(_sweep_argv(store_path, "--quiet"))
        capsys.readouterr()
        assert main([
            "report", "--all", "--store", store_path, "--group-by", "workload",
        ]) == 0
        out = capsys.readouterr().out
        assert "cost_seconds" in out
        assert "secs_per_point" in out
