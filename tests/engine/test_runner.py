"""Parallel-runner tests: serial equivalence, caching, failure isolation."""

import pytest

from repro.engine.runner import EngineError, ParallelRunner
from repro.engine.spec import RunGrid, RunSpec
from repro.engine.store import ResultStore


def _grid(**overrides):
    axes = dict(
        workload=["Oracle", "ocean"],
        tracked_level=["L1", "L2"],
        provisioning=2.0,
        scale=64,
        measure_accesses=1_500,
    )
    axes.update(overrides)
    return RunGrid.product(**axes)


class TestParallelMatchesSerial:
    def test_parallel_results_identical_to_serial(self):
        grid = _grid()
        serial = ParallelRunner(workers=1).run(grid)
        parallel = ParallelRunner(workers=2).run(grid)
        assert serial.ok and parallel.ok
        assert set(serial.results) == set(parallel.results)
        for key, result in serial.results.items():
            # RunResult equality covers every statistic except wall-clock.
            assert parallel.results[key] == result

    def test_report_is_addressable_by_spec(self):
        grid = _grid()
        report = ParallelRunner(workers=2).run(grid)
        for spec in grid:
            result = report.result_for(spec)
            assert result.spec == spec
            assert result.accesses == spec.measure_accesses

    def test_unknown_spec_raises_key_error(self):
        report = ParallelRunner(workers=1).run(_grid())
        with pytest.raises(KeyError):
            report.result_for(RunSpec(workload="DB2", scale=64, measure_accesses=1_500))


class TestCaching:
    def test_second_run_simulates_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        grid = _grid()

        cold = ParallelRunner(workers=1, store=store).run(grid)
        assert cold.simulated == len(grid) and cold.cached == 0

        warm = ParallelRunner(workers=1, store=store).run(grid)
        assert warm.simulated == 0 and warm.cached == len(grid)
        assert warm.results == cold.results

    def test_changed_field_invalidates_only_that_point(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        runner = ParallelRunner(workers=1, store=store)
        runner.run(_grid())

        changed = _grid(seed=[0, 1])  # doubles the grid; seed=0 half is cached
        report = runner.run(changed)
        assert report.cached == len(changed) // 2
        assert report.simulated == len(changed) // 2

    def test_cached_results_shared_across_runners(self, tmp_path):
        path = tmp_path / "results.jsonl"
        grid = _grid()
        ParallelRunner(workers=1, store=ResultStore(path)).run(grid)
        report = ParallelRunner(workers=2, store=ResultStore(path)).run(grid)
        assert report.simulated == 0 and report.cached == len(grid)


class TestFailureIsolation:
    def test_bad_point_does_not_abort_the_grid(self):
        good = _grid()
        bad = RunSpec(workload="no-such-workload", scale=64, measure_accesses=1_500)
        report = ParallelRunner(workers=2).run(RunGrid([bad]) + good)

        assert len(report.failures) == 1
        assert len(report.results) == len(good)
        failure = report.failures[bad.key()]
        assert "no-such-workload" in failure.error
        assert failure.traceback

    def test_result_for_failed_spec_raises_engine_error(self):
        bad = RunSpec(workload="no-such-workload", scale=64, measure_accesses=1_500)
        report = ParallelRunner(workers=1).run([bad])
        assert not report.ok
        with pytest.raises(EngineError, match="no-such-workload"):
            report.result_for(bad)

    def test_failures_are_not_cached(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        bad = RunSpec(workload="no-such-workload", scale=64, measure_accesses=1_500)
        ParallelRunner(workers=1, store=store).run([bad])
        assert len(store) == 0


class TestProgressReporting:
    def test_every_point_emits_one_event(self, tmp_path):
        events = []
        store = ResultStore(tmp_path / "results.jsonl")

        def progress(event, done, total, spec):
            events.append((event, done, total, spec.workload))

        grid = _grid()
        ParallelRunner(workers=1, store=store, progress=progress).run(grid)
        assert len(events) == len(grid)
        assert all(event == "simulated" for event, *_ in events)
        assert events[-1][1] == events[-1][2] == len(grid)

        events.clear()
        bad = RunSpec(workload="no-such-workload", scale=64, measure_accesses=1_500)
        ParallelRunner(workers=1, store=store, progress=progress).run(
            RunGrid([bad]) + grid
        )
        kinds = {event for event, *_ in events}
        assert kinds == {"cached", "failed"}

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            ParallelRunner(workers=0)
