"""CLI tests for ``repro-run report`` and ``repro-run compare``."""

import csv
import io
import json

import pytest

from repro.engine.cli import main
from repro.engine.store import ResultStore


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "results.jsonl")


def _seed_fig08(store_path, workloads="Oracle"):
    """Simulate a tiny fig08 sweep into the store; returns the run argv tail."""
    options = [
        "--workloads", workloads,
        "--scale", "64",
        "--measure-accesses", "1500",
        "--store", store_path,
    ]
    assert main(["run", "fig08", *options, "--serial", "--quiet"]) == 0
    return options


class TestReport:
    def test_report_renders_cached_sweep_without_simulating(
        self, capsys, store_path
    ):
        options = _seed_fig08(store_path)
        run_output = capsys.readouterr().out

        store_before = ResultStore(store_path)
        assert main(["report", "fig08", *options]) == 0
        report_output = capsys.readouterr().out
        # The rendered table is identical to the live run's...
        assert report_output.strip() in run_output
        # ...and nothing new was simulated into the store.
        assert len(ResultStore(store_path)) == len(store_before)

    def test_report_refuses_to_simulate_missing_points(self, capsys, store_path):
        _seed_fig08(store_path)
        capsys.readouterr()
        # Different scale -> different content hashes -> not cached.
        exit_code = main([
            "report", "fig08", "--workloads", "Oracle", "--scale", "32",
            "--measure-accesses", "1500", "--store", store_path,
        ])
        assert exit_code == 1
        assert "not in the result store" in capsys.readouterr().err

    def test_report_csv_round_trip(self, capsys, store_path):
        options = _seed_fig08(store_path)
        capsys.readouterr()
        assert main(["report", "fig08", *options, "--format", "csv"]) == 0
        rows = list(csv.DictReader(io.StringIO(capsys.readouterr().out)))
        assert {row["series"] for row in rows} == {"Shared L2", "Private L2"}
        assert all(row["point"] == "Oracle" for row in rows)
        assert all(0.0 <= float(row["value"]) <= 1.0 for row in rows)

    def test_report_json_with_reference_scores(self, capsys, store_path):
        options = _seed_fig08(store_path)
        capsys.readouterr()
        assert main(
            ["report", "fig08", *options, "--format", "json", "--reference"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "fig08"
        assert "Oracle" in payload["series"]["Shared L2"]
        for config in ("Shared L2", "Private L2"):
            score = payload["reference"][config]
            assert score["points"] == 1
            assert "geomean_relative_error" in score
            assert "rank_order_agreement" in score

    def test_report_ascii_reference_summary(self, capsys, store_path):
        options = _seed_fig08(store_path)
        capsys.readouterr()
        assert main(["report", "fig08", *options, "--reference"]) == 0
        out = capsys.readouterr().out
        assert "Paper reference" in out
        assert "Rank agreement" in out

    def test_report_analytical_experiment_needs_no_store(self, capsys, tmp_path):
        missing_store = str(tmp_path / "never-created.jsonl")
        assert main(["report", "fig04", "--store", missing_store]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_report_all_flat_and_grouped(self, capsys, store_path):
        _seed_fig08(store_path)
        capsys.readouterr()
        assert main(["report", "--all", "--store", store_path]) == 0
        flat = capsys.readouterr().out
        assert "Oracle" in flat and "cuckoo" in flat

        assert main([
            "report", "--all", "--store", store_path,
            "--group-by", "workload",
        ]) == 0
        grouped = capsys.readouterr().out
        assert "geomean_attempts" in grouped
        # Both configurations collapse into one Oracle group of 2 points.
        assert "| 2" in grouped.replace("|      2", "| 2")

    def test_report_all_json(self, capsys, store_path):
        _seed_fig08(store_path)
        capsys.readouterr()
        assert main([
            "report", "--all", "--store", store_path, "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["rows"]) == 2
        assert payload["rows"][0]["workload"] == "Oracle"

    def test_report_out_writes_file(self, capsys, store_path, tmp_path):
        options = _seed_fig08(store_path)
        capsys.readouterr()
        out = tmp_path / "report.txt"
        assert main(["report", "fig08", *options, "--out", str(out)]) == 0
        assert "Figure 8" in out.read_text()

    def test_report_usage_errors(self, capsys, store_path, tmp_path):
        assert main(["report"]) == 2
        assert "nothing to report" in capsys.readouterr().err
        assert main(["report", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
        assert main(["report", "fig08", "--all"]) == 2
        capsys.readouterr()
        missing = str(tmp_path / "absent.jsonl")
        assert main(["report", "--all", "--store", missing]) == 2
        assert "no result store" in capsys.readouterr().err


def _mutate_store(src, dst, mutate):
    records = [json.loads(line) for line in open(src, encoding="utf-8")]
    for record in records:
        mutate(record["result"])
    with open(dst, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


class TestCompare:
    def test_store_self_comparison_is_clean(self, capsys, store_path):
        _seed_fig08(store_path)
        capsys.readouterr()
        assert main(
            ["compare", store_path, store_path, "--fail-on-regression"]
        ) == 0
        out = capsys.readouterr().out
        assert "0 regressions" in out

    def test_injected_regression_fails_the_gate(
        self, capsys, store_path, tmp_path
    ):
        _seed_fig08(store_path)
        capsys.readouterr()
        regressed = str(tmp_path / "regressed.jsonl")

        def worsen(result):
            result["average_insertion_attempts"] *= 2.0

        _mutate_store(store_path, regressed, worsen)
        # Without the gate: reported but exit 0.
        assert main(["compare", store_path, regressed]) == 0
        assert "REGRESSION" in capsys.readouterr().out
        # With the gate: non-zero exit.
        assert main(
            ["compare", store_path, regressed, "--fail-on-regression"]
        ) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_improvement_does_not_fail_the_gate(
        self, capsys, store_path, tmp_path
    ):
        _seed_fig08(store_path)
        capsys.readouterr()
        improved = str(tmp_path / "improved.jsonl")

        def improve(result):
            result["average_insertion_attempts"] *= 0.5

        _mutate_store(store_path, improved, improve)
        assert main(
            ["compare", store_path, improved, "--fail-on-regression"]
        ) == 0
        assert "improvement" in capsys.readouterr().out

    def test_compare_json_output(self, capsys, store_path, tmp_path):
        _seed_fig08(store_path)
        capsys.readouterr()
        regressed = str(tmp_path / "regressed.jsonl")
        _mutate_store(
            store_path, regressed,
            lambda result: result.update(
                forced_invalidation_rate=result["forced_invalidation_rate"] + 0.5
            ),
        )
        assert main(
            ["compare", store_path, regressed, "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        regressions = [e for e in payload["entries"] if e["regression"]]
        assert regressions
        assert all(
            e["metric"] == "forced_invalidation_rate" for e in regressions
        )

    def test_bench_comparison_gates_on_seconds_and_speedups(
        self, capsys, tmp_path
    ):
        baseline = tmp_path / "BENCH_a.json"
        candidate = tmp_path / "BENCH_b.json"
        baseline.write_text(json.dumps({
            "current_seconds": {"end_to_end_seconds": 1.0},
            "speedup": 4.0,
            "quick": False,
        }))
        candidate.write_text(json.dumps({
            "current_seconds": {"end_to_end_seconds": 1.6},
            "speedup": 2.0,
            "quick": False,
        }))
        assert main([
            "compare", str(baseline), str(baseline), "--fail-on-regression",
        ]) == 0
        capsys.readouterr()
        assert main([
            "compare", str(baseline), str(candidate),
            "--threshold", "0.25", "--fail-on-regression",
        ]) == 1
        out = capsys.readouterr().out
        assert "end_to_end_seconds" in out and "speedup" in out

    def test_threshold_tolerates_small_drift(self, capsys, tmp_path):
        baseline = tmp_path / "BENCH_a.json"
        candidate = tmp_path / "BENCH_b.json"
        baseline.write_text(json.dumps({"current_seconds": {"t_seconds": 1.0}}))
        candidate.write_text(json.dumps({"current_seconds": {"t_seconds": 1.1}}))
        assert main([
            "compare", str(baseline), str(candidate),
            "--threshold", "0.2", "--fail-on-regression",
        ]) == 0

    def test_mismatched_kinds_rejected(self, capsys, store_path, tmp_path):
        _seed_fig08(store_path)
        capsys.readouterr()
        bench = tmp_path / "BENCH.json"
        bench.write_text(json.dumps({"current_seconds": {"t_seconds": 1.0}}))
        assert main(["compare", store_path, str(bench)]) == 2
        assert "cannot compare" in capsys.readouterr().err

    def test_missing_file_rejected(self, capsys, tmp_path):
        assert main([
            "compare", str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl"),
        ]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_store_metric_cannot_gate_vacuously(
        self, capsys, store_path
    ):
        _seed_fig08(store_path)
        capsys.readouterr()
        assert main([
            "compare", store_path, store_path,
            "--metrics", "avg_attempts",  # typo of average_insertion_attempts
            "--fail-on-regression",
        ]) == 2
        assert "unknown store metric" in capsys.readouterr().err

    def test_bench_metric_filter_matching_nothing_is_an_error(
        self, capsys, tmp_path
    ):
        bench = tmp_path / "BENCH.json"
        bench.write_text(json.dumps({"current_seconds": {"t_seconds": 1.0}}))
        assert main([
            "compare", str(bench), str(bench),
            "--metrics", "speedupz", "--fail-on-regression",
        ]) == 2
        assert "no benchmark metrics match" in capsys.readouterr().err

    def test_torn_first_store_line_still_detected_as_store(
        self, capsys, store_path, tmp_path
    ):
        _seed_fig08(store_path)
        capsys.readouterr()
        torn = tmp_path / "torn.jsonl"
        torn.write_text(
            '{"key": "truncat'
            + "\n"
            + open(store_path, encoding="utf-8").read()
        )
        assert main(
            ["compare", store_path, str(torn), "--fail-on-regression"]
        ) == 0
        assert "0 regressions" in capsys.readouterr().out
