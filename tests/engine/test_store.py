"""Content-addressed result-store tests: hits, misses, persistence."""

from repro.engine.execute import execute_spec
from repro.engine.spec import RunSpec
from repro.engine.store import ResultStore


def _spec(**overrides):
    base = dict(workload="Oracle", tracked_level="L1", provisioning=2.0,
                scale=64, measure_accesses=1_500)
    base.update(overrides)
    return RunSpec(**base)


class TestResultStore:
    def test_miss_then_hit_on_unchanged_spec(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        spec = _spec()
        assert store.get(spec) is None
        assert store.misses == 1

        result = execute_spec(spec)
        store.put(result)
        cached = store.get(spec)
        assert cached == result
        assert store.hits == 1
        assert spec in store

    def test_any_field_change_misses(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        store.put(execute_spec(_spec()))
        assert store.get(_spec(seed=1)) is None
        assert store.get(_spec(measure_accesses=2_000)) is None
        assert store.get(_spec(provisioning=1.0)) is None
        assert store.get(_spec()) is not None

    def test_results_persist_across_store_instances(self, tmp_path):
        path = tmp_path / "results.jsonl"
        spec = _spec()
        result = execute_spec(spec)
        ResultStore(path).put(result)

        reopened = ResultStore(path)
        assert len(reopened) == 1
        assert reopened.get(spec) == result

    def test_corrupt_lines_are_tolerated(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put(execute_spec(_spec()))
        with path.open("a", encoding="utf-8") as handle:
            handle.write("{not json\n")
            handle.write('{"key": "missing-result"}\n')
        reopened = ResultStore(path)
        assert len(reopened) == 1
        assert reopened.get(_spec()) is not None

    def test_clear_removes_file_and_entries(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put(execute_spec(_spec()))
        store.clear()
        assert len(store) == 0
        assert not path.exists()
        assert store.get(_spec()) is None

    def test_compact_keeps_last_record_per_key(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        result = execute_spec(_spec())
        store.put(result)
        store.put(result)  # duplicate line on disk
        assert len(path.read_text().splitlines()) == 2
        store.compact()
        assert len(path.read_text().splitlines()) == 1
        assert ResultStore(path).get(_spec()) == result
