"""Content-addressed result-store tests: hits, misses, persistence."""

import json

import pytest

from repro.engine.execute import execute_spec
from repro.engine.spec import RunSpec
from repro.engine.store import ResultStore, iter_store_records, iter_store_results


def _spec(**overrides):
    base = dict(workload="Oracle", tracked_level="L1", provisioning=2.0,
                scale=64, measure_accesses=1_500)
    base.update(overrides)
    return RunSpec(**base)


class TestResultStore:
    def test_miss_then_hit_on_unchanged_spec(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        spec = _spec()
        assert store.get(spec) is None
        assert store.misses == 1

        result = execute_spec(spec)
        store.put(result)
        cached = store.get(spec)
        assert cached == result
        assert store.hits == 1
        assert spec in store

    def test_any_field_change_misses(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        store.put(execute_spec(_spec()))
        assert store.get(_spec(seed=1)) is None
        assert store.get(_spec(measure_accesses=2_000)) is None
        assert store.get(_spec(provisioning=1.0)) is None
        assert store.get(_spec()) is not None

    def test_results_persist_across_store_instances(self, tmp_path):
        path = tmp_path / "results.jsonl"
        spec = _spec()
        result = execute_spec(spec)
        ResultStore(path).put(result)

        reopened = ResultStore(path)
        assert len(reopened) == 1
        assert reopened.get(spec) == result

    def test_corrupt_lines_are_tolerated(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put(execute_spec(_spec()))
        with path.open("a", encoding="utf-8") as handle:
            handle.write("{not json\n")
            handle.write('{"key": "missing-result"}\n')
        reopened = ResultStore(path)
        assert len(reopened) == 1
        assert reopened.get(_spec()) is not None

    def test_clear_removes_file_and_entries(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put(execute_spec(_spec()))
        store.clear()
        assert len(store) == 0
        assert not path.exists()
        assert store.get(_spec()) is None

    def test_compact_keeps_last_record_per_key(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        result = execute_spec(_spec())
        store.put(result)
        store.put(result)  # duplicate line on disk
        assert len(path.read_text().splitlines()) == 2
        store.compact()
        assert len(path.read_text().splitlines()) == 1
        assert ResultStore(path).get(_spec()) == result

    def test_put_is_durable_before_returning(self, tmp_path):
        # The appended record must be fully on disk (not buffered) by the
        # time put() returns: a concurrent reader sees it immediately.
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put(execute_spec(_spec()))
        on_disk = path.read_bytes()
        assert on_disk.endswith(b"\n")
        assert json.loads(on_disk.decode("utf-8"))["result"]
        assert len(ResultStore(path)) == 1

    def test_crash_mid_compact_leaves_original_intact(self, tmp_path, monkeypatch):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put(execute_spec(_spec()))
        store.put(execute_spec(_spec(seed=1)))
        before = path.read_bytes()

        calls = {"n": 0}
        real_dumps = json.dumps

        def exploding_dumps(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("simulated crash mid-compact")
            return real_dumps(*args, **kwargs)

        monkeypatch.setattr("repro.engine.store.json.dumps", exploding_dumps)
        with pytest.raises(RuntimeError, match="simulated crash"):
            store.compact()
        monkeypatch.undo()

        # The live file is byte-identical and no temp litter remains.
        assert path.read_bytes() == before
        assert not list(tmp_path.glob("*.tmp"))
        reopened = ResultStore(path)
        assert reopened.get(_spec()) is not None
        assert reopened.get(_spec(seed=1)) is not None

    def test_compact_replaces_atomically_with_temp_file(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put(execute_spec(_spec()))
        store.put(execute_spec(_spec()))
        report = store.compact()
        assert report.entries_kept == 1
        assert report.lines_removed == 1
        assert report.bytes_saved > 0
        assert not (tmp_path / "results.jsonl.tmp").exists()


class TestStreamingIteration:
    def test_streams_last_record_per_key_in_write_order(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        first = execute_spec(_spec())
        second = execute_spec(_spec(seed=1))
        store.put(first)
        store.put(second)
        store.put(first)  # supersedes the first line

        keys = [key for key, _payload in iter_store_records(path)]
        assert keys == [second.spec.key(), first.spec.key()]

        results = list(iter_store_results(path))
        assert results == [second, first]

    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(iter_store_records(tmp_path / "absent.jsonl")) == []

    def test_corrupt_and_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        result = execute_spec(_spec())
        store.put(result)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("\n{broken\n")
            handle.write('{"key": "no-result-field"}\n')
        assert list(iter_store_results(path)) == [result]

    def test_streaming_matches_store_reload(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        for seed in range(3):
            store.put(execute_spec(_spec(seed=seed)))
        streamed = {key for key, _payload in iter_store_records(path)}
        assert streamed == set(ResultStore(path).keys())
