"""CLI tests for the trace subsystem verbs and the CLI satellites."""

import pytest

from repro.engine.cli import main
from repro.engine.spec import RunSpec
from repro.engine.store import ResultStore


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "results.jsonl")


def _record(tmp_path, name="Oracle", extra=()):
    path = str(tmp_path / f"{name}.npz")
    argv = [
        "trace", "record", name,
        "--out", path,
        "--scale", "64",
        "--num-cores", "8",
        "--measure-accesses", "1500",
    ]
    assert main(argv + list(extra)) == 0
    return path


class TestSpecFields:
    def test_trace_and_mix_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            RunSpec(workload="Oracle", trace="/tmp/t.npz", mix="8xOracle+8xocean")

    def test_mix_grammar_is_validated(self):
        with pytest.raises(ValueError, match="bad mix component"):
            RunSpec(workload="x", mix="Apache+ocean")

    def test_trace_and_mix_change_the_key(self):
        base = RunSpec(workload="Oracle")
        traced = RunSpec(workload="Oracle", trace="/tmp/t.npz")
        mixed = RunSpec(workload="8xOracle+8xocean", mix="8xOracle+8xocean")
        assert len({base.key(), traced.key(), mixed.key()}) == 3

    def test_labels_mark_the_source(self):
        assert "[trace]" in RunSpec(workload="Oracle", trace="t.npz").label()
        assert "[mix]" in RunSpec(workload="m", mix="8xOracle+8xocean").label()

    def test_round_trip_preserves_trace_fields(self):
        spec = RunSpec(workload="Oracle", trace="/tmp/t.npz")
        assert RunSpec.from_dict(spec.to_dict()) == spec


class TestTraceVerbs:
    def test_record_then_info_then_verify(self, tmp_path, capsys):
        path = _record(tmp_path)
        out = capsys.readouterr().out
        assert "recorded" in out and "fingerprint" in out
        assert main(["trace", "info", path, "--verify"]) == 0
        info = capsys.readouterr().out
        assert "Oracle" in info
        assert "fingerprint:  OK" in info

    def test_record_unknown_workload_lists_names(self, tmp_path, capsys):
        assert main(["trace", "record", "Nope", "--out", str(tmp_path / "x.npz")]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err and "ocean" in err

    def test_info_missing_file(self, tmp_path, capsys):
        assert main(["trace", "info", str(tmp_path / "missing.npz")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_replay_simulates_then_hits_cache(self, tmp_path, store_path, capsys):
        path = _record(tmp_path)
        capsys.readouterr()
        argv = ["trace", "replay", path, "--store", store_path, "--quiet"]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "Oracle" in first.out
        assert "1 simulated" in first.err
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "1 cached" in second.err
        assert first.out == second.out

    def test_info_rejects_malformed_header_cleanly(self, tmp_path, capsys):
        import json

        import numpy as np

        empty = np.empty(0, dtype=np.int64)
        arrays = dict(cores=empty, addresses=empty, writes=empty, instrs=empty)
        # Header JSON missing required fields: clean exit, no traceback.
        bad = tmp_path / "bad.npz"
        header = np.frombuffer(
            json.dumps({"workload": "x"}).encode(), dtype=np.uint8
        )
        with bad.open("wb") as handle:
            np.savez(handle, header=header, **arrays)
        assert main(["trace", "info", str(bad)]) == 2
        assert "missing fields" in capsys.readouterr().err
        # Archive missing the array members entirely: also a clean exit.
        truncated = tmp_path / "truncated.npz"
        with truncated.open("wb") as handle:
            np.savez(handle, header=header)
        assert main(["trace", "info", str(truncated)]) == 2
        assert "missing trace arrays" in capsys.readouterr().err

    def test_sampled_replay_refuses_measure_accesses(self, tmp_path, capsys):
        path = _record(tmp_path)
        capsys.readouterr()
        assert main([
            "trace", "replay", path,
            "--sample-measure", "300", "--measure-accesses", "1000",
        ]) == 2
        assert "--sample-windows" in capsys.readouterr().err

    def test_sampling_flags_require_sample_measure(self, tmp_path, capsys):
        path = _record(tmp_path)
        capsys.readouterr()
        assert main(["trace", "replay", path, "--sample-skip", "500"]) == 2
        assert "--sample-measure" in capsys.readouterr().err
        assert main(["trace", "replay", path, "--sample-windows", "3"]) == 2
        assert "--sample-measure" in capsys.readouterr().err

    def test_replay_sampled_reports_windows(self, tmp_path, capsys):
        path = _record(tmp_path)
        capsys.readouterr()
        assert main([
            "trace", "replay", path,
            "--sample-measure", "300", "--sample-skip", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "Windows measured" in out
        assert "Sampled replay of Oracle" in out


class TestMixVerb:
    def test_mix_sweep_runs_and_caches(self, tmp_path, store_path, capsys):
        argv = [
            "mix", "4xApache+4xocean",
            "--tracked-levels", "L1",
            "--scale", "64",
            "--measure-accesses", "800",
            "--store", store_path,
            "--serial", "--quiet",
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "4xApache+4xocean" in first.out
        assert "0 hits / 1 misses" in first.err
        assert main(argv) == 0
        assert "1 hits / 0 misses" in capsys.readouterr().err
        assert len(ResultStore(store_path)) == 1

    def test_mix_unknown_program_lists_names(self, capsys):
        assert main(["mix", "4xNope+4xocean"]) == 2
        err = capsys.readouterr().err
        assert "invalid mix" in err and "ocean" in err

    def test_mix_bad_grammar(self, capsys):
        assert main(["mix", "Apache+ocean"]) == 2
        assert "expected" in capsys.readouterr().err


class TestFriendlyErrors:
    def test_run_unknown_workload_exits_with_names(self, capsys):
        assert main(["run", "fig08", "--workloads", "NotAThing"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err
        for name in ("DB2", "Oracle", "ocean"):
            assert name in err

    def test_sweep_unknown_workload_exits_with_names(self, capsys):
        assert main(["sweep", "--workloads", "Bogus,Oracle"]) == 2
        err = capsys.readouterr().err
        assert "Bogus" in err and "expected" in err and "Zeus" in err


class TestCacheCompact:
    def _populate_with_duplicates(self, store_path):
        from repro.engine.results import RunResult

        store = ResultStore(store_path)
        spec = RunSpec(workload="Oracle", scale=64, measure_accesses=1000)
        result = RunResult(
            spec=spec, accesses=1000, cache_hit_rate=0.5, average_occupancy=0.5,
            occupancy_vs_worst_case=0.5, average_insertion_attempts=1.0,
            forced_invalidation_rate=0.0, insertions=10, insertion_attempts=10,
            forced_invalidations=0, tracked_frames_total=100,
            directory_capacity_total=100, total_messages=100,
        )
        for _ in range(4):  # append-only: 4 lines, 1 live key
            store.put(result)
        return store

    def test_cache_compact_reports_removals_and_bytes(self, store_path, capsys):
        store = self._populate_with_duplicates(store_path)
        before = store.path.stat().st_size
        assert main(["cache", "compact", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "kept 1 entries" in out
        assert "removed 3 superseded records" in out
        assert "saved" in out
        after = ResultStore(store_path)
        assert len(after) == 1
        assert after.path.stat().st_size < before
        with open(store_path) as handle:
            assert sum(1 for _ in handle) == 1

    def test_compact_report_object(self, store_path):
        store = self._populate_with_duplicates(store_path)
        report = store.compact()
        assert report.entries_kept == 1
        assert report.lines_removed == 3
        assert report.bytes_saved > 0
        assert "saved" in str(report)
        # Compacting a compacted store removes nothing further.
        again = ResultStore(store_path).compact()
        assert again.lines_removed == 0
        assert again.bytes_saved == 0

    def test_compact_empty_store(self, store_path, capsys):
        assert main(["cache", "compact", "--store", store_path]) == 0
        assert "kept 0 entries" in capsys.readouterr().out

    def test_cache_clear_action(self, store_path, capsys):
        self._populate_with_duplicates(store_path)
        assert main(["cache", "clear", "--store", store_path]) == 0
        assert "cleared 1 cached results" in capsys.readouterr().out
        assert len(ResultStore(store_path)) == 0

    def test_legacy_flags_still_work(self, store_path, capsys):
        self._populate_with_duplicates(store_path)
        assert main(["cache", "--compact", "--store", store_path]) == 0
        assert "removed 3 superseded records" in capsys.readouterr().out

    def test_conflicting_action_and_flag_rejected(self, store_path, capsys):
        self._populate_with_duplicates(store_path)
        assert main(["cache", "clear", "--compact", "--store", store_path]) == 2
        assert "conflicting" in capsys.readouterr().err
        assert len(ResultStore(store_path)) == 1  # nothing cleared or compacted


def test_list_includes_mix_experiment(capsys):
    assert main(["list"]) == 0
    assert "mix" in capsys.readouterr().out


def test_run_mix_experiment_through_registry(store_path, capsys):
    assert main([
        "run", "mix",
        "--workloads", "Apache,ocean",
        "--scale", "64",
        "--measure-accesses", "800",
        "--store", store_path,
        "--serial", "--quiet",
    ]) == 0
    out = capsys.readouterr().out
    assert "8xApache+8xocean" in out
    assert "Mix sweep" in out
