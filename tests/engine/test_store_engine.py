"""Storage-engine tests: sealing, multi-writer appends, crash safety.

The legacy behaviours (JSONL durability, compaction byte-identity, hit
and miss accounting) are pinned by ``test_store.py``; this module covers
what the columnar engine adds on top — segment sealing, last-wins merge
across WAL and segments, export/import, concurrent writers and torn-write
recovery.
"""

import json
import logging
import multiprocessing
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

import repro
from repro.engine.cli import main
from repro.engine.results import RunResult
from repro.engine.segment import (
    MANIFEST_NAME,
    load_manifest,
    read_segment,
    segment_file_names,
)
from repro.engine.spec import RunSpec
from repro.engine.store import ResultStore, segments_dir

_SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def _spec(**overrides):
    base = dict(workload="Oracle", tracked_level="L1", provisioning=2.0,
                scale=64, measure_accesses=1_500)
    base.update(overrides)
    return RunSpec(**base)


def _result(spec, **overrides):
    base = dict(
        spec=spec, accesses=1_000, cache_hit_rate=0.9, average_occupancy=0.5,
        occupancy_vs_worst_case=0.8, average_insertion_attempts=1.25,
        forced_invalidation_rate=0.0, insertions=10, insertion_attempts=12,
        forced_invalidations=0, tracked_frames_total=100,
        directory_capacity_total=128, total_messages=5,
    )
    base.update(overrides)
    return RunResult(**base)


# -- sealing and last-wins ----------------------------------------------------
class TestSealing:
    def test_threshold_seal_moves_wal_into_segments(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path, seal_threshold=4)
        for seed in range(6):
            store.put(_result(_spec(seed=seed)))
        assert store.segment_names()
        assert (segments_dir(path) / MANIFEST_NAME).exists()

        reopened = ResultStore(path)
        assert len(reopened) == 6
        for seed in range(6):
            assert reopened.get(_spec(seed=seed)) == _result(_spec(seed=seed))

    def test_last_wins_across_segment_and_wal(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put(_result(_spec(), accesses=1))
        store.seal()
        store.put(_result(_spec(), accesses=2))  # newer, WAL-resident

        assert store.get(_spec()).accesses == 2
        reopened = ResultStore(path)
        assert reopened.get(_spec()).accesses == 2

    def test_last_wins_within_sealed_segments(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put(_result(_spec(), accesses=1))
        store.seal()
        store.put(_result(_spec(), accesses=2))
        store.seal()

        reopened = ResultStore(path)
        assert len(reopened) == 1
        assert reopened.get(_spec()).accesses == 2

    def test_non_conforming_payload_survives_seal_byte_identically(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put(_result(_spec()))
        payload = {"custom": 1, "nested": {"a": [1, 2]}, "note": "not a RunResult"}
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"key": "deadbeef", "ts": time.time_ns(), "result": payload}
            ) + "\n")

        sealed = ResultStore(path)
        meta = sealed.seal()
        assert meta is not None and meta.rows == 2
        extras_name = segment_file_names(meta.name)[3]
        assert (segments_dir(path) / extras_name).exists()

        reopened = ResultStore(path)
        records = dict(reopened.iter_records())
        assert records["deadbeef"] == payload


# -- export / import ----------------------------------------------------------
class TestExportImport:
    def test_round_trip_is_byte_identical_and_last_wins(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put(_result(_spec(), accesses=1))
        store.put(_result(_spec(seed=7)))
        store.seal()
        store.put(_result(_spec(), accesses=2))  # supersedes the sealed row

        first = tmp_path / "first.jsonl"
        assert store.export_jsonl(first) == 2

        fresh_path = tmp_path / "fresh.jsonl"
        fresh = ResultStore(fresh_path)
        assert fresh.import_jsonl(first) == (2, 0)
        assert fresh.get(_spec()).accesses == 2

        second = tmp_path / "second.jsonl"
        ResultStore(fresh_path).export_jsonl(second)
        assert first.read_bytes() == second.read_bytes()

    def test_import_drops_and_counts_malformed_payloads(self, tmp_path):
        source = tmp_path / "backup.jsonl"
        good = _result(_spec())
        with source.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"key": good.spec.key(), "result": good.to_dict()}
            ) + "\n")
            handle.write(json.dumps(
                {"key": "bad", "result": {"garbage": True}}
            ) + "\n")

        store = ResultStore(tmp_path / "results.jsonl")
        assert store.import_jsonl(source) == (1, 1)
        assert store.keys() == [good.spec.key()]


# -- malformed records and corrupt sidecars -----------------------------------
class TestRotTolerance:
    def test_malformed_record_is_dropped_counted_and_missed(self, tmp_path):
        path = tmp_path / "results.jsonl"
        ResultStore(path).put(_result(_spec()))
        with path.open("a", encoding="utf-8") as handle:
            # A newer envelope whose payload no longer decodes.
            handle.write(json.dumps({
                "key": _spec().key(),
                "ts": time.time_ns() + 10**9,
                "result": {"garbage": True},
            }) + "\n")

        store = ResultStore(path)
        assert store.get(_spec()) is None
        assert store.malformed == 1
        assert store.misses == 1

        again = ResultStore(path)
        assert list(again.iter_results()) == []
        assert again.malformed == 1

    def test_corrupt_timeline_sidecar_warns_with_key_and_path(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        result = _result(_spec())
        store.put(result)
        key = result.spec.key()
        sidecar = store.timeline_path(key)
        sidecar.parent.mkdir(parents=True, exist_ok=True)
        sidecar.write_bytes(b"this is not an npz archive")

        records = []
        handler = logging.Handler()
        handler.emit = records.append
        logger = logging.getLogger("repro.engine.store")
        logger.addHandler(handler)
        previous = logger.level
        logger.setLevel(logging.WARNING)
        try:
            assert store.get_timeline(key) is None
        finally:
            logger.removeHandler(handler)
            logger.setLevel(previous)

        warned = [r for r in records if "corrupt timeline sidecar" in r.getMessage()]
        assert len(warned) == 1
        assert warned[0].key == key
        assert warned[0].sidecar == str(sidecar)


# -- concurrent writers -------------------------------------------------------
def _torture_worker(path_str, writer_id, count):
    store = ResultStore(
        Path(path_str), writer=f"t{writer_id}", preload=False, seal_threshold=5
    )
    for i in range(count):
        store.put(_result(_spec(seed=writer_id * 1_000 + i)))
    store.flush()


class TestMultiWriter:
    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_concurrent_writers_merge_without_loss(self, tmp_path, method):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable")
        ctx = multiprocessing.get_context(method)
        path = tmp_path / "results.jsonl"
        writers, per_writer = 4, 12
        processes = [
            ctx.Process(target=_torture_worker, args=(str(path), w, per_writer))
            for w in range(writers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
        assert all(process.exitcode == 0 for process in processes)

        store = ResultStore(path)
        expected = {
            _spec(seed=w * 1_000 + i).key()
            for w in range(writers)
            for i in range(per_writer)
        }
        records = list(store.iter_records())
        assert {key for key, _payload in records} == expected
        assert len(records) == len(expected)  # every key exactly once
        assert sum(1 for _ in store.iter_results()) == len(expected)
        assert store.malformed == 0

    def test_kill_mid_put_never_commits_a_torn_segment(self, tmp_path):
        path = tmp_path / "results.jsonl"
        script = tmp_path / "endless_writer.py"
        script.write_text(textwrap.dedent(f"""
            import sys
            sys.path.insert(0, {_SRC_DIR!r})
            from pathlib import Path
            from repro.engine.results import RunResult
            from repro.engine.spec import RunSpec
            from repro.engine.store import ResultStore

            store = ResultStore(Path(sys.argv[1]), seal_threshold=4)
            seed = 0
            while True:
                spec = RunSpec(workload="Oracle", tracked_level="L1",
                               provisioning=2.0, scale=64,
                               measure_accesses=1_500, seed=seed)
                store.put(RunResult(
                    spec=spec, accesses=seed, cache_hit_rate=0.9,
                    average_occupancy=0.5, occupancy_vs_worst_case=0.8,
                    average_insertion_attempts=1.25,
                    forced_invalidation_rate=0.0, insertions=10,
                    insertion_attempts=12, forced_invalidations=0,
                    tracked_frames_total=100, directory_capacity_total=128,
                    total_messages=5))
                seed += 1
        """))
        process = subprocess.Popen([sys.executable, str(script), str(path)])
        try:
            segdir = segments_dir(path)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if (segdir / MANIFEST_NAME).exists() and len(
                    load_manifest(segdir).segments
                ) >= 2:
                    break
                time.sleep(0.01)
        finally:
            process.kill()
            process.wait(timeout=30)

        manifest = load_manifest(segdir)
        assert len(manifest.segments) >= 2
        for meta in manifest.segments:
            # Segment files are fully fsynced before the manifest commit,
            # so every referenced file must exist and load to `rows` rows.
            main_name, hist_name, index_name, _extras = segment_file_names(meta.name)
            for name in (main_name, hist_name, index_name):
                assert (segdir / name).exists()
            loaded = read_segment(segdir, meta)
            assert len(loaded.main) == meta.rows

        store = ResultStore(path)
        assert len(store) > 0
        assert sum(1 for _ in store.iter_results()) == len(store)
        assert store.malformed == 0


# -- cache CLI: export / import / stats ---------------------------------------
class TestCacheCli:
    def test_export_import_and_stats(self, tmp_path, capsys):
        store_path = str(tmp_path / "results.jsonl")
        store = ResultStore(store_path)
        store.put(_result(_spec()))
        store.put(_result(_spec(seed=7)))
        store.seal()

        backup = str(tmp_path / "backup.jsonl")
        assert main(["cache", "export", backup, "--store", store_path]) == 0
        assert "exported 2 records" in capsys.readouterr().out

        target = str(tmp_path / "fresh.jsonl")
        assert main(["cache", "import", backup, "--store", target]) == 0
        assert "imported 2 records" in capsys.readouterr().out
        assert len(ResultStore(target)) == 2

        assert main(["cache", "stats", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "segments" in out

        assert main(["cache", "--store", store_path]) == 0
        assert "sealed segments" in capsys.readouterr().out

    def test_export_and_import_require_a_file_operand(self, tmp_path, capsys):
        store_path = str(tmp_path / "results.jsonl")
        assert main(["cache", "export", "--store", store_path]) == 2
        assert "destination FILE" in capsys.readouterr().err
        assert main(["cache", "import", "--store", store_path]) == 2
        assert "source FILE" in capsys.readouterr().err
        assert main(
            ["cache", "import", str(tmp_path / "absent.jsonl"), "--store", store_path]
        ) == 2
        assert "no such file" in capsys.readouterr().err


# -- winner scan equivalence --------------------------------------------------
class TestScanWinnersEquivalence:
    """The lexsort-based ``_scan_winners`` matches the sequential scan.

    The reference below is the historical row-by-row implementation; the
    production one reduces the segment portion to one numpy lexsort over
    (key, ts, ordinal).  Both must pick identical winners — including the
    winning (ts, ordinal) stamp and the exact (segment, row) locator —
    for overlapping keys across many segments, WAL overrides and legacy
    timestamp-less WAL lines.
    """

    @staticmethod
    def _reference_scan(path):
        from repro.engine.segment import read_segment_index
        from repro.engine.store import (
            _parse_wal_line,
            _wal_paths,
            load_manifest,
            segments_dir,
        )

        segdir = segments_dir(path)
        manifest = (
            load_manifest(segdir)
            if (segdir / MANIFEST_NAME).exists()
            else None
        )
        winners = {}
        ordinal = 0
        if manifest is not None:
            for meta in manifest.segments:
                keys, ts_arr = read_segment_index(segdir, meta)
                for row in range(len(keys)):
                    key = str(keys[row])
                    stamp = (int(ts_arr[row]), ordinal)
                    ordinal += 1
                    if key not in winners or stamp > winners[key][:2]:
                        winners[key] = (*stamp, ("seg", meta.name, row))
        for wal_path in _wal_paths(path):
            if not wal_path.exists():
                continue
            offset = 0
            with wal_path.open("rb") as handle:
                for raw in handle:
                    line_offset = offset
                    offset += len(raw)
                    parsed = _parse_wal_line(raw)
                    if parsed is None:
                        continue
                    key, ts, _payload = parsed
                    stamp = (ordinal if ts is None else ts, ordinal)
                    ordinal += 1
                    if key not in winners or stamp > winners[key][:2]:
                        winners[key] = (*stamp, ("wal", wal_path, line_offset))
        return winners

    def _assert_equivalent(self, path):
        from repro.engine.store import _scan_winners

        _segdir, _manifest, winners = _scan_winners(path)
        assert winners == self._reference_scan(path)
        return winners

    def test_overlapping_keys_across_many_segments(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        # Three sealed generations re-writing overlapping key subsets.
        for generation in range(3):
            for seed in range(4):
                if (seed + generation) % 2 == 0:
                    store.put(_result(_spec(seed=seed), accesses=generation + 1))
            store.seal()
        winners = self._assert_equivalent(path)
        assert len(load_manifest(segments_dir(path)).segments) == 3
        assert all(locator[0] == "seg" for _, _, locator in winners.values())

    def test_wal_overrides_and_fresh_keys(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        for seed in range(3):
            store.put(_result(_spec(seed=seed), accesses=1))
        store.seal()
        store.put(_result(_spec(seed=1), accesses=2))  # supersedes a sealed row
        store.put(_result(_spec(seed=9), accesses=1))  # WAL-only key
        winners = self._assert_equivalent(path)
        kinds = {locator[0] for _, _, locator in winners.values()}
        assert kinds == {"seg", "wal"}

    def test_legacy_timestampless_wal_lines_order_by_position(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.put(_result(_spec(seed=0), accesses=1))
        store.seal()
        # Legacy pre-engine lines: no ``ts`` field at all.  Scan position
        # substitutes for the stamp, so the later line must win.
        legacy_new = _result(_spec(seed=0), accesses=7).to_dict()
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({"key": _spec(seed=0).key(),
                                     "result": legacy_new}) + "\n")
        self._assert_equivalent(path)

    def test_empty_and_wal_only_stores(self, tmp_path):
        path = tmp_path / "results.jsonl"
        ResultStore(path)  # creates nothing until a put
        self._assert_equivalent(path)
        store = ResultStore(path)
        store.put(_result(_spec(seed=3)))
        self._assert_equivalent(path)
