"""CLI tests for ``repro-run`` / ``python -m repro.engine``."""

import pytest

from repro.engine.cli import main
from repro.engine.store import ResultStore


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "results.jsonl")


def test_list_names_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig04", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12",
                 "fig13", "ablation-hash"):
        assert name in out


def test_run_rejects_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_fig08_twice_hits_cache_on_second_invocation(capsys, store_path):
    argv = [
        "run", "fig08",
        "--workloads", "Oracle",
        "--scale", "64",
        "--measure-accesses", "1500",
        "--store", store_path,
        "--serial", "--quiet",
    ]
    assert main(argv) == 0
    first = capsys.readouterr()
    assert "Oracle" in first.out
    assert "0 hits / 2 misses" in first.err

    # Second invocation simulates zero points: every point is a cache hit.
    assert main(argv) == 0
    second = capsys.readouterr()
    assert "2 hits / 0 misses" in second.err
    assert first.out == second.out


def test_run_analytical_experiment_without_simulation(capsys, store_path):
    assert main(["run", "fig04", "--store", store_path, "--quiet"]) == 0
    assert "Figure 4" in capsys.readouterr().out
    assert len(ResultStore(store_path)) == 0  # nothing simulated, nothing cached


def test_sweep_builds_product_grid_and_reports(capsys, store_path):
    assert main([
        "sweep",
        "--workloads", "Oracle",
        "--tracked-levels", "L1",
        "--organizations", "cuckoo,sparse",
        "--ways", "4",
        "--provisionings", "1.0,2.0",
        "--scale", "64",
        "--measure-accesses", "1500",
        "--store", store_path,
        "--serial", "--quiet",
    ]) == 0
    out = capsys.readouterr().out
    assert "cuckoo" in out and "sparse" in out
    assert len(ResultStore(store_path)) == 4


def test_cache_inspect_and_clear(capsys, store_path):
    main([
        "sweep", "--workloads", "Oracle", "--tracked-levels", "L1",
        "--provisionings", "2.0", "--scale", "64", "--measure-accesses", "1500",
        "--store", store_path, "--serial", "--quiet",
    ])
    capsys.readouterr()

    assert main(["cache", "--store", store_path]) == 0
    assert "entries: 1" in capsys.readouterr().out

    assert main(["cache", "--store", store_path, "--clear"]) == 0
    assert "cleared 1" in capsys.readouterr().out
    assert len(ResultStore(store_path)) == 0
