"""Tests for the Section 5.5 ablation driver and the repository documents."""

from pathlib import Path

import pytest

from repro.experiments import ablation_hash_functions

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestHashFunctionAblation:
    def test_runs_and_reports_all_points(self):
        results = ablation_hash_functions.run(
            workload="Oracle", scale=64, measure_accesses=3_000
        )
        assert set(results) == {"1x/skewing", "1x/strong", "0.5x/skewing", "0.5x/strong"}
        for point in results.values():
            assert point.average_insertion_attempts >= 1.0
            assert 0.0 <= point.forced_invalidation_rate <= 1.0

    def test_well_provisioned_designs_do_not_invalidate(self):
        results = ablation_hash_functions.run(
            workload="Oracle", scale=64, measure_accesses=3_000
        )
        assert results["1x/skewing"].forced_invalidation_rate < 0.005
        assert results["1x/strong"].forced_invalidation_rate < 0.005

    def test_format_table(self):
        results = ablation_hash_functions.run(
            workload="Oracle", scale=64, measure_accesses=2_000
        )
        text = ablation_hash_functions.format_table(results)
        assert "skewing" in text and "strong" in text


class TestRepositoryDocuments:
    """The documentation deliverables exist and reference what they must."""

    def test_readme_covers_install_and_quickstart(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "pip install" in readme
        assert "CuckooDirectory" in readme
        assert "benchmarks/" in readme

    def test_design_doc_has_experiment_index(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        for figure in ("Figure 4", "Figure 7", "Figure 8", "Figure 9",
                       "Figure 10", "Figure 11", "Figure 12", "Figure 13"):
            assert figure in design
        assert "Substitutions" in design

    def test_experiments_doc_lists_every_bench_target(self):
        experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for bench in (
            "bench_fig04_scalability",
            "bench_fig07_hash_characteristics",
            "bench_fig08_occupancy",
            "bench_fig09_provisioning",
            "bench_fig10_insertion_attempts",
            "bench_fig11_worst_case",
            "bench_fig12_invalidations",
            "bench_fig13_power_area",
            "bench_ablation_hash_functions",
        ):
            assert bench in experiments

    def test_every_bench_file_referenced_by_experiments_doc_exists(self):
        benchmarks = {p.stem for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")}
        for required in (
            "bench_fig04_scalability",
            "bench_fig07_hash_characteristics",
            "bench_fig08_occupancy",
            "bench_fig09_provisioning",
            "bench_fig10_insertion_attempts",
            "bench_fig11_worst_case",
            "bench_fig12_invalidations",
            "bench_fig13_power_area",
            "bench_tables_1_2",
            "bench_ablation_hash_functions",
        ):
            assert required in benchmarks

    def test_examples_exist_and_are_python(self):
        examples = list((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3
        for example in examples:
            source = example.read_text()
            assert "def main" in source
            compile(source, str(example), "exec")
