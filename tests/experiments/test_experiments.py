"""Tests for the experiment drivers (scaled-down, fast configurations).

These are behavioural tests: each driver is run on a heavily scaled-down
system with short measurement windows and its *qualitative* result — the
trend or ordering the corresponding paper figure shows — is asserted.
Absolute numbers are expected to differ from the paper.
"""

import pytest

from repro.config import CacheLevel
from repro.experiments import common
from repro.experiments import (
    fig04_scalability,
    fig07_hash_characteristics,
    fig08_occupancy,
    fig09_provisioning,
    fig10_insertion_attempts,
    fig11_worst_case,
    fig12_invalidations,
    fig13_power_area,
)

# A fast setting shared by all simulation-based experiment tests.
FAST = dict(scale=64, measure_accesses=4_000)
FAST_WORKLOADS = ["Oracle", "Qry17", "ocean"]


class TestCommonHelpers:
    def test_scaled_system_preserves_ratios(self):
        full = common.scaled_system(CacheLevel.L1, scale=1)
        scaled = common.scaled_system(CacheLevel.L1, scale=16)
        assert full.l1_config.associativity == scaled.l1_config.associativity
        assert full.l2_config.associativity == scaled.l2_config.associativity
        assert full.l1_config.num_frames == 16 * scaled.l1_config.num_frames

    def test_scaled_system_full_size_matches_table1(self):
        full = common.scaled_system(CacheLevel.L1, scale=1)
        assert full.l1_config.size_bytes == 64 * 1024
        assert full.l2_config.size_bytes == 1024 * 1024
        assert full.page_bytes == 8192

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            common.scaled_system(CacheLevel.L1, scale=0)

    def test_factories_produce_sized_directories(self):
        system = common.scaled_system(CacheLevel.L1, scale=32)
        cuckoo = common.cuckoo_factory(system, ways=4, provisioning=1.0)(8, 0)
        sparse = common.sparse_factory(system, ways=8, provisioning=2.0)(8, 0)
        skewed = common.skewed_factory(system, ways=4, provisioning=2.0)(8, 0)
        frames = system.tracked_frames_per_slice
        assert cuckoo.capacity == pytest.approx(frames, rel=0.5)
        assert sparse.capacity == pytest.approx(2 * frames, rel=0.5)
        assert skewed.capacity == pytest.approx(2 * frames, rel=0.5)

    def test_run_workload_returns_populated_result(self):
        system = common.scaled_system(CacheLevel.L2, scale=64)
        from repro.workloads.suite import get_workload

        run = common.run_workload(
            get_workload("DB2"),
            system,
            common.cuckoo_factory(system, ways=4, provisioning=2.0),
            measure_accesses=2_000,
        )
        assert run.result.accesses == 2_000
        assert 0.0 < run.occupancy_vs_worst_case <= 1.2
        assert run.directory_capacity_total > 0


class TestFig04AndFig13:
    def test_fig04_has_both_scenarios_and_baselines(self):
        results = fig04_scalability.run(core_counts=(16, 64, 256))
        assert set(results) == {"Shared-L2", "Private-L2"}
        shared = results["Shared-L2"]
        assert "Duplicate-Tag" in shared.series
        assert shared.energy("Duplicate-Tag", 256) > shared.energy("Duplicate-Tag", 16)

    def test_fig04_format_table(self):
        results = fig04_scalability.run(core_counts=(16, 64))
        text = fig04_scalability.format_table(results)
        assert "Figure 4" in text
        assert "Duplicate-Tag" in text

    def test_fig13_cuckoo_flat_energy_and_small_area(self):
        results = fig13_power_area.run(core_counts=(16, 256, 1024))
        for scenario in results.values():
            cuckoo_growth = scenario.energy("Cuckoo Coarse", 1024) / scenario.energy(
                "Cuckoo Coarse", 16
            )
            duptag_growth = scenario.energy("Duplicate-Tag", 1024) / scenario.energy(
                "Duplicate-Tag", 16
            )
            assert cuckoo_growth < 2.0 < duptag_growth
            assert scenario.area("Cuckoo Coarse", 1024) < scenario.area(
                "Sparse 8x Coarse", 1024
            )

    def test_fig13_headline_ratios_match_paper_directions(self):
        results = fig13_power_area.run()
        ratios = fig13_power_area.headline_ratios(results)
        assert ratios["sparse_area_ratio_1024"] > 4
        assert ratios["duplicate_tag_energy_ratio_16"] > 10
        assert ratios["tagless_energy_ratio_1024"] > 10

    def test_fig13_format_table(self):
        results = fig13_power_area.run(core_counts=(16,))
        text = fig13_power_area.format_table(results)
        assert "Cuckoo Coarse" in text


class TestFig07:
    def test_wider_tables_need_fewer_attempts_at_high_occupancy(self):
        results = fig07_hash_characteristics.run(
            arities=(2, 4), capacity=2048, num_keys=4096, seed=3
        )
        series2 = results[2].as_series()
        series4 = results[4].as_series()
        # Compare around 70-90% occupancy: a 2-ary cuckoo hash is already past
        # its usable load factor (~50%) there while 4-ary still inserts easily.
        common_bins = [b for b in series2 if b in series4 and 0.7 < b < 0.9]
        assert common_bins
        for bin_ in common_bins:
            assert series4[bin_][0] <= series2[bin_][0]
            assert series4[bin_][1] <= series2[bin_][1]

    def test_low_occupancy_attempts_near_one_and_no_failures(self):
        results = fig07_hash_characteristics.run(
            arities=(3,), capacity=2048, num_keys=4096, seed=1
        )
        series = results[3].as_series()
        low_bins = [b for b in series if b < 0.5]
        assert low_bins
        for bin_ in low_bins:
            attempts, failures = series[bin_]
            assert attempts < 1.6
            assert failures == 0.0

    def test_two_ary_fails_at_high_occupancy(self):
        results = fig07_hash_characteristics.run(
            arities=(2,), capacity=1024, num_keys=4096, seed=2
        )
        series = results[2].as_series()
        high = [failures for b, (_, failures) in series.items() if b > 0.9]
        assert high and max(high) > 0.0

    def test_format_table(self):
        results = fig07_hash_characteristics.run(
            arities=(2, 3), capacity=512, num_keys=1024
        )
        text = fig07_hash_characteristics.format_table(results)
        assert "2-ary attempts" in text
        assert "3-ary failure" in text


class TestFig08:
    def test_occupancy_orderings(self):
        result = fig08_occupancy.run(workloads=FAST_WORKLOADS, **FAST)
        # ocean has a nearly fully private footprint: highest Private-L2
        # occupancy of the three, and close to 1x.
        assert result.private_l2["ocean"] > 0.8
        assert result.private_l2["ocean"] >= result.private_l2["Oracle"]
        # Server workloads share instructions/data: Shared-L2 occupancy well
        # below 1x.
        assert result.shared_l2["Oracle"] < 0.9
        for value in list(result.shared_l2.values()) + list(result.private_l2.values()):
            assert 0.0 < value <= 1.1

    def test_format_table(self):
        result = fig08_occupancy.run(workloads=["Oracle"], **FAST)
        text = fig08_occupancy.format_table(result)
        assert "Oracle" in text and "Shared L2" in text


class TestFig09Fig10Fig11:
    def test_fig09_underprovisioning_hurts(self):
        result = fig09_provisioning.run(workloads=["Oracle"], **FAST)
        for points in (result.shared_l2, result.private_l2):
            by_factor = {p.provisioning: p for p in points}
            most = by_factor[max(by_factor)]
            least = by_factor[min(by_factor)]
            assert least.average_insertion_attempts >= most.average_insertion_attempts
            assert least.forced_invalidation_rate >= most.forced_invalidation_rate
            # Generously provisioned designs do not invalidate.
            assert most.forced_invalidation_rate == pytest.approx(0.0, abs=1e-6)

    def test_fig09_format_table(self):
        result = fig09_provisioning.run(workloads=["Oracle"], **FAST)
        text = fig09_provisioning.format_table(result)
        assert "Figure 9" in text and "(2x)" in text

    def test_fig10_attempts_reasonable(self):
        result = fig10_insertion_attempts.run(workloads=FAST_WORKLOADS, **FAST)
        for per_workload in result.configurations().values():
            for value in per_workload.values():
                assert 1.0 <= value < 5.0

    def test_fig10_format_table(self):
        result = fig10_insertion_attempts.run(workloads=["ocean"], **FAST)
        assert "ocean" in fig10_insertion_attempts.format_table(result)

    def test_fig11_distribution_decays(self):
        result = fig11_worst_case.run(scale=64, measure_accesses=6_000)
        for label, distribution in result.distributions.items():
            assert distribution, f"no insertions recorded for {label}"
            assert distribution.get(1, 0.0) > 0.5
            assert sum(distribution.values()) == pytest.approx(1.0, abs=1e-6)
            # Essentially no mass at the 32-attempt cut-off.
            assert distribution.get(32, 0.0) < 0.05

    def test_fig11_format_table(self):
        result = fig11_worst_case.run(scale=64, measure_accesses=3_000)
        text = fig11_worst_case.format_table(result)
        assert "Oracle (Shared L2)" in text


class TestFig12:
    def test_invalidation_ordering_matches_paper(self):
        result = fig12_invalidations.run(workloads=["Qry17", "ocean"], **FAST)
        for rates in result.configurations().values():
            sparse2_mean = sum(rates["Sparse 2x"].values()) / len(rates["Sparse 2x"])
            sparse8_mean = sum(rates["Sparse 8x"].values()) / len(rates["Sparse 8x"])
            skewed_mean = sum(rates["Skewed 2x"].values()) / len(rates["Skewed 2x"])
            cuckoo_mean = sum(rates["Cuckoo"].values()) / len(rates["Cuckoo"])
            # The Cuckoo directory is near-zero despite the smallest capacity.
            # (On the tiny scale-64 test system a handful of overflows can
            # occur — the paper itself reports 0.08% for ocean at 1.5x — so a
            # small absolute tolerance is allowed against the
            # 2x-8x-provisioned baselines.)
            assert cuckoo_mean < 0.005
            assert cuckoo_mean <= sparse2_mean + 1e-9
            assert cuckoo_mean <= sparse8_mean + 2e-3
            assert cuckoo_mean <= skewed_mean + 2e-3
            assert skewed_mean <= sparse2_mean + 1e-9
            assert sparse8_mean <= sparse2_mean + 1e-9

    def test_sparse_2x_actually_conflicts(self):
        result = fig12_invalidations.run(workloads=["ocean"], **FAST)
        assert max(result.private_l2["Sparse 2x"].values()) > 0.0

    def test_format_table(self):
        result = fig12_invalidations.run(workloads=["ocean"], **FAST)
        text = fig12_invalidations.format_table(result)
        assert "Sparse 2x" in text and "Cuckoo" in text
