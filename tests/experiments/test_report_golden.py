"""Golden-pinned experiment table output for the reporting refactor.

``golden/report_tables_golden.json`` pins the exact text every
experiment's ``format_table`` produced *before* the drivers were
refactored onto the :class:`~repro.analysis.frame.SweepFrame` aggregator
(and after the per-column table-alignment fix).  The refactor changes how
the tables are assembled, not what they say — each driver must keep
reproducing its pinned rendering byte-for-byte from the same synthetic
result objects.

If a table legitimately changes (new column, different wording),
regenerate with ``python tests/experiments/test_report_golden.py
regenerate`` and review the diff.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.experiments import (
    ablation_hash_functions,
    fig04_scalability,
    fig07_hash_characteristics,
    fig08_occupancy,
    fig09_provisioning,
    fig10_insertion_attempts,
    fig11_worst_case,
    fig12_invalidations,
    fig13_power_area,
    mix_occupancy,
)

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "report_tables_golden.json"

WORKLOADS = ("DB2", "Oracle", "Qry2", "Apache", "em3d", "ocean")


def _scalability_result(scenario_name):
    organizations = ("Duplicate-Tag", "Tagless", "Sparse 8x Coarse", "Cuckoo Coarse")
    base = {"Duplicate-Tag": 0.02, "Tagless": 0.015,
            "Sparse 8x Coarse": 0.05, "Cuckoo Coarse": 0.008}
    growth = {"Duplicate-Tag": 16.0, "Tagless": 20.0,
              "Sparse 8x Coarse": 1.4, "Cuckoo Coarse": 1.2}
    core_counts = [16, 1024]
    series = {
        organization: {
            cores: {
                "energy": base[organization] * (growth[organization] if cores == 1024 else 1.0),
                "area": base[organization] * 2 * (1.1 if cores == 1024 else 1.0),
            }
            for cores in core_counts
        }
        for organization in organizations
    }
    return fig04_scalability.ScalabilityResult(
        scenario_name=scenario_name, core_counts=core_counts, series=series
    )


def _build_fig04():
    return {"Shared-L2": _scalability_result("Shared-L2"),
            "Private-L2": _scalability_result("Private-L2")}


def _build_fig07():
    return {
        2: fig07_hash_characteristics.HashCharacteristics(
            arity=2,
            occupancy_bins=[0.125, 0.375],
            average_attempts=[1.1, 2.4],
            failure_probability=[0.0, 0.25],
        ),
        4: fig07_hash_characteristics.HashCharacteristics(
            arity=4,
            occupancy_bins=[0.375, 0.625],
            average_attempts=[1.3, 1.9],
            failure_probability=[0.0, 0.05],
        ),
    }


def _build_fig08():
    shared = {name: 0.4 + 0.05 * index for index, name in enumerate(WORKLOADS)}
    private = {name: 0.5 + 0.05 * index for index, name in enumerate(WORKLOADS)}
    return fig08_occupancy.OccupancyResult(shared_l2=shared, private_l2=private)


def _provisioning_points(offset):
    points = []
    for index, (ways, provisioning, label) in enumerate(
        [(4, 2.0, "4 x 1024 (2x)"), (4, 1.0, "4 x 512 (1x)"), (3, 0.375, "3 x 256 (3/8x)")]
    ):
        attempts = {name: 1.0 + offset + index * (1.5 + 0.1 * j)
                    for j, name in enumerate(WORKLOADS)}
        invalidations = {name: offset * 0.001 + index * 0.01 * (j + 1)
                         for j, name in enumerate(WORKLOADS)}
        points.append(
            fig09_provisioning.ProvisioningPoint(
                label=label,
                ways=ways,
                provisioning=provisioning,
                average_insertion_attempts=sum(attempts.values()) / len(attempts),
                forced_invalidation_rate=sum(invalidations.values()) / len(invalidations),
                per_workload_attempts=attempts,
                per_workload_invalidation_rate=invalidations,
            )
        )
    return points


def _build_fig09():
    return fig09_provisioning.ProvisioningResult(
        shared_l2=_provisioning_points(0.05), private_l2=_provisioning_points(0.12)
    )


def _build_fig10():
    shared = {name: 1.1 + 0.07 * index for index, name in enumerate(WORKLOADS)}
    private = {name: 1.15 + 0.09 * index for index, name in enumerate(WORKLOADS)}
    return fig10_insertion_attempts.InsertionAttemptsResult(
        shared_l2=shared, private_l2=private
    )


def _build_fig11():
    return fig11_worst_case.WorstCaseResult(
        distributions={
            "Oracle (Shared L2)": {1: 0.90, 2: 0.08, 3: 0.02},
            "ocean (Private L2)": {1: 0.80, 2: 0.15, 5: 0.05},
        }
    )


def _build_fig12():
    organizations = ("Sparse 2x", "Sparse 8x", "Skewed 2x", "Cuckoo")
    rates = {"Sparse 2x": 0.08, "Sparse 8x": 0.01, "Skewed 2x": 0.035, "Cuckoo": 0.0002}
    shared = {
        org: {name: rates[org] * (1 + 0.1 * index)
              for index, name in enumerate(WORKLOADS)}
        for org in organizations
    }
    private = {
        org: {name: rates[org] * (1.2 + 0.1 * index)
              for index, name in enumerate(WORKLOADS)}
        for org in organizations
    }
    return fig12_invalidations.InvalidationResult(shared_l2=shared, private_l2=private)


def _build_fig13():
    return _build_fig04()


def _build_mix():
    scenarios = {}
    for index, label in enumerate(("Apache", "ocean", "8xApache+8xocean")):
        scenarios[label] = {
            "Shared L2": (0.5 + 0.1 * index, 0.001 * index),
            "Private L2": (0.6 + 0.1 * index, 0.002 * index),
        }
    return mix_occupancy.MixOccupancyResult(
        scenarios=scenarios, programs=("Apache", "ocean")
    )


def _build_ablation():
    results = {}
    for provisioning in (1.0, 0.5):
        for index, family in enumerate(("skewing", "strong")):
            results[f"{provisioning:g}x/{family}"] = (
                ablation_hash_functions.HashAblationPoint(
                    provisioning=provisioning,
                    hash_family=family,
                    average_insertion_attempts=1.2 + provisioning + 0.05 * index,
                    forced_invalidation_rate=0.002 / provisioning + 0.0001 * index,
                )
            )
    return results


CASES = {
    "fig04": (fig04_scalability.format_table, _build_fig04),
    "fig07": (fig07_hash_characteristics.format_table, _build_fig07),
    "fig08": (fig08_occupancy.format_table, _build_fig08),
    "fig09": (fig09_provisioning.format_table, _build_fig09),
    "fig10": (fig10_insertion_attempts.format_table, _build_fig10),
    "fig11": (fig11_worst_case.format_table, _build_fig11),
    "fig12": (fig12_invalidations.format_table, _build_fig12),
    "fig13": (fig13_power_area.format_table, _build_fig13),
    "mix": (mix_occupancy.format_table, _build_mix),
    "ablation-hash": (ablation_hash_functions.format_table, _build_ablation),
}


def _load_golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", sorted(CASES))
def test_format_table_matches_pinned_rendering(name):
    golden = _load_golden()
    format_table, build = CASES[name]
    assert format_table(build()) == golden[name], (
        f"{name}: format_table output diverged from the pinned pre-refactor "
        f"rendering (regenerate only for deliberate table changes)"
    )


def test_golden_covers_every_registered_experiment():
    from repro.engine.registry import EXPERIMENTS

    assert set(CASES) == set(EXPERIMENTS)


def _regenerate():  # pragma: no cover - maintenance helper
    golden = {
        name: format_table(build()) for name, (format_table, build) in CASES.items()
    }
    GOLDEN_PATH.write_text(json.dumps(golden, indent=1, sort_keys=True))
    print(f"regenerated {GOLDEN_PATH}")


if __name__ == "__main__" and "regenerate" in sys.argv:  # pragma: no cover
    _regenerate()
