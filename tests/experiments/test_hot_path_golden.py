"""Golden-equivalence test for the allocation-free hot-path rewrite.

``golden/hot_path_golden.json`` pins the exact statistics the *pre-rewrite*
simulator produced for a small Figure 10 and Figure 12 configuration
(Oracle and em3d on the chosen Cuckoo designs, plus Oracle against the
Sparse 2x/8x and Skewed 2x baselines, both tracked levels).  The bitmask
sharer sets, flat-array cuckoo table, batched hashing and chunked trace
generation must reproduce every pinned number *bit-identically* —
attempt histograms, insertion and invalidation counts, hit rates,
occupancies and message totals — because the rewrite changes data layout,
not semantics.

If a future change legitimately alters simulation semantics, bump
``repro.engine.spec.SPEC_VERSION`` and regenerate this file with
``python tests/experiments/test_hot_path_golden.py regenerate``.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.engine.execute import execute_spec
from repro.engine.spec import RunSpec

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "hot_path_golden.json"


def _load_golden():
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


GOLDEN = _load_golden()


def _labels():
    return [RunSpec.from_dict(entry["spec"]).label() for entry in GOLDEN["results"]]


@pytest.mark.parametrize(
    "expected", GOLDEN["results"], ids=_labels()
)
def test_hot_path_reproduces_pinned_results_exactly(expected):
    spec = RunSpec.from_dict(expected["spec"])
    actual = execute_spec(spec).to_dict()
    actual.pop("elapsed_seconds")
    # Every statistic must match exactly — including the full attempt
    # histogram (Figure 11's distribution) and the forced-invalidation
    # counts (Figure 12's metric).  Floats compare with == on purpose:
    # the rewrite must not change a single arithmetic step.
    for key, value in expected.items():
        assert actual[key] == value, f"{spec.label()}: {key} diverged"


def test_golden_covers_both_figures_and_all_organizations():
    specs = [RunSpec.from_dict(entry["spec"]) for entry in GOLDEN["results"]]
    organizations = {spec.organization for spec in specs}
    levels = {spec.tracked_level for spec in specs}
    workloads = {spec.workload for spec in specs}
    assert organizations == {"cuckoo", "sparse", "skewed"}
    assert levels == {"L1", "L2"}
    assert {"Oracle", "em3d"} <= workloads


def _regenerate():  # pragma: no cover - maintenance helper
    results = []
    for entry in GOLDEN["results"]:
        spec = RunSpec.from_dict(entry["spec"])
        data = execute_spec(spec).to_dict()
        data.pop("elapsed_seconds")
        data.pop("worker", None)  # host-specific pid, not a statistic
        results.append(data)
    GOLDEN["results"] = results
    GOLDEN_PATH.write_text(json.dumps(GOLDEN, indent=1, sort_keys=True))
    print(f"regenerated {GOLDEN_PATH}")


if __name__ == "__main__" and "regenerate" in sys.argv:  # pragma: no cover
    _regenerate()
