"""Tests for the synthetic workload generators (Table 2 suite)."""

import itertools

import pytest

from repro.coherence.system import MemoryAccess
from repro.workloads.base import AddressSpaceLayout, WorkloadCategory, ZipfSampler
from repro.workloads.scientific import Em3dWorkload, OceanWorkload
from repro.workloads.suite import WORKLOAD_NAMES, get_workload, iter_workloads, workload_table
from repro.workloads.synthetic import SyntheticWorkload, UniformRandomWorkload

import numpy as np


def take(iterator, count):
    return list(itertools.islice(iterator, count))


class TestZipfSampler:
    def test_uniform_when_alpha_zero(self):
        rng = np.random.default_rng(0)
        sampler = ZipfSampler(population=100, alpha=0.0, rng=rng)
        samples = sampler.sample(10_000)
        assert samples.min() >= 0 and samples.max() < 100
        counts = np.bincount(samples, minlength=100)
        assert counts.std() < counts.mean()

    def test_skewed_when_alpha_positive(self):
        rng = np.random.default_rng(0)
        sampler = ZipfSampler(population=1000, alpha=1.0, rng=rng)
        samples = sampler.sample(20_000)
        counts = np.bincount(samples, minlength=1000)
        # Rank 0 must be far more popular than rank 500.
        assert counts[0] > 10 * max(counts[500], 1)

    def test_zero_count(self):
        sampler = ZipfSampler(10, 0.5, np.random.default_rng(0))
        assert sampler.sample(0).size == 0

    def test_rejects_bad_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ZipfSampler(0, 0.5, rng)
        with pytest.raises(ValueError):
            ZipfSampler(10, -1.0, rng)
        sampler = ZipfSampler(10, 0.5, rng)
        with pytest.raises(ValueError):
            sampler.sample(-1)


class TestAddressSpaceLayout:
    def test_regions_do_not_overlap(self):
        layout = AddressSpaceLayout(block_bytes=64)
        a = layout.allocate(100)
        b = layout.allocate(50)
        assert b >= a + 100 * 64

    def test_rejects_negative(self):
        layout = AddressSpaceLayout(block_bytes=64)
        with pytest.raises(ValueError):
            layout.allocate(-1)


class TestSyntheticWorkload:
    def test_trace_yields_memory_accesses(self, tiny_shared_system):
        workload = SyntheticWorkload("test", WorkloadCategory.OLTP)
        accesses = take(workload.trace(tiny_shared_system, seed=1), 500)
        assert len(accesses) == 500
        for access in accesses:
            assert isinstance(access, MemoryAccess)
            assert 0 <= access.core < tiny_shared_system.num_cores
            assert access.address >= 0

    def test_deterministic_for_same_seed(self, tiny_shared_system):
        workload = SyntheticWorkload("test", WorkloadCategory.OLTP)
        a = take(workload.trace(tiny_shared_system, seed=5), 200)
        b = take(workload.trace(tiny_shared_system, seed=5), 200)
        assert a == b

    def test_different_seeds_differ(self, tiny_shared_system):
        workload = SyntheticWorkload("test", WorkloadCategory.OLTP)
        a = take(workload.trace(tiny_shared_system, seed=1), 200)
        b = take(workload.trace(tiny_shared_system, seed=2), 200)
        assert a != b

    def test_instruction_fraction_respected(self, tiny_shared_system):
        workload = SyntheticWorkload(
            "ifrac", WorkloadCategory.WEB, instr_fraction=0.5
        )
        accesses = take(workload.trace(tiny_shared_system, seed=0), 5000)
        fraction = sum(a.is_instruction for a in accesses) / len(accesses)
        assert 0.4 < fraction < 0.6

    def test_instructions_are_never_writes(self, tiny_shared_system):
        workload = SyntheticWorkload("nw", WorkloadCategory.OLTP, instr_fraction=0.6)
        accesses = take(workload.trace(tiny_shared_system, seed=0), 2000)
        assert all(not a.is_write for a in accesses if a.is_instruction)

    def test_zero_instruction_fraction(self, tiny_shared_system):
        workload = SyntheticWorkload("data-only", WorkloadCategory.DSS, instr_fraction=0.0)
        accesses = take(workload.trace(tiny_shared_system, seed=0), 1000)
        assert all(not a.is_instruction for a in accesses)

    def test_private_regions_are_mostly_accessed_by_owner(self, tiny_shared_system):
        workload = SyntheticWorkload(
            "priv",
            WorkloadCategory.DSS,
            instr_fraction=0.0,
            shared_data_fraction=0.0,
            migration_fraction=0.0,
            private_footprint_l2x=0.5,
        )
        accesses = take(workload.trace(tiny_shared_system, seed=0), 3000)
        # With no sharing and no migration, every address is touched by
        # exactly one core.
        owners = {}
        for access in accesses:
            owners.setdefault(access.address, set()).add(access.core)
        assert all(len(cores) == 1 for cores in owners.values())

    def test_shared_region_is_accessed_by_many_cores(self, tiny_shared_system):
        workload = SyntheticWorkload(
            "shared",
            WorkloadCategory.OLTP,
            instr_fraction=0.0,
            shared_data_fraction=1.0,
        )
        accesses = take(workload.trace(tiny_shared_system, seed=0), 2000)
        addresses_by_core = {}
        for access in accesses:
            addresses_by_core.setdefault(access.core, set()).add(access.address)
        overlap = set.intersection(*addresses_by_core.values())
        assert overlap

    def test_write_fraction_bounds(self, tiny_shared_system):
        workload = SyntheticWorkload(
            "wf",
            WorkloadCategory.OLTP,
            instr_fraction=0.0,
            shared_data_fraction=1.0,
            shared_write_fraction=1.0,
        )
        accesses = take(workload.trace(tiny_shared_system, seed=0), 500)
        assert all(a.is_write for a in accesses)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SyntheticWorkload("bad", WorkloadCategory.OLTP, instr_fraction=1.5)
        with pytest.raises(ValueError):
            SyntheticWorkload("bad", WorkloadCategory.OLTP, private_footprint_l2x=-1)
        with pytest.raises(ValueError):
            SyntheticWorkload("bad", WorkloadCategory.OLTP, zipf_alpha=-0.1)

    def test_recommended_warmup_scales_with_cache_size(
        self, tiny_shared_system, tiny_private_system
    ):
        workload = SyntheticWorkload("w", WorkloadCategory.OLTP)
        assert workload.recommended_warmup(tiny_private_system) > 0
        assert workload.recommended_warmup(tiny_shared_system) != (
            workload.recommended_warmup(tiny_private_system)
        )


class TestUniformRandomWorkload:
    def test_addresses_within_footprint(self, tiny_shared_system):
        workload = UniformRandomWorkload(footprint_blocks=128)
        accesses = take(workload.trace(tiny_shared_system, seed=0), 1000)
        base = min(a.address for a in accesses)
        assert all(a.address < base + 128 * 64 for a in accesses)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            UniformRandomWorkload(footprint_blocks=0)
        with pytest.raises(ValueError):
            UniformRandomWorkload(write_fraction=2.0)


class TestScientificWorkloads:
    def test_em3d_reads_then_writes_local_node(self, tiny_private_system):
        workload = Em3dWorkload(nodes_per_core_l2x=0.5, degree=2)
        accesses = take(workload.trace(tiny_private_system, seed=0), 300)
        writes = [a for a in accesses if a.is_write]
        reads = [a for a in accesses if not a.is_write]
        # Degree-2 updates: two neighbour reads per one node write.
        assert len(reads) == pytest.approx(2 * len(writes), abs=3)

    def test_em3d_remote_fraction_zero_keeps_accesses_local(self, tiny_private_system):
        workload = Em3dWorkload(nodes_per_core_l2x=0.5, remote_fraction=0.0)
        accesses = take(workload.trace(tiny_private_system, seed=0), 600)
        region_blocks = max(
            1, int(0.5 * tiny_private_system.l2_config.num_frames)
        )
        region_bytes = region_blocks * 64
        base = min(a.address for a in accesses)
        for access in accesses:
            region_owner = (access.address - base) // region_bytes
            assert region_owner == access.core

    def test_em3d_remote_fraction_produces_sharing(self, tiny_private_system):
        workload = Em3dWorkload(nodes_per_core_l2x=0.5, remote_fraction=0.5)
        accesses = take(workload.trace(tiny_private_system, seed=0), 2000)
        touched_by = {}
        for access in accesses:
            touched_by.setdefault(access.address, set()).add(access.core)
        shared = [a for a, cores in touched_by.items() if len(cores) > 1]
        assert shared

    def test_em3d_parameter_validation(self):
        with pytest.raises(ValueError):
            Em3dWorkload(nodes_per_core_l2x=0)
        with pytest.raises(ValueError):
            Em3dWorkload(degree=0)
        with pytest.raises(ValueError):
            Em3dWorkload(remote_fraction=1.5)

    def test_ocean_footprint_is_mostly_private(self, tiny_private_system):
        workload = OceanWorkload(grid_l2x=0.5)
        accesses = take(workload.trace(tiny_private_system, seed=0), 8000)
        touched_by = {}
        for access in accesses:
            touched_by.setdefault(access.address, set()).add(access.core)
        shared_blocks = sum(1 for cores in touched_by.values() if len(cores) > 1)
        assert shared_blocks / len(touched_by) < 0.25

    def test_ocean_has_boundary_sharing(self, tiny_private_system):
        workload = OceanWorkload(grid_l2x=0.5)
        accesses = take(workload.trace(tiny_private_system, seed=0), 20_000)
        touched_by = {}
        for access in accesses:
            touched_by.setdefault(access.address, set()).add(access.core)
        assert any(len(cores) > 1 for cores in touched_by.values())

    def test_ocean_writes_present(self, tiny_private_system):
        workload = OceanWorkload(grid_l2x=0.25)
        accesses = take(workload.trace(tiny_private_system, seed=0), 2000)
        assert any(a.is_write for a in accesses)

    def test_ocean_parameter_validation(self):
        with pytest.raises(ValueError):
            OceanWorkload(grid_l2x=0)
        with pytest.raises(ValueError):
            OceanWorkload(points_per_block=0)


class TestSuite:
    def test_all_nine_workloads_present(self):
        assert len(WORKLOAD_NAMES) == 9
        assert WORKLOAD_NAMES[0] == "DB2"
        assert WORKLOAD_NAMES[-1] == "ocean"

    def test_get_workload_returns_named_instances(self):
        for name in WORKLOAD_NAMES:
            workload = get_workload(name)
            assert workload.name == name

    def test_get_workload_unknown_name(self):
        with pytest.raises(KeyError):
            get_workload("SPECjbb")

    def test_iter_order_matches_names(self):
        assert [w.name for w in iter_workloads()] == WORKLOAD_NAMES

    def test_categories_match_table2(self):
        assert get_workload("DB2").category is WorkloadCategory.OLTP
        assert get_workload("Qry17").category is WorkloadCategory.DSS
        assert get_workload("Zeus").category is WorkloadCategory.WEB
        assert get_workload("ocean").category is WorkloadCategory.SCIENTIFIC

    def test_workload_table_rows(self):
        rows = workload_table()
        assert len(rows) == 9
        assert {"name", "category", "description"} <= set(rows[0])

    def test_every_suite_workload_generates_valid_accesses(self, tiny_shared_system):
        for workload in iter_workloads():
            accesses = take(workload.trace(tiny_shared_system, seed=0), 64)
            assert len(accesses) == 64
            assert all(isinstance(a, MemoryAccess) for a in accesses)
