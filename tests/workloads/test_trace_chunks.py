"""The chunked trace API must flatten to exactly the per-access stream.

``run_workload`` feeds :meth:`Workload.trace_chunks` into the simulator's
chunked loop, so any divergence between ``trace()`` and ``trace_chunks()``
would silently change every figure.  These tests pin the equivalence for
the natively vectorized generators (synthetic, uniform) and the generic
batching fallback (scientific), and check that the chunked simulator loop
produces the same measurements as the per-access loop.
"""

from itertools import islice

import pytest

from repro.config import CacheLevel
from repro.coherence.simulator import TraceSimulator
from repro.coherence.system import TiledCMP
from repro.core.cuckoo_directory import CuckooDirectory
from repro.experiments.common import scaled_system
from repro.workloads.suite import get_workload
from repro.workloads.synthetic import UniformRandomWorkload


def _flatten(chunks, limit):
    produced = 0
    for cores, addresses, writes, instrs in chunks:
        assert len(cores) == len(addresses) == len(writes) == len(instrs)
        for fields in zip(cores, addresses, writes, instrs):
            yield fields
            produced += 1
            if produced >= limit:
                return


@pytest.mark.parametrize("name", ["Oracle", "Qry2", "em3d", "ocean"])
def test_trace_chunks_flatten_to_trace(name):
    system = scaled_system(CacheLevel.L1, scale=64)
    workload = get_workload(name)
    limit = 5000
    from_chunks = list(_flatten(workload.trace_chunks(system, seed=3), limit))
    from_stream = [
        (access.core, access.address, access.is_write, access.is_instruction)
        for access in islice(workload.trace(system, seed=3), limit)
    ]
    assert from_chunks == from_stream


def test_uniform_workload_chunks_flatten_to_trace():
    system = scaled_system(CacheLevel.L2, scale=64)
    workload = UniformRandomWorkload(footprint_blocks=512, write_fraction=0.25)
    limit = 4000
    from_chunks = list(_flatten(workload.trace_chunks(system, seed=9), limit))
    from_stream = [
        (access.core, access.address, access.is_write, access.is_instruction)
        for access in islice(workload.trace(system, seed=9), limit)
    ]
    assert from_chunks == from_stream


def test_vectorised_chunk_fields_are_numpy_arrays():
    """The batched front-end (``TiledCMP.access_batch``) consumes chunk
    fields with vectorised address math; the natively vectorised generators
    must hand over their arrays directly instead of paying a per-element
    ``tolist`` round-trip the consumer would immediately undo."""
    import numpy as np

    system = scaled_system(CacheLevel.L1, scale=64)
    chunk = next(iter(get_workload("Oracle").trace_chunks(system, seed=0)))
    cores, addresses, writes, instrs = chunk
    assert isinstance(cores, np.ndarray) and cores.dtype.kind in "iu"
    assert isinstance(addresses, np.ndarray) and addresses.dtype.kind in "iu"
    assert isinstance(writes, np.ndarray) and writes.dtype == np.bool_
    assert isinstance(instrs, np.ndarray) and instrs.dtype == np.bool_


def test_trace_stream_yields_plain_python_scalars():
    """``trace()`` remains the object-level API: MemoryAccess fields stay
    plain Python scalars even when the chunks underneath are numpy arrays."""
    system = scaled_system(CacheLevel.L1, scale=64)
    access = next(iter(get_workload("Oracle").trace(system, seed=0)))
    assert type(access.core) is int
    assert type(access.address) is int
    assert type(access.is_write) is bool
    assert type(access.is_instruction) is bool


def _fresh_simulator():
    config = scaled_system(CacheLevel.L1, num_cores=4, scale=64)
    system = TiledCMP(
        config,
        lambda num_caches, slice_id: CuckooDirectory(
            num_caches=num_caches, num_sets=64, num_ways=4
        ),
    )
    return config, TraceSimulator(system, warmup_accesses=500,
                                  occupancy_sample_interval=700)


def test_run_chunks_matches_run():
    workload = get_workload("Oracle")
    config, simulator_a = _fresh_simulator()
    result_a = simulator_a.run(workload.trace(config, seed=5), max_accesses=4000)
    _, simulator_b = _fresh_simulator()
    result_b = simulator_b.run_chunks(
        workload.trace_chunks(config, seed=5), max_accesses=4000
    )
    assert result_a.accesses == result_b.accesses
    assert result_a.cache_hit_rate == result_b.cache_hit_rate
    assert result_a.occupancy_samples == result_b.occupancy_samples
    stats_a, stats_b = result_a.directory_stats, result_b.directory_stats
    assert stats_a.insertions == stats_b.insertions
    assert stats_a.insertion_attempts == stats_b.insertion_attempts
    assert stats_a.attempt_histogram == stats_b.attempt_histogram
    assert stats_a.forced_invalidations == stats_b.forced_invalidations
    assert result_a.traffic.messages == result_b.traffic.messages
    assert result_a.traffic.hops == result_b.traffic.hops
