"""The on-disk trace container: headers, fingerprints, memory mapping."""

import json
import zipfile

import numpy as np
import pytest

from repro.config import CacheLevel
from repro.experiments.common import scaled_system
from repro.traces import (
    TRACE_FORMAT_VERSION,
    TraceFile,
    TraceHeader,
    TraceRecorder,
    accesses_for_run,
    write_trace,
)
from repro.workloads.suite import get_workload


def _header(num_accesses: int) -> TraceHeader:
    return TraceHeader(
        workload="Oracle",
        category="OLTP",
        seed=0,
        num_cores=8,
        block_bytes=64,
        num_accesses=num_accesses,
        fingerprint="",
        scale=64,
    )


def _write_small_trace(path, num_accesses=100):
    rng = np.random.default_rng(0)
    return write_trace(
        path,
        _header(num_accesses),
        rng.integers(0, 8, size=num_accesses),
        rng.integers(0, 1 << 30, size=num_accesses) * 64,
        rng.random(num_accesses) < 0.3,
        rng.random(num_accesses) < 0.2,
    )


class TestWriteAndOpen:
    def test_round_trips_header_and_arrays(self, tmp_path):
        path = tmp_path / "t.npz"
        header = _write_small_trace(path)
        trace = TraceFile(path)
        assert trace.header == header
        assert trace.header.workload == "Oracle"
        assert trace.header.format_version == TRACE_FORMAT_VERSION
        arrays = trace.arrays()
        assert len(arrays["cores"]) == 100
        assert arrays["addresses"].dtype == np.int64
        assert len(trace) == 100

    def test_fingerprint_is_stamped_and_verifies(self, tmp_path):
        path = tmp_path / "t.npz"
        header = _write_small_trace(path)
        assert header.fingerprint  # write_trace stamps it
        assert TraceFile(path).verify()

    def test_identical_recordings_share_a_fingerprint(self, tmp_path):
        first = _write_small_trace(tmp_path / "a.npz")
        second = _write_small_trace(tmp_path / "b.npz")
        assert first.fingerprint == second.fingerprint

    def test_different_contents_different_fingerprint(self, tmp_path):
        first = _write_small_trace(tmp_path / "a.npz", num_accesses=100)
        second = _write_small_trace(tmp_path / "b.npz", num_accesses=101)
        assert first.fingerprint != second.fingerprint

    def test_members_are_memory_mapped(self, tmp_path):
        path = tmp_path / "t.npz"
        _write_small_trace(path)
        trace = TraceFile(path)
        assert trace.mapped
        assert all(
            isinstance(array, np.memmap) for array in trace.arrays().values()
        )

    def test_compressed_archive_falls_back_to_load(self, tmp_path):
        # Rewrite the archive with deflate compression: still readable,
        # just not zero-copy.
        path = tmp_path / "t.npz"
        _write_small_trace(path)
        reference = {name: np.asarray(a) for name, a in TraceFile(path).arrays().items()}
        compressed = tmp_path / "c.npz"
        with zipfile.ZipFile(path) as src, zipfile.ZipFile(
            compressed, "w", zipfile.ZIP_DEFLATED
        ) as dst:
            for member in src.namelist():
                dst.writestr(member, src.read(member))
        trace = TraceFile(compressed)
        assert not trace.mapped
        for name, array in trace.arrays().items():
            assert np.array_equal(array, reference[name])
        assert trace.verify()


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TraceFile(tmp_path / "nope.npz")

    def test_non_trace_npz_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path.open("wb"), stuff=np.arange(4))
        with pytest.raises(ValueError, match="no header"):
            TraceFile(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not a zip archive at all")
        with pytest.raises(ValueError):
            TraceFile(path)

    def test_mismatched_array_lengths_rejected(self):
        with pytest.raises(ValueError, match="parallel"):
            write_trace(
                "/tmp/never-written.npz",
                _header(3),
                np.zeros(3, dtype=np.int32),
                np.zeros(2, dtype=np.int64),
                np.zeros(3, dtype=bool),
                np.zeros(3, dtype=bool),
            )

    def test_header_count_must_match_arrays(self):
        with pytest.raises(ValueError, match="header says"):
            write_trace(
                "/tmp/never-written.npz",
                _header(5),
                np.zeros(3, dtype=np.int32),
                np.zeros(3, dtype=np.int64),
                np.zeros(3, dtype=bool),
                np.zeros(3, dtype=bool),
            )

    def test_tampered_payload_fails_verification(self, tmp_path):
        path = tmp_path / "t.npz"
        _write_small_trace(path)
        trace = TraceFile(path)
        arrays = {name: np.asarray(a).copy() for name, a in trace.arrays().items()}
        arrays["addresses"][0] ^= 64  # flip one block
        tampered = tmp_path / "tampered.npz"
        header_bytes = np.frombuffer(
            json.dumps(trace.header.to_dict(), sort_keys=True).encode(), dtype=np.uint8
        )
        with tampered.open("wb") as handle:
            np.savez(handle, header=header_bytes, **arrays)
        assert not TraceFile(tampered).verify()

    def test_future_format_version_rejected(self, tmp_path):
        path = tmp_path / "t.npz"
        _write_small_trace(path)
        header = TraceFile(path).header.to_dict()
        header["format_version"] = TRACE_FORMAT_VERSION + 1
        arrays = {name: np.asarray(a) for name, a in TraceFile(path).arrays().items()}
        future = tmp_path / "future.npz"
        with future.open("wb") as handle:
            np.savez(
                handle,
                header=np.frombuffer(
                    json.dumps(header, sort_keys=True).encode(), dtype=np.uint8
                ),
                **arrays,
            )
        with pytest.raises(ValueError, match="format"):
            TraceFile(future)


class TestChunkStreaming:
    def test_chunks_flatten_to_the_recorded_stream(self, tmp_path):
        path = tmp_path / "t.npz"
        _write_small_trace(path, num_accesses=100)
        trace = TraceFile(path)
        arrays = trace.arrays()
        cores, addresses, writes, instrs = [], [], [], []
        for chunk in trace.iter_chunks(chunk_size=7):  # uneven tail on purpose
            cores.extend(chunk[0])
            addresses.extend(chunk[1])
            writes.extend(chunk[2])
            instrs.extend(chunk[3])
        assert cores == arrays["cores"].tolist()
        assert addresses == arrays["addresses"].tolist()
        assert writes == arrays["writes"].tolist()
        assert instrs == arrays["instrs"].tolist()


class TestRecorder:
    def test_recorded_stream_matches_live_prefix(self, tmp_path):
        system = scaled_system(CacheLevel.L1, num_cores=8, scale=64)
        workload = get_workload("Apache")
        path = tmp_path / "apache.npz"
        TraceRecorder().record(workload, system, path, 5000, seed=3, scale=64)
        trace = TraceFile(path)
        assert trace.header.seed == 3
        recorded = trace.arrays()
        live_cores, live_addresses = [], []
        for cores, addresses, _writes, _instrs in workload.trace_chunks(system, seed=3):
            live_cores.extend(cores)
            live_addresses.extend(addresses)
            if len(live_cores) >= 5000:
                break
        assert recorded["cores"].tolist() == live_cores[:5000]
        assert recorded["addresses"].tolist() == live_addresses[:5000]

    def test_finite_workload_too_short_errors(self, tmp_path):
        from repro.traces import TraceReplayWorkload

        system = scaled_system(CacheLevel.L1, num_cores=8, scale=64)
        path = tmp_path / "short.npz"
        TraceRecorder().record(get_workload("DB2"), system, path, 200, scale=64)
        replay = TraceReplayWorkload(path)  # finite: 200 accesses
        with pytest.raises(ValueError, match="finite traces"):
            TraceRecorder().record(replay, system, tmp_path / "longer.npz", 300)

    def test_accesses_for_run_covers_warmup_plus_measure(self):
        system = scaled_system(CacheLevel.L1, num_cores=8, scale=64)
        workload = get_workload("Oracle")
        total = accesses_for_run(workload, system, measure_accesses=1000)
        assert total == workload.recommended_warmup(system) + 1000
        assert accesses_for_run(workload, system, 1000, warmup_accesses=50) == 1050
