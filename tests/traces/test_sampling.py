"""SMARTS-style systematic sampling: measured-window-only statistics."""

import pytest

from repro.config import CacheLevel
from repro.experiments.common import cuckoo_factory, run_workload, scaled_system
from repro.traces import SampledTrace, TraceRecorder, TraceReplayWorkload, accesses_for_run
from repro.workloads.suite import get_workload


def _recorded_replay(tmp_path, accesses=6000, name="Oracle", cores=8, scale=64):
    system = scaled_system(CacheLevel.L1, num_cores=cores, scale=scale)
    workload = get_workload(name)
    path = tmp_path / f"{name}.npz"
    TraceRecorder().record(workload, system, path, accesses, seed=0, scale=scale)
    return TraceReplayWorkload(path), system


class TestSampledRuns:
    def test_counts_windows_and_measured_accesses(self, tmp_path):
        replay, system = _recorded_replay(tmp_path, accesses=6000)
        sampled = SampledTrace(replay, measure_window=500, skip_window=1000).run(
            system, cuckoo_factory(system)
        )
        # 6000 accesses = 4 full (1000 skip + 500 measure) windows.
        assert sampled.windows == 4
        assert sampled.measured_accesses == 2000
        assert sampled.result.accesses == 2000
        assert sampled.sampled_fraction == pytest.approx(1 / 3)

    def test_max_windows_budget(self, tmp_path):
        replay, system = _recorded_replay(tmp_path, accesses=6000)
        sampled = SampledTrace(
            replay, measure_window=500, skip_window=500, max_windows=2
        ).run(system, cuckoo_factory(system))
        assert sampled.windows == 2
        assert sampled.measured_accesses == 1000

    def test_partial_final_window_is_discarded(self, tmp_path):
        replay, system = _recorded_replay(tmp_path, accesses=2600)
        sampled = SampledTrace(replay, measure_window=1000, skip_window=0).run(
            system, cuckoo_factory(system)
        )
        # 2600 accesses: two complete 1000-access windows, 600 dropped.
        assert sampled.windows == 2
        assert sampled.measured_accesses == 2000

    def test_zero_skip_sampling_matches_continuous_counters(self, tmp_path):
        """With no skipped accesses, merged window counters equal a plain run.

        Sampling resets the statistics at each window boundary and merges
        the per-window deltas; with ``skip_window=0`` over the whole trace
        that sum telescopes back to the continuous (warmup=0) totals.
        """
        replay, system = _recorded_replay(tmp_path, accesses=4000)
        sampled = SampledTrace(replay, measure_window=1000, skip_window=0).run(
            system, cuckoo_factory(system)
        )
        continuous = run_workload(
            replay, system, cuckoo_factory(system),
            measure_accesses=4000, warmup_accesses=0, seed=0,
        ).result
        merged = sampled.result.directory_stats
        reference = continuous.directory_stats
        assert merged.insertions == reference.insertions
        assert merged.insertion_attempts == reference.insertion_attempts
        assert merged.forced_invalidations == reference.forced_invalidations
        assert merged.sharer_additions == reference.sharer_additions
        assert merged.attempt_histogram == reference.attempt_histogram
        assert sampled.result.traffic.total_messages == continuous.traffic.total_messages

    def test_skipped_windows_are_excluded_from_stats(self, tmp_path):
        """Sampled counters cover only the measured fraction of the trace."""
        replay, system = _recorded_replay(tmp_path, accesses=6000)
        full = run_workload(
            replay, system, cuckoo_factory(system),
            measure_accesses=6000, warmup_accesses=0, seed=0,
        ).result
        sampled = SampledTrace(replay, measure_window=500, skip_window=1000).run(
            system, cuckoo_factory(system)
        )
        assert sampled.result.accesses < full.accesses
        # Lookups happen on misses only; the sampled count must be well
        # below the full-trace count (skipped windows contribute nothing).
        assert (
            sampled.result.directory_stats.lookups
            < full.directory_stats.lookups
        )

    def test_per_slice_stats_exclude_skip_windows(self, tmp_path):
        """Per-slice snapshots must not alias live stats mutated by skips.

        Regression test: the per-slice list must agree with the merged
        directory stats even when skip windows keep running after a
        measured window ends.
        """
        replay, system = _recorded_replay(tmp_path, accesses=6000)
        sampled = SampledTrace(replay, measure_window=500, skip_window=1000).run(
            system, cuckoo_factory(system)
        )
        merged = sampled.result.directory_stats
        per_slice = sampled.result.per_slice_stats
        assert sum(s.lookups for s in per_slice) == merged.lookups
        assert sum(s.insertions for s in per_slice) == merged.insertions
        assert (
            sum(s.forced_invalidations for s in per_slice)
            == merged.forced_invalidations
        )

    def test_skipped_windows_still_warm_state(self, tmp_path):
        """Functional warming: skipped accesses advance cache/directory state.

        The first measured window of a skip>0 run starts from a warm
        system, so its hit rate beats a cold-start run over the same
        window length.
        """
        replay, system = _recorded_replay(tmp_path, accesses=6000)
        warm = SampledTrace(
            replay, measure_window=500, skip_window=2000, max_windows=1
        ).run(system, cuckoo_factory(system))
        cold = run_workload(
            replay, system, cuckoo_factory(system),
            measure_accesses=500, warmup_accesses=0, seed=0,
        ).result
        assert warm.result.cache_hit_rate > cold.cache_hit_rate

    def test_validation(self, tmp_path):
        replay, _system_ = _recorded_replay(tmp_path, accesses=1000)
        with pytest.raises(ValueError):
            SampledTrace(replay, measure_window=0, skip_window=10)
        with pytest.raises(ValueError):
            SampledTrace(replay, measure_window=10, skip_window=-1)
        with pytest.raises(ValueError):
            SampledTrace(replay, measure_window=10, skip_window=0, max_windows=0)


class TestSimulatorEntryPoint:
    def test_run_sampled_on_live_generator(self):
        """Sampling also works straight off a live (infinite) generator."""
        from repro.coherence.simulator import TraceSimulator
        from repro.coherence.system import TiledCMP

        system_config = scaled_system(CacheLevel.L1, num_cores=4, scale=64)
        system = TiledCMP(system_config, cuckoo_factory(system_config))
        simulator = TraceSimulator(system)
        chunks = get_workload("DB2").trace_chunks(system_config, seed=0)
        result, windows = simulator.run_sampled(
            chunks, measure_window=300, skip_window=300, max_windows=3
        )
        assert windows == 3
        assert result.accesses == 900
        assert result.directory_stats.lookups > 0

    def test_run_sampled_empty_stream(self):
        from repro.coherence.simulator import TraceSimulator
        from repro.coherence.system import TiledCMP

        system_config = scaled_system(CacheLevel.L1, num_cores=4, scale=64)
        system = TiledCMP(system_config, cuckoo_factory(system_config))
        result, windows = TraceSimulator(system).run_sampled(
            iter(()), measure_window=10, skip_window=10
        )
        assert windows == 0
        assert result.accesses == 0
        assert result.directory_stats.lookups == 0
