"""Multi-programmed mixes: remap invariants, interleave, determinism."""

import itertools

import pytest

from repro.config import CacheLevel
from repro.experiments.common import cuckoo_factory, run_workload, scaled_system
from repro.traces import (
    PROGRAM_STRIDE_BITS,
    MixWorkload,
    TraceRecorder,
    TraceReplayWorkload,
    parse_mix,
)
from repro.workloads.suite import get_workload


def _system(cores=8, scale=64, level=CacheLevel.L1):
    return scaled_system(level, num_cores=cores, scale=scale)


def _collect(mix, system, count, seed=0):
    cores, addresses, writes, instrs = [], [], [], []
    for chunk in mix.trace_chunks(system, seed=seed):
        cores.extend(chunk[0])
        addresses.extend(chunk[1])
        writes.extend(chunk[2])
        instrs.extend(chunk[3])
        if len(cores) >= count:
            break
    return cores[:count], addresses[:count], writes[:count], instrs[:count]


class TestParsing:
    def test_parses_names_cores_and_order(self):
        mix = parse_mix("4xApache+4xocean")
        assert mix.name == "4xApache+4xocean"
        assert [(w.name, n) for w, n in mix.components] == [("Apache", 4), ("ocean", 4)]
        assert mix.total_cores == 8
        assert mix.core_group(0) == (0, 4)
        assert mix.core_group(1) == (4, 8)

    def test_unknown_program_lists_valid_names(self):
        with pytest.raises(ValueError, match="DB2.*ocean"):
            parse_mix("4xNotAWorkload+4xocean")

    def test_bad_grammar_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            parse_mix("Apache+ocean")
        with pytest.raises(ValueError, match="empty"):
            parse_mix("  ")

    def test_non_power_of_two_component_rejected(self):
        with pytest.raises(ValueError, match="powers of two"):
            parse_mix("3xApache+5xocean")

    def test_trace_reference_component(self, tmp_path):
        system = _system(cores=4)
        path = tmp_path / "oracle.npz"
        TraceRecorder().record(get_workload("Oracle"), system, path, 1000, scale=64)
        mix = parse_mix(f"4x@{path}+4xocean")
        assert isinstance(mix.components[0][0], TraceReplayWorkload)
        assert mix.components[0][0].name == "Oracle"


class TestRemapInvariants:
    def test_no_cross_program_block_collisions(self):
        """Address bands keep every program's blocks disjoint (satellite)."""
        mix = parse_mix("4xApache+2xOracle+2xocean")
        system = _system(cores=8)
        cores, addresses, _writes, _instrs = _collect(mix, system, 6000)
        groups = [mix.core_group(i) for i in range(3)]
        blocks_per_program = [set() for _ in groups]
        for core, address in zip(cores, addresses):
            program = address >> PROGRAM_STRIDE_BITS
            start, end = groups[program]
            # Core remap: the issuing core must lie in the program's group.
            assert start <= core < end
            blocks_per_program[program].add(address // 64)
        for a, b in itertools.combinations(blocks_per_program, 2):
            assert not (a & b)

    def test_component_zero_stream_is_the_solo_stream(self):
        """Program 0 sits at band 0: its accesses equal a solo run's stream."""
        apache = get_workload("Apache")
        mix = MixWorkload([(apache, 4), (get_workload("ocean"), 4)])
        system = _system(cores=8)
        cores, addresses, writes, instrs = _collect(mix, system, 4000, seed=5)
        mixed = [
            (c, a, w, i)
            for c, a, w, i in zip(cores, addresses, writes, instrs)
            if a >> PROGRAM_STRIDE_BITS == 0
        ]
        solo_seed = MixWorkload.component_seed(5, 0)
        solo = []
        subsystem = system.with_cores(4)
        for chunk in apache.trace_chunks(subsystem, seed=solo_seed):
            solo.extend(zip(*chunk))
            if len(solo) >= len(mixed):
                break
        assert mixed == solo[: len(mixed)]

    def test_proportional_interleave(self):
        """A 4-core program issues twice as often as a 2-core one, finely."""
        mix = parse_mix("4xApache+2xOracle+2xQry17")
        system = _system(cores=8)
        _cores, addresses, _w, _i = _collect(mix, system, 800)
        programs = [a >> PROGRAM_STRIDE_BITS for a in addresses]
        # Exact proportions per round of 8 accesses.
        for start in range(0, 800, 8):
            window = programs[start : start + 8]
            assert window.count(0) == 4
            assert window.count(1) == 2
            assert window.count(2) == 2
        # Finely interleaved: program 0 never bursts more than twice in a row.
        longest = max(len(list(g)) for k, g in itertools.groupby(programs) if k == 0)
        assert longest <= 2

    def test_streams_are_deterministic(self):
        system = _system(cores=8)
        first = _collect(parse_mix("4xApache+4xocean"), system, 3000, seed=1)
        second = _collect(parse_mix("4xApache+4xocean"), system, 3000, seed=1)
        assert first == second

    def test_repeated_program_gets_distinct_streams(self):
        mix = parse_mix("4xApache+4xApache")
        system = _system(cores=8)
        _cores, addresses, _w, _i = _collect(mix, system, 2000)
        left = [a & ((1 << PROGRAM_STRIDE_BITS) - 1) for a in addresses
                if a >> PROGRAM_STRIDE_BITS == 0]
        right = [a & ((1 << PROGRAM_STRIDE_BITS) - 1) for a in addresses
                 if a >> PROGRAM_STRIDE_BITS == 1]
        assert left[:500] != right[:500]  # distinct per-program seeds

    def test_core_count_mismatch_rejected(self):
        mix = parse_mix("4xApache+4xocean")
        with pytest.raises(ValueError, match="spans 8 cores"):
            next(iter(mix.trace_chunks(_system(cores=16))))


class TestMixSimulation:
    def test_mix_runs_through_the_simulator(self):
        mix = parse_mix("4xApache+4xocean")
        system = _system(cores=8)
        run = run_workload(
            mix, system, cuckoo_factory(system), measure_accesses=1500, seed=0
        )
        assert run.result.accesses == 1500
        assert run.workload == "4xApache+4xocean"
        assert 0.0 < run.occupancy_vs_worst_case <= 1.5

    def test_mix_of_replays_matches_mix_of_live_components(self, tmp_path):
        """Trace-backed components reproduce the live mix bit-identically."""
        system = _system(cores=8)
        subsystem = system.with_cores(4)
        paths = {}
        for index, name in enumerate(("Apache", "ocean")):
            seed = MixWorkload.component_seed(0, index)
            paths[name] = tmp_path / f"{name}.npz"
            TraceRecorder().record(
                get_workload(name), subsystem, paths[name], 8000, seed=seed, scale=64
            )
        live_mix = parse_mix("4xApache+4xocean")
        replay_mix = parse_mix(f"4x@{paths['Apache']}+4x@{paths['ocean']}")
        live = _collect(live_mix, system, 6000, seed=0)
        replayed = _collect(replay_mix, system, 6000, seed=0)
        assert live == replayed

    def test_finite_replay_component_ends_the_mix(self, tmp_path):
        system = _system(cores=8)
        subsystem = system.with_cores(4)
        path = tmp_path / "short.npz"
        TraceRecorder().record(
            get_workload("Oracle"), subsystem, path, 500,
            seed=MixWorkload.component_seed(0, 0), scale=64,
        )
        mix = parse_mix(f"4x@{path}+4xocean")
        total = sum(len(chunk[0]) for chunk in mix.trace_chunks(system, seed=0))
        # The 500-access component supplies half of every round of 8.
        assert total == 1000

    def test_mix_trace_fingerprint_covers_replay_components(self, tmp_path):
        system = _system(cores=8)
        subsystem = system.with_cores(4)
        path = tmp_path / "oracle.npz"
        TraceRecorder().record(
            get_workload("Oracle"), subsystem, path, 1000,
            seed=MixWorkload.component_seed(0, 0), scale=64,
        )
        live_only = parse_mix("4xApache+4xocean")
        assert live_only.trace_fingerprint() is None
        traced = parse_mix(f"4x@{path}+4xocean")
        first = traced.trace_fingerprint()
        assert first is not None
        # Re-recording the file changes the combined fingerprint.
        TraceRecorder().record(
            get_workload("Oracle"), subsystem, path, 1200,
            seed=MixWorkload.component_seed(0, 0), scale=64,
        )
        assert parse_mix(f"4x@{path}+4xocean").trace_fingerprint() != first

    def test_execute_spec_rejects_stale_mix_fingerprint(self, tmp_path):
        from repro.engine.execute import execute_spec
        from repro.engine.spec import RunSpec

        system = _system(cores=8)
        subsystem = system.with_cores(4)
        path = tmp_path / "oracle.npz"
        TraceRecorder().record(
            get_workload("Oracle"), subsystem, path, 4000,
            seed=MixWorkload.component_seed(0, 0), scale=64,
        )
        mix_spec = f"4x@{path}+4xocean"
        spec = RunSpec(
            workload=mix_spec, mix=mix_spec, num_cores=8, scale=64,
            measure_accesses=500,
            trace_fingerprint=parse_mix(mix_spec).trace_fingerprint(),
        )
        execute_spec(spec)  # fingerprint matches
        TraceRecorder().record(  # re-record: contents change
            get_workload("Oracle"), subsystem, path, 4100,
            seed=MixWorkload.component_seed(0, 0), scale=64,
        )
        with pytest.raises(ValueError, match="re-recorded"):
            execute_spec(spec)

    def test_execute_spec_rejects_scale_mismatched_mix_component(self, tmp_path):
        from repro.engine.execute import execute_spec
        from repro.engine.spec import RunSpec

        subsystem = _system(cores=4, scale=16)
        path = tmp_path / "oracle-s16.npz"
        TraceRecorder().record(
            get_workload("Oracle"), subsystem, path, 4000,
            seed=MixWorkload.component_seed(0, 0), scale=16,
        )
        mix_spec = f"4x@{path}+4xocean"
        spec = RunSpec(
            workload=mix_spec, mix=mix_spec, num_cores=8, scale=64,
            measure_accesses=500,
        )
        with pytest.raises(ValueError, match="scale"):
            execute_spec(spec)

    def test_execute_spec_rejects_too_short_mix_component(self, tmp_path):
        from repro.engine.execute import execute_spec
        from repro.engine.spec import RunSpec

        subsystem = _system(cores=4)
        path = tmp_path / "tiny.npz"
        TraceRecorder().record(
            get_workload("Oracle"), subsystem, path, 300,
            seed=MixWorkload.component_seed(0, 0), scale=64,
        )
        mix_spec = f"4x@{path}+4xocean"
        spec = RunSpec(
            workload=mix_spec, mix=mix_spec, num_cores=8, scale=64,
            measure_accesses=5000,
        )
        with pytest.raises(ValueError, match="share of the run"):
            execute_spec(spec)

    def test_engine_executes_and_caches_mix_specs(self, tmp_path):
        """`repro-run mix` path: engine run with cached re-run store hits."""
        from repro.engine.runner import ParallelRunner
        from repro.engine.spec import RunSpec
        from repro.engine.store import ResultStore

        spec = RunSpec(
            workload="4xApache+4xocean",
            mix="4xApache+4xocean",
            num_cores=8,
            scale=64,
            measure_accesses=800,
        )
        store = ResultStore(tmp_path / "store.jsonl")
        runner = ParallelRunner(workers=1, store=store)
        first = runner.run([spec])
        assert first.ok and first.simulated == 1
        second = runner.run([spec])
        assert second.ok and second.cached == 1
        assert store.hits == 1
        assert first.result_for(spec).to_dict() == second.result_for(spec).to_dict()
