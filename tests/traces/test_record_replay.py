"""Record→replay fidelity: replay must be bit-identical to live generation.

The golden-equivalence guarantee of the trace subsystem: for every Table 2
workload, recording the stream once and replaying it through
:func:`~repro.experiments.common.run_workload` produces *exactly* the
:class:`~repro.coherence.simulator.SimulationResult` live generation
produces — every directory counter, the full attempt histogram, traffic,
hit rates and each occupancy sample.  Runs are scaled far down so the
whole suite stays fast.
"""

import pytest

from repro.config import CacheLevel
from repro.experiments.common import cuckoo_factory, run_workload, scaled_system
from repro.traces import TraceRecorder, TraceReplayWorkload, accesses_for_run
from repro.workloads.suite import WORKLOAD_NAMES, get_workload

SCALE = 64
CORES = 8
MEASURE = 1200
SEED = 0


def _assert_results_identical(live, replayed):
    a, b = live.result, replayed.result
    assert a.accesses == b.accesses
    assert a.directory_stats == b.directory_stats  # every counter + histogram
    assert a.per_slice_stats == b.per_slice_stats
    assert a.traffic == b.traffic
    assert a.cache_hit_rate == b.cache_hit_rate
    assert a.average_occupancy == b.average_occupancy
    assert a.occupancy_samples == b.occupancy_samples
    assert live.occupancy_vs_worst_case == replayed.occupancy_vs_worst_case


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_replay_is_bit_identical_to_live_generation(name, tmp_path):
    system = scaled_system(CacheLevel.L1, num_cores=CORES, scale=SCALE)
    workload = get_workload(name)
    path = tmp_path / f"{name}.npz"
    total = accesses_for_run(workload, system, MEASURE)
    TraceRecorder().record(workload, system, path, total, seed=SEED, scale=SCALE)

    live = run_workload(
        workload, system, cuckoo_factory(system), measure_accesses=MEASURE, seed=SEED
    )
    replayed = run_workload(
        TraceReplayWorkload(path),
        system,
        cuckoo_factory(system),
        measure_accesses=MEASURE,
        seed=SEED,
    )
    _assert_results_identical(live, replayed)


def test_replay_is_bit_identical_on_private_l2_too(tmp_path):
    system = scaled_system(CacheLevel.L2, num_cores=4, scale=64)
    workload = get_workload("ocean")
    path = tmp_path / "ocean-l2.npz"
    total = accesses_for_run(workload, system, 800)
    TraceRecorder().record(workload, system, path, total, seed=SEED, scale=64)
    live = run_workload(
        workload, system, cuckoo_factory(system), measure_accesses=800, seed=SEED
    )
    replayed = run_workload(
        TraceReplayWorkload(path), system, cuckoo_factory(system),
        measure_accesses=800, seed=SEED,
    )
    _assert_results_identical(live, replayed)


class TestReplayValidation:
    def _record(self, tmp_path):
        system = scaled_system(CacheLevel.L1, num_cores=CORES, scale=SCALE)
        workload = get_workload("Oracle")
        path = tmp_path / "oracle.npz"
        TraceRecorder().record(workload, system, path, 2000, seed=SEED, scale=SCALE)
        return path

    def test_wrong_core_count_rejected(self, tmp_path):
        path = self._record(tmp_path)
        wrong = scaled_system(CacheLevel.L1, num_cores=16, scale=SCALE)
        with pytest.raises(ValueError, match="cores"):
            next(iter(TraceReplayWorkload(path).trace_chunks(wrong)))

    def test_wrong_seed_rejected(self, tmp_path):
        path = self._record(tmp_path)
        system = scaled_system(CacheLevel.L1, num_cores=CORES, scale=SCALE)
        with pytest.raises(ValueError, match="seed"):
            next(iter(TraceReplayWorkload(path).trace_chunks(system, seed=7)))

    def test_replay_workload_carries_recorded_identity(self, tmp_path):
        path = self._record(tmp_path)
        replay = TraceReplayWorkload(path)
        assert replay.name == "Oracle"
        assert replay.category.value == "OLTP"
        assert replay.num_accesses == 2000


class TestEngineIntegration:
    def test_execute_spec_replays_trace_identically(self, tmp_path):
        """The engine's trace path reproduces the live-generation RunResult."""
        from repro.engine.execute import execute_spec
        from repro.engine.spec import RunSpec
        from repro.traces.recorder import TraceRecorder

        live_spec = RunSpec(
            workload="Oracle",
            tracked_level="L1",
            num_cores=CORES,
            scale=SCALE,
            measure_accesses=MEASURE,
            seed=SEED,
        )
        path = tmp_path / "oracle.npz"
        TraceRecorder().record_for_spec(live_spec, path)
        trace_spec = RunSpec.from_dict(
            {**live_spec.to_dict(), "trace": str(path)}
        )
        live = execute_spec(live_spec).to_dict()
        replayed = execute_spec(trace_spec).to_dict()
        live.pop("elapsed_seconds")
        replayed.pop("elapsed_seconds")
        live.pop("spec")
        replayed.pop("spec")
        assert live == replayed

    def test_execute_spec_rejects_mismatched_trace(self, tmp_path):
        from repro.engine.execute import execute_spec
        from repro.engine.spec import RunSpec
        from repro.traces.recorder import TraceRecorder

        base = RunSpec(
            workload="Oracle", num_cores=CORES, scale=SCALE,
            measure_accesses=500, seed=SEED,
        )
        path = tmp_path / "oracle.npz"
        TraceRecorder().record_for_spec(base, path)
        wrong_name = RunSpec.from_dict(
            {**base.to_dict(), "workload": "Apache", "trace": str(path)}
        )
        with pytest.raises(ValueError, match="does not match"):
            execute_spec(wrong_name)
        wrong_seed = RunSpec.from_dict(
            {**base.to_dict(), "seed": 9, "trace": str(path)}
        )
        with pytest.raises(ValueError, match="seed"):
            execute_spec(wrong_seed)

    def test_execute_spec_rejects_mismatched_scale(self, tmp_path):
        from repro.engine.execute import execute_spec
        from repro.engine.spec import RunSpec
        from repro.traces.recorder import TraceRecorder

        base = RunSpec(
            workload="Oracle", num_cores=CORES, scale=SCALE,
            measure_accesses=500, seed=SEED,
        )
        path = tmp_path / "oracle.npz"
        TraceRecorder().record_for_spec(base, path)
        wrong_scale = RunSpec.from_dict(
            {**base.to_dict(), "scale": SCALE * 2, "trace": str(path)}
        )
        with pytest.raises(ValueError, match="scale"):
            execute_spec(wrong_scale)

    def test_rerecorded_trace_changes_key_and_fails_stale_fingerprint(self, tmp_path):
        """Content fingerprints key cached results to recording contents."""
        from repro.engine.execute import execute_spec
        from repro.engine.spec import RunSpec
        from repro.traces.format import TraceFile
        from repro.traces.recorder import TraceRecorder

        base = RunSpec(
            workload="Oracle", num_cores=CORES, scale=SCALE,
            measure_accesses=500, seed=SEED,
        )
        path = tmp_path / "oracle.npz"
        TraceRecorder().record_for_spec(base, path)
        first_print = TraceFile(path).header.fingerprint
        spec = RunSpec.from_dict(
            {**base.to_dict(), "trace": str(path), "trace_fingerprint": first_print}
        )
        execute_spec(spec)  # matches: runs fine

        # Re-record the same path with a longer window: contents change.
        TraceRecorder().record_for_spec(base, path, num_accesses=2500)
        second_print = TraceFile(path).header.fingerprint
        assert second_print != first_print
        fresh = RunSpec.from_dict(
            {**base.to_dict(), "trace": str(path), "trace_fingerprint": second_print}
        )
        assert fresh.key() != spec.key()  # new recording, new cache address
        with pytest.raises(ValueError, match="contents changed"):
            execute_spec(spec)  # the stale spec no longer silently runs

    def test_execute_spec_rejects_too_short_trace(self, tmp_path):
        from repro.engine.execute import execute_spec
        from repro.engine.spec import RunSpec
        from repro.traces.recorder import TraceRecorder

        base = RunSpec(
            workload="Oracle", num_cores=CORES, scale=SCALE,
            measure_accesses=500, seed=SEED,
        )
        path = tmp_path / "short.npz"
        TraceRecorder().record_for_spec(base, path)
        hungrier = RunSpec.from_dict(
            {**base.to_dict(), "measure_accesses": 50_000, "trace": str(path)}
        )
        with pytest.raises(ValueError, match="holds"):
            execute_spec(hungrier)
