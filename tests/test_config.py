"""Tests for the system/directory configuration objects (Table 1)."""

import math

import pytest

from repro.config import (
    PAPER_EVENT_MIX,
    PRIVATE_L2_16CORE,
    SHARED_L2_16CORE,
    CacheConfig,
    CacheLevel,
    DirectoryConfig,
    SystemConfig,
)


class TestCacheConfig:
    def test_paper_l1_geometry(self):
        l1 = CacheConfig(size_bytes=64 * 1024, associativity=2)
        assert l1.num_frames == 1024
        assert l1.num_sets == 512
        assert l1.block_offset_bits == 6

    def test_paper_l2_geometry(self):
        l2 = CacheConfig(size_bytes=1024 * 1024, associativity=16)
        assert l2.num_frames == 16384
        assert l2.num_sets == 1024

    def test_tag_bits_accounts_for_index_and_offset(self):
        l2 = CacheConfig(size_bytes=1024 * 1024, associativity=16)
        assert l2.tag_bits(48) == 48 - 6 - 10

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, associativity=2, block_bytes=48)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0, associativity=2)

    def test_rejects_zero_associativity(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, associativity=0)

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, associativity=3)

    def test_frames_equal_sets_times_ways(self):
        config = CacheConfig(size_bytes=32 * 1024, associativity=4)
        assert config.num_frames == config.num_sets * config.associativity


class TestSystemConfig:
    def test_shared_l2_tracks_two_caches_per_core(self):
        assert SHARED_L2_16CORE.caches_per_core == 2
        assert SHARED_L2_16CORE.num_tracked_caches == 32

    def test_private_l2_tracks_one_cache_per_core(self):
        assert PRIVATE_L2_16CORE.caches_per_core == 1
        assert PRIVATE_L2_16CORE.num_tracked_caches == 16

    def test_shared_tracked_cache_is_l1(self):
        assert SHARED_L2_16CORE.tracked_cache_config is SHARED_L2_16CORE.l1_config

    def test_private_tracked_cache_is_l2(self):
        assert PRIVATE_L2_16CORE.tracked_cache_config is PRIVATE_L2_16CORE.l2_config

    def test_shared_frames_per_slice_matches_paper_1x_point(self):
        # 32 caches x 1024 frames / 16 slices = 2048 = the 4x512 geometry.
        assert SHARED_L2_16CORE.tracked_frames_per_slice == 2048

    def test_private_frames_per_slice_matches_paper_1x_point(self):
        # 16 caches x 16384 frames / 16 slices = 16384 = the 8x2048 geometry.
        assert PRIVATE_L2_16CORE.tracked_frames_per_slice == 16384

    def test_one_directory_slice_per_core(self):
        assert SHARED_L2_16CORE.num_directory_slices == 16

    def test_with_cores_scales_only_core_count(self):
        bigger = SHARED_L2_16CORE.with_cores(64)
        assert bigger.num_cores == 64
        assert bigger.l1_config == SHARED_L2_16CORE.l1_config
        assert bigger.tracked_frames_per_slice == SHARED_L2_16CORE.tracked_frames_per_slice

    def test_rejects_non_power_of_two_cores(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=12)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0)

    def test_block_bytes_comes_from_l1(self):
        assert SHARED_L2_16CORE.block_bytes == 64


class TestDirectoryConfig:
    def test_capacity_is_ways_times_sets(self):
        config = DirectoryConfig(ways=4, sets=512)
        assert config.capacity == 2048

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            DirectoryConfig(ways=0, sets=512)
        with pytest.raises(ValueError):
            DirectoryConfig(ways=4, sets=0)
        with pytest.raises(ValueError):
            DirectoryConfig(ways=4, sets=16, max_insertion_attempts=0)

    def test_for_provisioning_matches_paper_shared_1x(self):
        config = DirectoryConfig.for_provisioning(SHARED_L2_16CORE, ways=4, provisioning=1.0)
        assert config.sets == 512
        assert config.capacity == 2048

    def test_for_provisioning_matches_paper_private_1_5x(self):
        config = DirectoryConfig.for_provisioning(
            PRIVATE_L2_16CORE, ways=3, provisioning=1.5
        )
        assert config.sets == 8192

    def test_for_provisioning_matches_paper_shared_2x(self):
        config = DirectoryConfig.for_provisioning(SHARED_L2_16CORE, ways=4, provisioning=2.0)
        assert config.sets == 1024

    def test_for_provisioning_rounds_to_power_of_two(self):
        config = DirectoryConfig.for_provisioning(SHARED_L2_16CORE, ways=3, provisioning=1.5)
        assert config.sets & (config.sets - 1) == 0

    def test_for_provisioning_rejects_non_positive(self):
        with pytest.raises(ValueError):
            DirectoryConfig.for_provisioning(SHARED_L2_16CORE, ways=4, provisioning=0)


class TestPaperEventMix:
    def test_fractions_sum_to_one(self):
        assert math.isclose(sum(PAPER_EVENT_MIX.values()), 1.0, abs_tol=1e-9)

    def test_contains_all_five_events(self):
        assert set(PAPER_EVENT_MIX) == {
            "insert_tag",
            "add_sharer",
            "remove_sharer",
            "remove_tag",
            "invalidate_all",
        }

    def test_values_match_paper_footnote(self):
        assert PAPER_EVENT_MIX["insert_tag"] == pytest.approx(0.235)
        assert PAPER_EVENT_MIX["add_sharer"] == pytest.approx(0.269)
        assert PAPER_EVENT_MIX["invalidate_all"] == pytest.approx(0.012)
