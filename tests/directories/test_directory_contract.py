"""Contract tests every directory organization must satisfy.

The coherence system treats all organizations interchangeably, so the
behaviour it depends on is verified here for each of them, including the
Cuckoo directory:

* a sharer that was added (and not removed/invalidated) is always reported;
* a sharer is never reported for a cache that never held the block;
* entries disappear once the last sharer leaves;
* any entry the organization drops to make room is reported through
  ``UpdateResult.invalidations``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.core.cuckoo_directory import CuckooDirectory
from repro.directories.duplicate_tag import DuplicateTagDirectory
from repro.directories.in_cache import InCacheDirectory
from repro.directories.skewed import SkewedDirectory
from repro.directories.sparse import SparseDirectory
from repro.directories.tagless import TaglessDirectory

NUM_CACHES = 8
CACHE_CONFIG = CacheConfig(size_bytes=8 * 1024, associativity=2)  # 128 frames
L2_CONFIG = CacheConfig(size_bytes=32 * 1024, associativity=16)


def build_directory(name: str):
    """Generously sized instances so the contract tests do not overflow."""
    if name == "cuckoo":
        return CuckooDirectory(num_caches=NUM_CACHES, num_sets=256, num_ways=4)
    if name == "sparse":
        return SparseDirectory(num_caches=NUM_CACHES, num_sets=128, num_ways=8)
    if name == "skewed":
        return SkewedDirectory(num_caches=NUM_CACHES, num_sets=256, num_ways=4)
    if name == "duplicate_tag":
        return DuplicateTagDirectory(num_caches=NUM_CACHES, cache_config=CACHE_CONFIG)
    if name == "in_cache":
        return InCacheDirectory(num_caches=NUM_CACHES, l2_slice_config=L2_CONFIG)
    if name == "tagless":
        return TaglessDirectory(
            num_caches=NUM_CACHES, cache_config=CACHE_CONFIG, filter_bits=256
        )
    raise ValueError(name)


ORGANIZATIONS = ["cuckoo", "sparse", "skewed", "duplicate_tag", "in_cache", "tagless"]


@pytest.mark.parametrize("organization", ORGANIZATIONS)
class TestDirectoryContract:
    def test_lookup_miss_on_empty(self, organization):
        directory = build_directory(organization)
        assert not directory.lookup(0x123).found
        assert directory.entry_count() == 0

    def test_added_sharer_is_reported(self, organization):
        directory = build_directory(organization)
        directory.add_sharer(0x123, 2)
        result = directory.lookup(0x123)
        assert result.found
        assert 2 in result.sharers

    def test_multiple_sharers_accumulate(self, organization):
        directory = build_directory(organization)
        for cache in (0, 3, 7):
            directory.add_sharer(0x55, cache)
        sharers = directory.lookup(0x55).sharers
        assert {0, 3, 7} <= set(sharers)

    def test_distinct_blocks_have_independent_sharers(self, organization):
        directory = build_directory(organization)
        directory.add_sharer(0x10, 1)
        directory.add_sharer(0x20, 2)
        assert 2 not in directory.lookup(0x10).sharers or organization == "tagless"
        assert 1 in directory.lookup(0x10).sharers
        assert 2 in directory.lookup(0x20).sharers

    def test_removed_last_sharer_frees_entry(self, organization):
        directory = build_directory(organization)
        directory.add_sharer(0x77, 4)
        directory.remove_sharer(0x77, 4)
        assert directory.entry_count() == 0

    def test_remove_is_noop_for_unknown_block(self, organization):
        directory = build_directory(organization)
        directory.remove_sharer(0x999, 0)
        assert directory.entry_count() == 0

    def test_acquire_exclusive_leaves_only_writer(self, organization):
        directory = build_directory(organization)
        for cache in (0, 1, 2, 3):
            directory.add_sharer(0x88, cache)
        result = directory.acquire_exclusive(0x88, 2)
        assert {0, 1, 3} <= set(result.coherence_invalidations)
        assert 2 not in result.coherence_invalidations
        remaining = directory.lookup(0x88).sharers
        assert 2 in remaining
        for other in (0, 1, 3):
            # Inexact organizations may still conservatively report others,
            # but exact ones must not.
            if organization not in ("tagless",):
                assert other not in remaining

    def test_insertion_statistics_recorded(self, organization):
        directory = build_directory(organization)
        for block in range(10):
            directory.add_sharer(block, 0)
        stats = directory.stats
        assert stats.insertions == 10
        assert stats.average_insertion_attempts >= 1.0 or organization in (
            "duplicate_tag",
            "tagless",
        )

    def test_sharer_addition_not_counted_as_insertion(self, organization):
        directory = build_directory(organization)
        directory.add_sharer(0x5, 0)
        directory.add_sharer(0x5, 1)
        assert directory.stats.insertions == 1

    def test_entry_count_tracks_live_blocks(self, organization):
        directory = build_directory(organization)
        for block in range(20):
            directory.add_sharer(block, block % NUM_CACHES)
        assert directory.entry_count() >= 20 if organization == "duplicate_tag" else True
        for block in range(20):
            directory.remove_sharer(block, block % NUM_CACHES)
        assert directory.entry_count() == 0

    def test_occupancy_between_zero_and_one(self, organization):
        directory = build_directory(organization)
        for block in range(30):
            directory.add_sharer(block, 0)
        assert 0.0 <= directory.occupancy() <= 1.0

    def test_capacity_positive(self, organization):
        directory = build_directory(organization)
        assert directory.capacity > 0

    def test_rejects_invalid_cache_id(self, organization):
        directory = build_directory(organization)
        with pytest.raises(IndexError):
            directory.add_sharer(0x1, NUM_CACHES)

    def test_reset_stats_clears_counters(self, organization):
        directory = build_directory(organization)
        directory.add_sharer(0x9, 0)
        directory.reset_stats()
        assert directory.stats.insertions == 0
        assert directory.stats.lookups == 0


@pytest.mark.parametrize("organization", ORGANIZATIONS)
@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["add", "remove", "exclusive"]),
            st.integers(0, 30),
            st.integers(0, NUM_CACHES - 1),
        ),
        max_size=80,
    )
)
@settings(max_examples=30, deadline=None)
def test_property_directory_tracks_reference_sharer_sets(organization, operations):
    """Against a reference model, reported sharers are always a superset of
    the true sharers and (for exact organizations) exactly equal — provided
    capacity is never exceeded, which the generous sizing guarantees."""
    directory = build_directory(organization)
    reference = {}
    for op, block, cache in operations:
        if op == "add":
            directory.add_sharer(block, cache)
            reference.setdefault(block, set()).add(cache)
        elif op == "remove":
            directory.remove_sharer(block, cache)
            if block in reference:
                reference[block].discard(cache)
                if not reference[block]:
                    del reference[block]
        else:
            directory.acquire_exclusive(block, cache)
            reference[block] = {cache}
    for block, sharers in reference.items():
        reported = directory.lookup(block).sharers
        assert sharers <= set(reported)
        if organization not in ("tagless",):
            assert set(reported) == sharers
    # Blocks never touched stay untracked.
    assert not directory.lookup(10_000).found
