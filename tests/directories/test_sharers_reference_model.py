"""Property tests: bitmask sharer encodings vs a plain-``set`` reference.

The bitmask rewrite must be observationally identical to the original
set-backed implementation.  For each of the four encodings we drive random
add/remove/clear sequences against a reference model that tracks the true
members in a plain set and derives each encoding's invalidation semantics
independently, then assert after every operation that

* ``sharers()`` matches the reference encoding exactly,
* the reported invalidation targets are a superset of the true members,
* counts, membership, emptiness, iteration order and storage width agree.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.directories.sharers import (
    CoarseVector,
    FullBitVector,
    HierarchicalVector,
    LimitedPointer,
)

NUM_CACHES = 16

operations = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "clear"]),
        st.integers(0, NUM_CACHES - 1),
    ),
    max_size=80,
)


def _reference_coarse(members, num_pointers, region_size, num_caches):
    if len(members) <= num_pointers:
        return frozenset(members)
    covered = set()
    for cache_id in members:
        start = (cache_id // region_size) * region_size
        covered.update(range(start, min(start + region_size, num_caches)))
    return frozenset(covered)


def _reference_limited(members, num_pointers, num_caches):
    if len(members) > num_pointers:
        return frozenset(range(num_caches))
    return frozenset(members)


def _apply(model, reference, op, cache_id):
    if op == "add":
        model.add(cache_id)
        reference.add(cache_id)
    elif op == "remove":
        model.remove(cache_id)
        reference.discard(cache_id)
    else:
        model.clear()
        reference.clear()


def _check_common(model, reference):
    assert model.count() == len(reference)
    assert len(model) == len(reference)
    assert model.is_empty() == (not reference)
    assert model.exact_sharers() == frozenset(reference)
    assert list(model) == sorted(reference)
    assert model.member_mask() == sum(1 << c for c in reference)
    for cache_id in range(NUM_CACHES):
        assert model.contains(cache_id) == (cache_id in reference)
    # Invalidation fan-out never omits a true sharer.
    assert frozenset(reference) <= model.sharers()


@given(ops=operations)
@settings(max_examples=150, deadline=None)
def test_full_bit_vector_matches_reference(ops):
    model = FullBitVector(NUM_CACHES)
    reference = set()
    for op, cache_id in ops:
        _apply(model, reference, op, cache_id)
        _check_common(model, reference)
        assert model.sharers() == frozenset(reference)
        assert model.as_bits() == [
            1 if c in reference else 0 for c in range(NUM_CACHES)
        ]
    assert FullBitVector.storage_bits(NUM_CACHES) == NUM_CACHES


@given(ops=operations, num_pointers=st.integers(1, 4))
@settings(max_examples=150, deadline=None)
def test_coarse_vector_matches_reference(ops, num_pointers):
    model = CoarseVector(NUM_CACHES, num_pointers=num_pointers)
    reference = set()
    for op, cache_id in ops:
        _apply(model, reference, op, cache_id)
        _check_common(model, reference)
        expected = _reference_coarse(
            reference, num_pointers, model.region_size, NUM_CACHES
        )
        assert model.sharers() == expected
        assert model.is_coarse == (len(reference) > num_pointers)
    assert CoarseVector.storage_bits(NUM_CACHES, num_pointers=num_pointers) == (
        num_pointers * max(1, math.ceil(math.log2(NUM_CACHES)))
    )


@given(ops=operations, num_pointers=st.integers(1, 4))
@settings(max_examples=150, deadline=None)
def test_limited_pointer_matches_reference(ops, num_pointers):
    model = LimitedPointer(NUM_CACHES, num_pointers=num_pointers)
    reference = set()
    for op, cache_id in ops:
        _apply(model, reference, op, cache_id)
        _check_common(model, reference)
        assert model.sharers() == _reference_limited(
            reference, num_pointers, NUM_CACHES
        )
        assert model.is_broadcast == (len(reference) > num_pointers)
    assert LimitedPointer.storage_bits(NUM_CACHES, num_pointers=num_pointers) == (
        1 + num_pointers * max(1, math.ceil(math.log2(NUM_CACHES)))
    )


@given(ops=operations, num_groups=st.integers(1, NUM_CACHES))
@settings(max_examples=150, deadline=None)
def test_hierarchical_vector_matches_reference(ops, num_groups):
    model = HierarchicalVector(NUM_CACHES, num_groups=num_groups)
    reference = set()
    for op, cache_id in ops:
        _apply(model, reference, op, cache_id)
        _check_common(model, reference)
        assert model.sharers() == frozenset(reference)
        assert model.groups_in_use() == frozenset(
            c // model.group_size for c in reference
        )


@pytest.mark.parametrize(
    "cls", [FullBitVector, CoarseVector, LimitedPointer, HierarchicalVector]
)
def test_storage_width_is_stable_under_mutation(cls):
    """storage_bits is a class property; instances never change the width."""
    width = cls.storage_bits(NUM_CACHES)
    model = cls(NUM_CACHES)
    for cache_id in range(NUM_CACHES):
        model.add(cache_id)
        assert cls.storage_bits(NUM_CACHES) == width
    model.clear()
    assert cls.storage_bits(NUM_CACHES) == width
