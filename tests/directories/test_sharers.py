"""Tests for the sharer-set representations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.directories.sharers import (
    CoarseVector,
    FullBitVector,
    HierarchicalVector,
    LimitedPointer,
    make_sharer_set,
    sharer_format,
)

ALL_CLASSES = [FullBitVector, CoarseVector, LimitedPointer, HierarchicalVector]


@pytest.mark.parametrize("cls", ALL_CLASSES)
class TestCommonBehaviour:
    def test_starts_empty(self, cls):
        sharers = cls(16)
        assert sharers.is_empty()
        assert sharers.count() == 0
        assert sharers.sharers() == frozenset()

    def test_add_and_contains(self, cls):
        sharers = cls(16)
        sharers.add(3)
        assert sharers.contains(3)
        assert not sharers.is_empty()
        assert 3 in sharers.sharers()

    def test_remove_returns_to_empty(self, cls):
        sharers = cls(16)
        sharers.add(5)
        sharers.remove(5)
        assert sharers.is_empty()

    def test_remove_non_member_is_noop(self, cls):
        sharers = cls(16)
        sharers.add(1)
        sharers.remove(7)
        assert sharers.count() == 1

    def test_double_add_is_idempotent(self, cls):
        sharers = cls(16)
        sharers.add(2)
        sharers.add(2)
        assert sharers.count() == 1

    def test_clear(self, cls):
        sharers = cls(16)
        for cache in (0, 3, 9):
            sharers.add(cache)
        sharers.clear()
        assert sharers.is_empty()
        assert sharers.sharers() == frozenset()

    def test_sharers_is_superset_of_true_members(self, cls):
        """Inexact encodings may over-approximate but never drop a sharer."""
        sharers = cls(16)
        members = {1, 4, 7, 11, 14}
        for cache in members:
            sharers.add(cache)
        assert members <= set(sharers.sharers())

    def test_out_of_range_cache_rejected(self, cls):
        sharers = cls(8)
        with pytest.raises(IndexError):
            sharers.add(8)
        with pytest.raises(IndexError):
            sharers.remove(-1)

    def test_storage_bits_positive(self, cls):
        assert cls.storage_bits(16) > 0

    def test_iteration_yields_sorted_members(self, cls):
        sharers = cls(16)
        for cache in (9, 2, 5):
            sharers.add(cache)
        assert list(sharers) == [2, 5, 9]

    def test_len_matches_count(self, cls):
        sharers = cls(16)
        sharers.add(0)
        sharers.add(15)
        assert len(sharers) == sharers.count() == 2

    def test_rejects_zero_caches(self, cls):
        with pytest.raises(ValueError):
            cls(0)


class TestFullBitVector:
    def test_is_always_exact(self):
        sharers = FullBitVector(32)
        for cache in range(0, 32, 3):
            sharers.add(cache)
        assert sharers.is_exact
        assert sharers.spurious_invalidations() == 0

    def test_as_bits(self):
        sharers = FullBitVector(4)
        sharers.add(0)
        sharers.add(2)
        assert sharers.as_bits() == [1, 0, 1, 0]

    def test_storage_is_one_bit_per_cache(self):
        assert FullBitVector.storage_bits(128) == 128


class TestCoarseVector:
    def test_exact_below_pointer_limit(self):
        sharers = CoarseVector(16, num_pointers=2)
        sharers.add(3)
        sharers.add(9)
        assert not sharers.is_coarse
        assert sharers.is_exact

    def test_coarse_after_overflow(self):
        sharers = CoarseVector(16, num_pointers=2, vector_bits=4)
        for cache in (0, 5, 10):
            sharers.add(cache)
        assert sharers.is_coarse
        reported = sharers.sharers()
        assert {0, 5, 10} <= reported
        assert len(reported) >= 3

    def test_coarse_regions_cover_whole_region_of_each_sharer(self):
        sharers = CoarseVector(16, num_pointers=1, vector_bits=4)  # regions of 4
        sharers.add(1)
        sharers.add(9)
        reported = sharers.sharers()
        assert reported == frozenset({0, 1, 2, 3, 8, 9, 10, 11})

    def test_returns_to_exact_when_sharers_leave(self):
        sharers = CoarseVector(16, num_pointers=2)
        for cache in (0, 5, 10):
            sharers.add(cache)
        sharers.remove(10)
        assert not sharers.is_coarse
        assert sharers.sharers() == frozenset({0, 5})

    def test_storage_budget_is_two_log_caches(self):
        assert CoarseVector.storage_bits(1024) == 2 * 10
        assert CoarseVector.storage_bits(16) == 2 * 4

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CoarseVector(16, num_pointers=0)
        with pytest.raises(ValueError):
            CoarseVector(16, vector_bits=0)


class TestLimitedPointer:
    def test_exact_until_pointer_overflow(self):
        sharers = LimitedPointer(32, num_pointers=2)
        sharers.add(4)
        sharers.add(9)
        assert not sharers.is_broadcast
        assert sharers.sharers() == frozenset({4, 9})

    def test_broadcast_after_overflow(self):
        sharers = LimitedPointer(8, num_pointers=2)
        for cache in (0, 1, 2):
            sharers.add(cache)
        assert sharers.is_broadcast
        assert sharers.sharers() == frozenset(range(8))

    def test_spurious_invalidation_count(self):
        sharers = LimitedPointer(8, num_pointers=1)
        sharers.add(0)
        sharers.add(1)
        assert sharers.spurious_invalidations() == 6

    def test_storage_bits_includes_broadcast_bit(self):
        assert LimitedPointer.storage_bits(16, num_pointers=4) == 1 + 4 * 4


class TestHierarchicalVector:
    def test_sharers_are_exact(self):
        sharers = HierarchicalVector(64, num_groups=8)
        for cache in (0, 17, 63):
            sharers.add(cache)
        assert sharers.is_exact

    def test_groups_in_use(self):
        sharers = HierarchicalVector(64, num_groups=8)  # groups of 8
        sharers.add(0)
        sharers.add(9)
        sharers.add(10)
        assert sharers.groups_in_use() == frozenset({0, 1})

    def test_default_group_count_is_sqrt(self):
        sharers = HierarchicalVector(64)
        assert sharers.num_groups == 8

    def test_storage_bits_smaller_than_full_vector_at_scale(self):
        assert HierarchicalVector.storage_bits(1024) < FullBitVector.storage_bits(1024)

    def test_second_level_bits(self):
        assert HierarchicalVector.second_level_bits(64, num_groups=8) == 8


class TestFactories:
    def test_sharer_format_lookup(self):
        assert sharer_format("full") is FullBitVector
        assert sharer_format("coarse") is CoarseVector
        assert sharer_format("limited") is LimitedPointer
        assert sharer_format("hierarchical") is HierarchicalVector

    def test_sharer_format_unknown(self):
        with pytest.raises(ValueError):
            sharer_format("bogus")

    def test_make_sharer_set(self):
        sharers = make_sharer_set("limited", 16, num_pointers=2)
        assert isinstance(sharers, LimitedPointer)
        assert sharers.num_pointers == 2


@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["add", "remove"]), st.integers(0, 15)),
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
@pytest.mark.parametrize("cls", ALL_CLASSES)
def test_property_sharers_never_miss_a_true_member(cls, operations):
    """After any operation sequence, reported sharers ⊇ true members."""
    sharers = cls(16)
    reference = set()
    for op, cache in operations:
        if op == "add":
            sharers.add(cache)
            reference.add(cache)
        else:
            sharers.remove(cache)
            reference.discard(cache)
    assert reference <= set(sharers.sharers())
    assert sharers.count() == len(reference)
    assert sharers.exact_sharers() == frozenset(reference)
