"""Organization-specific tests for the Sparse and Skewed directories."""

import pytest

from repro.directories.skewed import SkewedDirectory
from repro.directories.sparse import SparseDirectory
from repro.directories.sharers import CoarseVector
from repro.hashing.strong import StrongHashFamily


class TestSparseDirectory:
    def test_set_conflict_forces_invalidation_of_lru_victim(self):
        directory = SparseDirectory(num_caches=4, num_sets=4, num_ways=2)
        # Three blocks mapping to the same set (addresses congruent mod 4).
        a, b, c = 0, 4, 8
        directory.add_sharer(a, 0)
        directory.add_sharer(b, 1)
        result = directory.add_sharer(c, 2)
        assert result.forced_invalidation_count == 1
        victim = result.invalidations[0]
        assert victim.address == a  # LRU victim is the oldest entry
        assert victim.caches == frozenset({0})
        assert not directory.contains(a)
        assert directory.contains(b)
        assert directory.contains(c)

    def test_lru_updated_by_sharer_additions(self):
        directory = SparseDirectory(num_caches=4, num_sets=4, num_ways=2)
        a, b, c = 0, 4, 8
        directory.add_sharer(a, 0)
        directory.add_sharer(b, 1)
        directory.add_sharer(a, 2)          # touch a: b becomes LRU
        result = directory.add_sharer(c, 3)
        assert result.invalidations[0].address == b

    def test_no_conflicts_within_capacity_of_one_set(self):
        directory = SparseDirectory(num_caches=2, num_sets=2, num_ways=4)
        for block in (0, 2, 4, 6):  # all map to set 0
            result = directory.add_sharer(block, 0)
            assert result.forced_invalidation_count == 0

    def test_forced_invalidation_reports_all_sharers_of_victim(self):
        directory = SparseDirectory(num_caches=4, num_sets=2, num_ways=1)
        directory.add_sharer(0, 0)
        directory.add_sharer(0, 3)
        result = directory.add_sharer(2, 1)  # conflicts with block 0 (set 0)
        assert result.invalidations[0].caches == frozenset({0, 3})

    def test_with_provisioning_capacity(self):
        directory = SparseDirectory.with_provisioning(
            num_caches=8, tracked_frames=1024, num_ways=8, provisioning=2.0
        )
        assert directory.capacity == pytest.approx(2048, rel=0.5)
        assert directory.num_ways == 8
        # Power-of-two set count.
        assert directory.num_sets & (directory.num_sets - 1) == 0

    def test_with_provisioning_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            SparseDirectory.with_provisioning(
                num_caches=8, tracked_frames=64, num_ways=8, provisioning=0
            )

    def test_entry_bits_with_coarse_encoding(self):
        full = SparseDirectory(num_caches=64, num_sets=16, num_ways=4)
        coarse = SparseDirectory(
            num_caches=64, num_sets=16, num_ways=4, sharer_cls=CoarseVector
        )
        assert coarse.entry_bits < full.entry_bits

    def test_insertion_always_one_attempt(self):
        directory = SparseDirectory(num_caches=2, num_sets=8, num_ways=2)
        for block in range(40):
            directory.add_sharer(block, 0)
        assert directory.stats.average_insertion_attempts == pytest.approx(1.0)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SparseDirectory(num_caches=2, num_sets=0, num_ways=2)
        with pytest.raises(ValueError):
            SparseDirectory(num_caches=2, num_sets=8, num_ways=0)


class TestSkewedDirectory:
    def test_breaks_simple_set_conflicts(self):
        """Blocks that conflict in a set-associative directory usually do not
        conflict in the skewed organization (different hash per way)."""
        skewed = SkewedDirectory(
            num_caches=2,
            num_sets=64,
            num_ways=2,
            hash_family=StrongHashFamily(2, 64, seed=3),
        )
        sparse = SparseDirectory(num_caches=2, num_sets=64, num_ways=2)
        # 8 blocks that all collide in the sparse directory's set 0.
        conflicting = [i * 64 for i in range(8)]
        for block in conflicting:
            skewed.add_sharer(block, 0)
            sparse.add_sharer(block, 0)
        assert sparse.stats.forced_invalidations >= 6
        assert skewed.stats.forced_invalidations < sparse.stats.forced_invalidations

    def test_conflict_when_all_candidates_full(self):
        """With a single set per way every block conflicts, so the skewed
        directory must victimise (single-step insertion)."""
        directory = SkewedDirectory(num_caches=2, num_sets=1, num_ways=2)
        directory.add_sharer(0, 0)
        directory.add_sharer(1, 0)
        result = directory.add_sharer(2, 1)
        assert result.forced_invalidation_count == 1
        assert directory.entry_count() == 2

    def test_victim_is_least_recently_used_candidate(self):
        directory = SkewedDirectory(num_caches=2, num_sets=1, num_ways=2)
        directory.add_sharer(0, 0)
        directory.add_sharer(1, 0)
        directory.add_sharer(0, 1)  # touch block 0, block 1 is now LRU
        result = directory.add_sharer(2, 0)
        assert result.invalidations[0].address == 1

    def test_insertions_single_attempt(self):
        directory = SkewedDirectory(num_caches=2, num_sets=32, num_ways=4)
        for block in range(50):
            directory.add_sharer(block, 0)
        assert directory.stats.average_insertion_attempts == pytest.approx(1.0)

    def test_mismatched_hash_family_rejected(self):
        with pytest.raises(ValueError):
            SkewedDirectory(
                num_caches=2,
                num_sets=64,
                num_ways=4,
                hash_family=StrongHashFamily(2, 64),
            )

    def test_capacity(self):
        directory = SkewedDirectory(num_caches=2, num_sets=128, num_ways=4)
        assert directory.capacity == 512
