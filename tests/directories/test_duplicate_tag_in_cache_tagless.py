"""Organization-specific tests for Duplicate-Tag, In-Cache and Tagless."""

import pytest

from repro.config import CacheConfig
from repro.directories.duplicate_tag import DuplicateTagDirectory
from repro.directories.in_cache import InCacheDirectory
from repro.directories.tagless import TaglessDirectory

CACHE = CacheConfig(size_bytes=2048, associativity=2)  # 32 frames, 16 sets
L2 = CacheConfig(size_bytes=8192, associativity=16)    # 128 frames


class TestDuplicateTag:
    def test_sharers_are_per_cache_mirrors(self):
        directory = DuplicateTagDirectory(num_caches=4, cache_config=CACHE)
        directory.add_sharer(0x40, 0)
        directory.add_sharer(0x40, 2)
        assert directory.lookup(0x40).sharers == frozenset({0, 2})

    def test_capacity_equals_total_cache_frames(self):
        directory = DuplicateTagDirectory(num_caches=4, cache_config=CACHE)
        assert directory.capacity == 4 * 32

    def test_lookup_associativity_scales_with_caches(self):
        small = DuplicateTagDirectory(num_caches=4, cache_config=CACHE)
        large = DuplicateTagDirectory(num_caches=16, cache_config=CACHE)
        assert large.lookup_associativity == 4 * small.lookup_associativity

    def test_never_conflicts_when_driven_like_a_cache(self):
        """When the driver mirrors real cache behaviour (at most `assoc`
        blocks per cache set resident at once), no invalidation is forced."""
        directory = DuplicateTagDirectory(num_caches=1, cache_config=CACHE)
        sets = CACHE.num_sets
        # Fill every set with exactly `assoc` blocks.
        for set_index in range(sets):
            for way in range(CACHE.associativity):
                directory.add_sharer(set_index + way * sets, 0)
        assert directory.stats.forced_invalidations == 0
        # Replacing a block the way a cache would (evict then insert).
        directory.remove_sharer(0, 0)
        result = directory.add_sharer(2 * sets * 7, 0)
        assert result.forced_invalidation_count == 0

    def test_overflowing_a_mirror_set_forces_invalidation(self):
        directory = DuplicateTagDirectory(num_caches=1, cache_config=CACHE)
        sets = CACHE.num_sets
        for i in range(CACHE.associativity + 1):
            result = directory.add_sharer(i * sets, 0)
        assert result.forced_invalidation_count == 1

    def test_slicing_reduces_mirror_sets(self):
        directory = DuplicateTagDirectory(
            num_caches=2, cache_config=CACHE, num_slices=4
        )
        assert directory.mirror_sets == CACHE.num_sets // 4

    def test_per_cache_tracking_is_independent(self):
        directory = DuplicateTagDirectory(num_caches=2, cache_config=CACHE)
        directory.add_sharer(0x80, 0)
        directory.remove_sharer(0x80, 1)  # cache 1 never had it
        assert directory.lookup(0x80).sharers == frozenset({0})

    def test_bits_read_grow_with_cache_count(self):
        small = DuplicateTagDirectory(num_caches=2, cache_config=CACHE)
        large = DuplicateTagDirectory(num_caches=8, cache_config=CACHE)
        small.lookup(0x1)
        large.lookup(0x1)
        assert large.stats.bits_read > small.stats.bits_read


class TestInCache:
    def test_geometry_mirrors_l2_slice(self):
        directory = InCacheDirectory(num_caches=8, l2_slice_config=L2)
        assert directory.num_ways == L2.associativity
        assert directory.num_sets == L2.num_sets
        assert directory.capacity == L2.num_frames

    def test_slicing_divides_sets(self):
        directory = InCacheDirectory(num_caches=8, l2_slice_config=L2, num_slices=4)
        assert directory.num_sets == L2.num_sets // 4

    def test_added_bits_per_entry_is_vector_width(self):
        directory = InCacheDirectory(num_caches=8, l2_slice_config=L2)
        assert directory.added_bits_per_entry == 8
        assert directory.tag_storage_is_free

    def test_behaves_like_sparse_directory(self):
        directory = InCacheDirectory(num_caches=4, l2_slice_config=L2)
        directory.add_sharer(0x11, 0)
        directory.add_sharer(0x11, 3)
        assert directory.lookup(0x11).sharers == frozenset({0, 3})


class TestTagless:
    def test_reports_superset_of_sharers(self):
        directory = TaglessDirectory(num_caches=8, cache_config=CACHE, filter_bits=64)
        directory.add_sharer(0x33, 2)
        sharers = directory.lookup(0x33).sharers
        assert 2 in sharers

    def test_never_forces_invalidations(self):
        directory = TaglessDirectory(num_caches=4, cache_config=CACHE, filter_bits=32)
        for block in range(500):
            result = directory.add_sharer(block, block % 4)
            assert result.forced_invalidation_count == 0
        assert directory.stats.forced_invalidations == 0

    def test_false_positives_possible_with_tiny_filters(self):
        directory = TaglessDirectory(
            num_caches=2, cache_config=CACHE, filter_bits=4, num_hashes=1
        )
        for block in range(0, 64, 2):
            directory.add_sharer(block, 0)
        # Probe different blocks that map to the same (even) buckets.
        false_positives = sum(
            directory.false_positive_sharers(block) for block in range(64, 128, 2)
        )
        assert false_positives > 0

    def test_removal_clears_membership_via_counting_filters(self):
        directory = TaglessDirectory(num_caches=2, cache_config=CACHE, filter_bits=256)
        directory.add_sharer(0x70, 1)
        directory.remove_sharer(0x70, 1)
        assert not directory.lookup(0x70).found

    def test_removal_does_not_disturb_other_blocks_sharing_bits(self):
        directory = TaglessDirectory(
            num_caches=1, cache_config=CacheConfig(size_bytes=128, associativity=2),
            filter_bits=2, num_hashes=1,
        )
        # With a single bucket and 2 filter bits, many blocks alias.
        directory.add_sharer(0, 0)
        directory.add_sharer(2, 0)
        directory.remove_sharer(0, 0)
        # Block 2 must still be reported even if it shared filter bits with 0.
        assert 0 in directory.lookup(2).sharers

    def test_bits_per_lookup_scale_with_caches(self):
        small = TaglessDirectory(num_caches=2, cache_config=CACHE)
        large = TaglessDirectory(num_caches=16, cache_config=CACHE)
        assert large.bits_per_lookup == 8 * small.bits_per_lookup

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TaglessDirectory(num_caches=2, cache_config=CACHE, filter_bits=0)
        with pytest.raises(ValueError):
            TaglessDirectory(num_caches=2, cache_config=CACHE, num_hashes=0)
        with pytest.raises(ValueError):
            TaglessDirectory(num_caches=2, cache_config=CACHE, num_slices=0)
