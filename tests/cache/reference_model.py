"""Dict-of-objects reference cache model (the pre-array-native design).

This is the original ``SetAssociativeCache`` implementation — per-frame
``_RefBlock`` objects in nested ``frames[set][way]`` lists, a reverse map
of ``(set, way)`` tuples, and an explicit :class:`LruPolicy` — retained
verbatim (minus the hot-path shortcuts) as the behavioural oracle for the
flat-array rewrite.  The property tests in
``test_array_cache_reference.py`` drive this model and the production
model with identical access streams and require identical hits,
evictions, LRU victims and state transitions.
"""

from typing import Dict, List, Optional, Tuple

from repro.cache.cache import CoherenceState
from repro.cache.replacement import LruPolicy
from repro.config import CacheConfig


class _RefBlock:
    __slots__ = ("address", "state", "dirty")

    def __init__(self, address: int, state: CoherenceState, dirty: bool) -> None:
        self.address = address
        self.state = state
        self.dirty = dirty


class _RefStats:
    __slots__ = ("hits", "misses", "evictions", "dirty_evictions", "invalidations_received")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.invalidations_received = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses


class ReferenceCache:
    """Reference set-associative cache over block addresses (LRU only)."""

    def __init__(self, config: CacheConfig) -> None:
        self.num_sets = config.num_sets
        self.num_ways = config.associativity
        self._policy = LruPolicy(self.num_sets, self.num_ways)
        self._frames: List[List[Optional[_RefBlock]]] = [
            [None] * self.num_ways for _ in range(self.num_sets)
        ]
        self._location: Dict[int, Tuple[int, int]] = {}
        self.stats = _RefStats()

    # -- queries -----------------------------------------------------------
    def probe(self, address: int) -> Optional[_RefBlock]:
        loc = self._location.get(address)
        if loc is None:
            return None
        return self._frames[loc[0]][loc[1]]

    def state_of(self, address: int) -> CoherenceState:
        block = self.probe(address)
        return block.state if block is not None else CoherenceState.INVALID

    def resident(self) -> Dict[int, Tuple[CoherenceState, bool]]:
        """Full observable frame state: address -> (state, dirty)."""
        return {
            address: (
                self._frames[s][w].state,
                self._frames[s][w].dirty,
            )
            for address, (s, w) in self._location.items()
        }

    def __len__(self) -> int:
        return len(self._location)

    # -- mutations ---------------------------------------------------------
    def touch(self, address: int, write: bool = False) -> bool:
        loc = self._location.get(address)
        if loc is None:
            self.stats.misses += 1
            return False
        set_index, way = loc
        block = self._frames[set_index][way]
        if write:
            block.dirty = True
        self._policy.on_access(set_index, way)
        self.stats.hits += 1
        return True

    def fill(
        self,
        address: int,
        state: CoherenceState = CoherenceState.SHARED,
        dirty: bool = False,
    ) -> Tuple[bool, Optional[int], bool, Optional[CoherenceState]]:
        """Install; returns (hit, victim_address, victim_dirty, victim_state)."""
        existing = self._location.get(address)
        if existing is not None:
            set_index, way = existing
            block = self._frames[set_index][way]
            block.state = state
            block.dirty = block.dirty or dirty
            self._policy.on_access(set_index, way)
            return True, None, False, None

        set_index = address % self.num_sets
        ways = self._frames[set_index]
        free_way = None
        for way, block in enumerate(ways):
            if block is None:
                free_way = way
                break
        if free_way is None:
            victim_way = self._policy.select_victim(
                set_index, list(range(self.num_ways))
            )
            victim = ways[victim_way]
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
            del self._location[victim.address]
            result = (False, victim.address, victim.dirty, victim.state)
            ways[victim_way] = _RefBlock(address, state, dirty)
            self._location[address] = (set_index, victim_way)
            self._policy.on_fill(set_index, victim_way)
            return result

        ways[free_way] = _RefBlock(address, state, dirty)
        self._location[address] = (set_index, free_way)
        self._policy.on_fill(set_index, free_way)
        return False, None, False, None

    def invalidate(self, address: int) -> bool:
        loc = self._location.get(address)
        if loc is None:
            return False
        set_index, way = loc
        self._policy.on_invalidate(set_index, way)
        self._frames[set_index][way] = None
        del self._location[address]
        self.stats.invalidations_received += 1
        return True

    def set_state(self, address: int, state: CoherenceState) -> bool:
        """Returns False when the block is absent (caller asserts parity)."""
        block = self.probe(address)
        if block is None:
            return False
        if state is CoherenceState.INVALID:
            self.invalidate(address)
            return True
        block.state = state
        if state is CoherenceState.MODIFIED:
            block.dirty = True
        return True

    def flush(self) -> List[int]:
        addresses = list(self._location.keys())
        for address in addresses:
            set_index, way = self._location[address]
            self._frames[set_index][way] = None
        self._location.clear()
        return addresses
