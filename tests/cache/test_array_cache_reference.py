"""Randomized equivalence: array-native cache vs the dict-of-objects model.

The flat-array rewrite of :class:`repro.cache.cache.SetAssociativeCache`
must be *behaviourally invisible*: for any access stream, hits, misses,
evictions (including which LRU victim leaves and whether it was dirty),
invalidation counts, state transitions and the final resident frame
contents must match the retained pre-rewrite reference implementation
(``reference_model.ReferenceCache``) exactly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import (
    CODE_TO_STATE,
    STATE_TO_CODE,
    CoherenceState,
    SetAssociativeCache,
)
from repro.config import CacheConfig

from reference_model import ReferenceCache

#: (size_bytes, associativity): a 2-way L1-like and a 4-way geometry.
GEOMETRIES = [(1024, 2), (2048, 4)]

_VALID_STATES = [
    CoherenceState.SHARED,
    CoherenceState.EXCLUSIVE,
    CoherenceState.MODIFIED,
]

# One operation = (kind, address, payload).
_operations = st.lists(
    st.tuples(
        st.sampled_from(["touch_r", "touch_w", "fill", "invalidate", "set_state"]),
        st.integers(min_value=0, max_value=47),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=1,
    max_size=400,
)


def _apply(model, reference, kind, address, payload):
    """Run one op on both models; assert the immediate results agree."""
    if kind == "touch_r":
        assert model.touch(address) == reference.touch(address)
    elif kind == "touch_w":
        assert model.touch(address, write=True) == reference.touch(
            address, write=True
        )
    elif kind == "fill":
        state = _VALID_STATES[payload % len(_VALID_STATES)]
        dirty = payload % 2 == 1
        result = model.fill(address, state=state, dirty=dirty)
        hit, victim, victim_dirty, victim_state = reference.fill(
            address, state=state, dirty=dirty
        )
        assert result.hit == hit
        assert result.victim_address == victim
        assert result.victim_dirty == victim_dirty
        if victim is not None:
            assert result.victim_state == victim_state
    elif kind == "invalidate":
        assert model.invalidate(address) == reference.invalidate(address)
    else:  # set_state
        state = (_VALID_STATES + [CoherenceState.INVALID])[payload % 4]
        if reference.set_state(address, state):
            model.set_state(address, state)
        else:
            with pytest.raises(KeyError):
                model.set_state(address, state)


@pytest.mark.parametrize("size_bytes,ways", GEOMETRIES)
@given(operations=_operations)
@settings(max_examples=60, deadline=None)
def test_array_cache_matches_dict_reference(size_bytes, ways, operations):
    config = CacheConfig(size_bytes=size_bytes, associativity=ways)
    model = SetAssociativeCache(config)
    reference = ReferenceCache(config)

    for kind, address, payload in operations:
        _apply(model, reference, kind, address, payload)

    # Counter parity: hits, misses, evictions, dirty evictions, invalidations.
    stats = model.stats
    ref_stats = reference.stats
    assert stats.accesses == ref_stats.accesses
    assert stats.hits == ref_stats.hits
    assert stats.misses == ref_stats.misses
    assert stats.evictions == ref_stats.evictions
    assert stats.dirty_evictions == ref_stats.dirty_evictions
    assert stats.invalidations_received == ref_stats.invalidations_received

    # Frame-content parity: same resident blocks, states and dirty bits.
    observed = {
        address: (model.state_of(address), model.probe(address).dirty)
        for address in model.resident_addresses()
    }
    assert observed == reference.resident()


@given(operations=_operations)
@settings(max_examples=40, deadline=None)
def test_touch_repeats_equals_repeated_touches(operations):
    """The run-length fast path's counter fold must equal N plain touches."""
    config = CacheConfig(size_bytes=1024, associativity=2)
    folded = SetAssociativeCache(config)
    plain = SetAssociativeCache(config)
    for kind, address, payload in operations:
        _apply_simple(folded, plain, kind, address, payload)


def _apply_simple(folded, plain, kind, address, payload):
    if kind == "fill":
        state_code = STATE_TO_CODE[_VALID_STATES[payload % len(_VALID_STATES)]]
        folded.fill_code(address, state_code, payload % 2 == 1)
        plain.fill_code(address, state_code, payload % 2 == 1)
        return
    if kind == "invalidate":
        folded.invalidate(address)
        plain.invalidate(address)
        return
    # Any touch kind: run it as a fold on one model, as repeats on the other.
    repeats = payload + 1
    state = folded.state_code_of(address)
    if state == 0:
        return  # touch_repeats requires residency
    writable = state == STATE_TO_CODE[CoherenceState.MODIFIED]
    write = kind == "touch_w" and writable
    if write or kind == "touch_r":
        # First touch the plain model `repeats` times...
        for _ in range(repeats):
            assert plain.touch(address, write=write)
        # ...then fold the same repeats on the other model.
        folded.touch_repeats(address, repeats)
        assert folded.stats.hits == plain.stats.hits
        assert folded.stats.accesses == plain.stats.accesses
        # Recency parity: fill a conflicting block and compare victims.
        conflict_a = address + 16 * folded.num_sets
        assert (
            folded.fill_code(conflict_a) == plain.fill_code(conflict_a)
        )
