"""Tests for the set-associative cache model and replacement policies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import CoherenceState, SetAssociativeCache
from repro.cache.replacement import FifoPolicy, LruPolicy, RandomPolicy, make_policy
from repro.config import CacheConfig

SMALL = CacheConfig(size_bytes=1024, associativity=2)  # 16 frames, 8 sets


def make_cache(config=SMALL, **kwargs):
    return SetAssociativeCache(config, **kwargs)


class TestGeometry:
    def test_frames_and_sets(self):
        cache = make_cache()
        assert cache.num_frames == 16
        assert cache.num_sets == 8
        assert cache.num_ways == 2

    def test_set_index_is_modulo(self):
        cache = make_cache()
        assert cache.set_index(0) == 0
        assert cache.set_index(9) == 1

    def test_rejects_mismatched_policy(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(SMALL, policy=LruPolicy(4, 4))


class TestFillAndProbe:
    def test_fill_then_probe(self):
        cache = make_cache()
        result = cache.fill(0x10, state=CoherenceState.EXCLUSIVE)
        assert not result.hit
        assert result.victim_address is None
        block = cache.probe(0x10)
        assert block is not None
        assert block.state is CoherenceState.EXCLUSIVE

    def test_fill_existing_block_is_a_hit_without_eviction(self):
        cache = make_cache()
        cache.fill(0x10)
        result = cache.fill(0x10, state=CoherenceState.MODIFIED)
        assert result.hit
        assert cache.state_of(0x10) is CoherenceState.MODIFIED
        assert len(cache) == 1

    def test_fill_full_set_evicts_lru(self):
        cache = make_cache()
        a, b, c = 0, 8, 16  # all map to set 0
        cache.fill(a)
        cache.fill(b)
        cache.touch(a)  # make b the LRU
        result = cache.fill(c)
        assert result.victim_address == b
        assert cache.contains(a)
        assert cache.contains(c)
        assert not cache.contains(b)

    def test_dirty_victim_reported(self):
        cache = make_cache()
        a, b, c = 0, 8, 16
        cache.fill(a, dirty=True)
        cache.fill(b)
        cache.touch(b)
        result = cache.fill(c)
        assert result.victim_address == a
        assert result.victim_dirty

    def test_occupancy(self):
        cache = make_cache()
        for block in range(4):
            cache.fill(block)
        assert cache.occupancy() == pytest.approx(4 / 16)

    def test_resident_addresses(self):
        cache = make_cache()
        blocks = {3, 12, 21}  # distinct sets, so nothing is evicted
        for block in blocks:
            cache.fill(block)
        assert set(cache.resident_addresses()) == blocks


class TestTouch:
    def test_touch_hit_and_miss_statistics(self):
        cache = make_cache()
        cache.fill(0x20)
        assert cache.touch(0x20) is True
        assert cache.touch(0x21) is False
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_write_touch_marks_dirty(self):
        cache = make_cache()
        cache.fill(0x20)
        cache.touch(0x20, write=True)
        assert cache.probe(0x20).dirty

    def test_touch_updates_recency(self):
        cache = make_cache()
        a, b, c = 0, 8, 16
        cache.fill(a)
        cache.fill(b)
        cache.touch(a)
        cache.fill(c)
        assert cache.contains(a)
        assert not cache.contains(b)


class TestInvalidateAndState:
    def test_invalidate_removes_block(self):
        cache = make_cache()
        cache.fill(0x30)
        assert cache.invalidate(0x30) is True
        assert not cache.contains(0x30)
        assert cache.stats.invalidations_received == 1

    def test_invalidate_missing_block(self):
        cache = make_cache()
        assert cache.invalidate(0x30) is False

    def test_set_state_transitions(self):
        cache = make_cache()
        cache.fill(0x40, state=CoherenceState.SHARED)
        cache.set_state(0x40, CoherenceState.MODIFIED)
        block = cache.probe(0x40)
        assert block.state is CoherenceState.MODIFIED
        assert block.dirty

    def test_set_state_invalid_removes_block(self):
        cache = make_cache()
        cache.fill(0x40)
        cache.set_state(0x40, CoherenceState.INVALID)
        assert not cache.contains(0x40)

    def test_set_state_on_absent_block_raises(self):
        cache = make_cache()
        with pytest.raises(KeyError):
            cache.set_state(0x40, CoherenceState.SHARED)

    def test_invalidated_frame_is_reused_before_eviction(self):
        cache = make_cache()
        a, b, c = 0, 8, 16
        cache.fill(a)
        cache.fill(b)
        cache.invalidate(a)
        result = cache.fill(c)
        assert result.victim_address is None
        assert cache.contains(b)

    def test_flush(self):
        cache = make_cache()
        for block in (1, 2, 3):
            cache.fill(block)
        flushed = cache.flush()
        assert set(flushed) == {1, 2, 3}
        assert len(cache) == 0

    def test_coherence_state_helpers(self):
        assert CoherenceState.MODIFIED.can_write
        assert CoherenceState.EXCLUSIVE.can_write
        assert not CoherenceState.SHARED.can_write
        assert not CoherenceState.INVALID.is_valid


class TestReplacementPolicies:
    def test_lru_selects_oldest(self):
        policy = LruPolicy(num_sets=1, num_ways=4)
        for way in range(4):
            policy.on_fill(0, way)
        policy.on_access(0, 0)
        assert policy.select_victim(0, [0, 1, 2, 3]) == 1

    def test_fifo_ignores_accesses(self):
        policy = FifoPolicy(num_sets=1, num_ways=3)
        for way in range(3):
            policy.on_fill(0, way)
        policy.on_access(0, 0)
        assert policy.select_victim(0, [0, 1, 2]) == 0

    def test_random_is_deterministic_per_seed(self):
        a = RandomPolicy(num_sets=1, num_ways=8, seed=3)
        b = RandomPolicy(num_sets=1, num_ways=8, seed=3)
        choices_a = [a.select_victim(0, list(range(8))) for _ in range(10)]
        choices_b = [b.select_victim(0, list(range(8))) for _ in range(10)]
        assert choices_a == choices_b

    def test_victim_must_come_from_occupied_ways(self):
        policy = LruPolicy(num_sets=2, num_ways=4)
        policy.on_fill(1, 2)
        policy.on_fill(1, 3)
        assert policy.select_victim(1, [2, 3]) in (2, 3)

    def test_empty_candidate_list_rejected(self):
        for policy in (LruPolicy(1, 2), FifoPolicy(1, 2), RandomPolicy(1, 2)):
            with pytest.raises(ValueError):
                policy.select_victim(0, [])

    def test_make_policy_factory(self):
        assert isinstance(make_policy("lru", 4, 2), LruPolicy)
        assert isinstance(make_policy("fifo", 4, 2), FifoPolicy)
        assert isinstance(make_policy("random", 4, 2), RandomPolicy)
        with pytest.raises(ValueError):
            make_policy("plru", 4, 2)

    def test_out_of_range_indices_rejected(self):
        policy = LruPolicy(num_sets=2, num_ways=2)
        with pytest.raises(IndexError):
            policy.on_access(2, 0)
        with pytest.raises(IndexError):
            policy.on_fill(0, 2)


@given(
    blocks=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300)
)
@settings(max_examples=60, deadline=None)
def test_property_cache_never_exceeds_capacity_and_respects_set_mapping(blocks):
    cache = make_cache()
    for block in blocks:
        cache.fill(block)
        assert len(cache) <= cache.num_frames
    # Every resident block sits in its own set, and no set exceeds its ways.
    per_set = {}
    for block in cache.resident_addresses():
        per_set.setdefault(cache.set_index(block), []).append(block)
    for set_index, members in per_set.items():
        assert len(members) <= cache.num_ways
        for member in members:
            assert member % cache.num_sets == set_index


@given(
    blocks=st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=200)
)
@settings(max_examples=60, deadline=None)
def test_property_most_recently_filled_block_is_always_resident(blocks):
    cache = make_cache()
    for block in blocks:
        cache.fill(block)
        assert cache.contains(block)
