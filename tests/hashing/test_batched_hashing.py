"""Equivalence tests for the batched / fused hashing fast paths.

``index(way, address)`` is the reference; ``way_function``,
``indices_function`` and ``batch_indices`` are performance variants that
must agree with it everywhere (the cuckoo table and Figure 7 rely on
that interchangeability).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hashing.base import HashFamily
from repro.hashing.skewing import SkewingHashFamily
from repro.hashing.strong import StrongHashFamily

addresses_strategy = st.lists(
    st.integers(min_value=0, max_value=(1 << 48) - 1), min_size=1, max_size=64
)


FAMILIES = [
    ("skewing-4x512", lambda: SkewingHashFamily(4, 512)),
    ("skewing-3x64-offset", lambda: SkewingHashFamily(3, 64, offset_bits=6)),
    ("skewing-2x1", lambda: SkewingHashFamily(2, 1)),
    ("strong-4x512", lambda: StrongHashFamily(4, 512, seed=7)),
    ("strong-3x1000", lambda: StrongHashFamily(3, 1000, seed=1)),
]


@pytest.mark.parametrize("name,make", FAMILIES, ids=[n for n, _ in FAMILIES])
@given(addresses=addresses_strategy)
@settings(max_examples=60, deadline=None)
def test_all_fast_paths_match_reference_index(name, make, addresses):
    family = make()
    way_fns = family.way_functions()
    indices_fn = family.indices_function()
    batched = family.batch_indices(addresses)
    assert len(batched) == len(addresses)
    for position, address in enumerate(addresses):
        reference = [family.index(way, address) for way in range(family.num_ways)]
        assert [fn(address) for fn in way_fns] == reference
        assert indices_fn(address) == reference
        assert list(batched[position]) == reference


def test_batch_indices_empty_input():
    family = StrongHashFamily(4, 512)
    assert family.batch_indices([]) == []
    assert SkewingHashFamily(4, 512).batch_indices([]) == []


def test_default_batch_indices_used_by_generic_families():
    class Modulo(HashFamily):
        def index(self, way, address):
            self._check_way(way)
            return (address + way) % self._num_sets

    family = Modulo(3, 8)
    assert family.batch_indices([0, 5, 21]) == [
        (0, 1, 2),
        (5, 6, 7),
        (5, 6, 7),
    ]


def test_index_bits_cached_and_correct():
    family = SkewingHashFamily(4, 512)
    assert family.index_bits == 9
    assert SkewingHashFamily(2, 1).index_bits == 0
