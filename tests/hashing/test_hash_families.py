"""Tests for the skewing and strong hash families."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hashing.base import validate_distinctness
from repro.hashing.skewing import SkewingHashFamily, skew_sigma
from repro.hashing.strong import Sha256HashFamily, StrongHashFamily, mix64


class TestSkewSigma:
    def test_is_bijective_on_small_fields(self):
        for bits in (2, 3, 4, 6, 8):
            values = {skew_sigma(v, bits) for v in range(1 << bits)}
            assert len(values) == 1 << bits

    def test_zero_maps_to_zero(self):
        assert skew_sigma(0, 8) == 0

    def test_zero_bits_is_zero(self):
        assert skew_sigma(5, 0) == 0

    def test_stays_within_field(self):
        for value in range(256):
            assert 0 <= skew_sigma(value, 8) < 256


class TestSkewingHashFamily:
    def test_indices_in_range(self):
        family = SkewingHashFamily(num_ways=4, num_sets=64)
        for address in range(0, 100_000, 977):
            for way in range(4):
                assert 0 <= family.index(way, address) < 64

    def test_requires_power_of_two_sets(self):
        with pytest.raises(ValueError):
            SkewingHashFamily(num_ways=4, num_sets=100)

    def test_single_set_always_index_zero(self):
        family = SkewingHashFamily(num_ways=2, num_sets=1)
        assert family.index(0, 12345) == 0
        assert family.index(1, 12345) == 0

    def test_rejects_negative_address(self):
        family = SkewingHashFamily(num_ways=2, num_sets=16)
        with pytest.raises(ValueError):
            family.index(0, -1)

    def test_rejects_out_of_range_way(self):
        family = SkewingHashFamily(num_ways=2, num_sets=16)
        with pytest.raises(IndexError):
            family.index(2, 5)

    def test_ways_produce_different_functions(self):
        family = SkewingHashFamily(num_ways=4, num_sets=256)
        addresses = list(range(1, 4096, 7))
        distinctness = validate_distinctness(family, addresses)
        assert distinctness > 0.9

    def test_deterministic(self):
        family = SkewingHashFamily(num_ways=3, num_sets=128)
        assert family.indices(0xDEADBEEF) == family.indices(0xDEADBEEF)

    def test_spreads_sequential_addresses(self):
        """Consecutive block addresses should spread across many sets."""
        family = SkewingHashFamily(num_ways=2, num_sets=64)
        indices = {family.index(0, address) for address in range(256)}
        assert len(indices) > 32

    def test_offset_bits_are_ignored(self):
        family_plain = SkewingHashFamily(num_ways=2, num_sets=64)
        family_offset = SkewingHashFamily(num_ways=2, num_sets=64, offset_bits=6)
        assert family_offset.index(0, 0x1234 << 6) == family_plain.index(0, 0x1234)

    def test_indices_helper_matches_index(self):
        family = SkewingHashFamily(num_ways=4, num_sets=32)
        address = 0xABCDE
        assert family.indices(address) == [family.index(w, address) for w in range(4)]

    @given(address=st.integers(min_value=0, max_value=(1 << 48) - 1))
    @settings(max_examples=200, deadline=None)
    def test_index_always_valid(self, address):
        family = SkewingHashFamily(num_ways=4, num_sets=128)
        for way in range(4):
            assert 0 <= family.index(way, address) < 128


class TestMix64:
    def test_is_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_changes_single_bit_flips_many_output_bits(self):
        baseline = mix64(0x0123456789ABCDEF)
        flipped = mix64(0x0123456789ABCDEE)
        differing = bin(baseline ^ flipped).count("1")
        assert differing > 16

    def test_stays_in_64_bits(self):
        assert 0 <= mix64((1 << 64) - 1) < (1 << 64)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=200, deadline=None)
    def test_range(self, value):
        assert 0 <= mix64(value) < (1 << 64)


class TestStrongHashFamily:
    def test_indices_in_range(self):
        family = StrongHashFamily(num_ways=4, num_sets=100, seed=3)
        for address in range(0, 50_000, 733):
            for way in range(4):
                assert 0 <= family.index(way, address) < 100

    def test_different_seeds_give_different_functions(self):
        a = StrongHashFamily(num_ways=2, num_sets=1024, seed=1)
        b = StrongHashFamily(num_ways=2, num_sets=1024, seed=2)
        differences = sum(
            1 for address in range(2000) if a.index(0, address) != b.index(0, address)
        )
        assert differences > 1500

    def test_ways_are_independent(self):
        family = StrongHashFamily(num_ways=2, num_sets=1024, seed=0)
        same = sum(
            1
            for address in range(4000)
            if family.index(0, address) == family.index(1, address)
        )
        # Expect ~ 4000/1024 collisions for independent functions.
        assert same < 40

    def test_distribution_is_roughly_uniform(self):
        family = StrongHashFamily(num_ways=1, num_sets=16, seed=7)
        counts = [0] * 16
        total = 16_000
        for address in range(total):
            counts[family.index(0, address)] += 1
        expected = total / 16
        for count in counts:
            assert abs(count - expected) < expected * 0.25

    def test_rejects_negative_address(self):
        family = StrongHashFamily(num_ways=2, num_sets=16)
        with pytest.raises(ValueError):
            family.index(0, -5)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            StrongHashFamily(num_ways=0, num_sets=16)
        with pytest.raises(ValueError):
            StrongHashFamily(num_ways=2, num_sets=0)

    def test_sha_reference_agrees_on_range(self):
        family = Sha256HashFamily(num_ways=2, num_sets=64, seed=0)
        for address in range(0, 1000, 37):
            for way in range(2):
                assert 0 <= family.index(way, address) < 64

    def test_non_power_of_two_sets_supported(self):
        family = StrongHashFamily(num_ways=3, num_sets=1000, seed=0)
        indices = {family.index(0, a) for a in range(10_000)}
        assert max(indices) < 1000
        assert len(indices) > 900
