"""Figure 11 — worst-case insertion-attempt distributions.

Regenerates the attempt-count distributions for the worst-behaved
workload/configuration pairs (Oracle on Shared-L2, ocean on Private-L2) and
checks the exponentially decaying tail with no pile-up at the 32-attempt
cut-off.
"""

from repro.experiments import fig11_worst_case


def test_fig11_worst_case(benchmark, bench_scale, bench_measure, engine_runner):
    result = benchmark.pedantic(
        fig11_worst_case.run,
        kwargs=dict(scale=bench_scale, measure_accesses=bench_measure,
                    runner=engine_runner),
        rounds=1,
        iterations=1,
    )
    print()
    print(fig11_worst_case.format_table(result))

    for label, distribution in result.distributions.items():
        assert distribution, f"no insertions recorded for {label}"
        # Most insertions succeed on the very first attempt (85% Oracle /
        # 73% ocean in the paper).
        assert distribution.get(1, 0.0) > 0.6
        # The tail decays: two attempts are more common than five or more.
        tail = sum(v for k, v in distribution.items() if k >= 5)
        assert distribution.get(2, 0.0) >= tail
        # No pile-up at the cut-off (loops are practically non-existent).
        assert distribution.get(32, 0.0) < 0.02
