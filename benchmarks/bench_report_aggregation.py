"""Reporting-subsystem benchmark: streaming aggregation over a large store.

Standalone script in the style of ``bench_hot_path.py`` (not a pytest
module).  It synthesizes a result store of ``--records`` deterministic
records on disk, then times the reporting paths that must scale with
store size:

* streaming the file through ``iter_store_records`` (the two-pass
  last-record-wins reader);
* ``SweepFrame.aggregate`` group-by/mean/geomean over the stream;
* a flat ``SweepFrame.from_records`` render of the headline columns;
* ``compare_files`` diffing the store against itself.

The record is written to ``BENCH_report.json``.  ``--fail-below`` gates
on the aggregation throughput (records/second), for local full-mode runs;
CI runs ``--quick`` which is too small to gate on.

Usage::

    PYTHONPATH=src python benchmarks/bench_report_aggregation.py
    PYTHONPATH=src python benchmarks/bench_report_aggregation.py --quick
    PYTHONPATH=src python benchmarks/bench_report_aggregation.py --fail-below 50000
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.frame import SweepFrame
from repro.analysis.report import compare_files
from repro.engine.spec import ORGANIZATIONS, RunSpec
from repro.engine.store import iter_store_records
from repro.workloads.suite import WORKLOAD_NAMES

DEFAULT_RECORDS = 20_000
QUICK_RECORDS = 1_000


def synthesize_store(path: Path, num_records: int) -> None:
    """Write ``num_records`` deterministic records in store JSONL format.

    Values are cheap arithmetic functions of the record index — the point
    is volume, not physics — and specs cycle the workload/organization/
    seed axes so group-by aggregation has real group structure.
    """
    num_workloads = len(WORKLOAD_NAMES)
    num_organizations = len(ORGANIZATIONS)
    with path.open("w", encoding="utf-8") as handle:
        for index in range(num_records):
            # Mixed-radix decomposition so every index yields a distinct
            # spec (and therefore a distinct store key).
            workload = index % num_workloads
            organization = (index // num_workloads) % num_organizations
            level = (index // (num_workloads * num_organizations)) % 2
            seed = index // (num_workloads * num_organizations * 2)
            spec = RunSpec(
                workload=WORKLOAD_NAMES[workload],
                tracked_level="L1" if level == 0 else "L2",
                organization=ORGANIZATIONS[organization],
                ways=4,
                provisioning=1.0,
                seed=seed,
            )
            result = {
                "spec": spec.to_dict(),
                "accesses": 40_000,
                "cache_hit_rate": 0.5 + (index % 100) / 400.0,
                "average_occupancy": 0.6 + (index % 50) / 250.0,
                "occupancy_vs_worst_case": 0.6 + (index % 50) / 250.0,
                "average_insertion_attempts": 1.0 + (index % 30) / 60.0,
                "forced_invalidation_rate": (index % 7) / 10_000.0,
                "insertions": 10_000 + index % 500,
                "insertion_attempts": 11_000 + index % 600,
                "forced_invalidations": index % 7,
                "tracked_frames_total": 8_192,
                "directory_capacity_total": 8_192,
                "total_messages": 100_000 + index % 1_000,
                "attempt_histogram": [[1, 9_000], [2, 1_000]],
                "elapsed_seconds": 0.0,
            }
            handle.write(
                json.dumps({"key": spec.key(), "result": result}) + "\n"
            )


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def run_benchmark(num_records: int, repeats: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-report-") as tmp:
        store_path = Path(tmp) / "results.jsonl"
        _, synth_seconds = _timed(
            lambda: synthesize_store(store_path, num_records)
        )

        def stream():
            return sum(1 for _record in iter_store_records(store_path))

        def aggregate():
            return SweepFrame.aggregate(
                (payload for _key, payload in iter_store_records(store_path)),
                group_by=("workload", "organization"),
                metrics={
                    "points": ("workload", "count"),
                    "avg_attempts": ("average_insertion_attempts", "mean"),
                    "geomean_attempts": ("average_insertion_attempts", "geomean"),
                    "invalidation_rate": ("forced_invalidation_rate", "mean"),
                },
            )

        def render_flat():
            return SweepFrame.from_records(
                (payload for _key, payload in iter_store_records(store_path)),
                fields=(
                    "workload", "organization", "average_insertion_attempts",
                    "forced_invalidation_rate",
                ),
            ).to_csv()

        def self_compare():
            return compare_files(store_path, store_path, threshold=0.0)

        timings = {}
        outputs = {}
        for name, fn in (
            ("stream_seconds", stream),
            ("aggregate_seconds", aggregate),
            ("render_flat_seconds", render_flat),
            ("self_compare_seconds", self_compare),
        ):
            best_value, best_seconds = None, None
            for _repeat in range(repeats):
                value, seconds = _timed(fn)
                if best_seconds is None or seconds < best_seconds:
                    best_value, best_seconds = value, seconds
            outputs[name], timings[name] = best_value, best_seconds

        streamed = outputs["stream_seconds"]
        frame = outputs["aggregate_seconds"]
        report = outputs["self_compare_seconds"]
        assert streamed == num_records, (streamed, num_records)
        assert len(frame) == len(WORKLOAD_NAMES) * len(ORGANIZATIONS)
        assert report.ok and report.compared == num_records

        return {
            "records": num_records,
            "groups": len(frame),
            "synthesize_seconds": synth_seconds,
            "current_seconds": timings,
            "aggregate_records_per_second": num_records / timings["aggregate_seconds"],
            "stream_records_per_second": num_records / timings["stream_seconds"],
        }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--records", type=int, default=None,
        help=f"records to synthesize (default {DEFAULT_RECORDS})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke: {QUICK_RECORDS} records, one repeat",
    )
    parser.add_argument(
        "--fail-below", type=float, default=None, metavar="RATE",
        help="exit non-zero if aggregation throughput is below RATE records/s",
    )
    parser.add_argument(
        "--output", default="BENCH_report.json", metavar="PATH",
        help="where to write the benchmark record",
    )
    args = parser.parse_args(argv)

    num_records = args.records
    if num_records is None:
        num_records = QUICK_RECORDS if args.quick else DEFAULT_RECORDS
    repeats = 1 if args.quick else 3

    record = run_benchmark(num_records, repeats)
    record["quick"] = bool(args.quick)
    record["unix_time"] = time.time()
    Path(args.output).write_text(json.dumps(record, indent=2, sort_keys=True))

    print(f"{'metric':28s} {'seconds':>10s}")
    for name, seconds in record["current_seconds"].items():
        print(f"{name:28s} {seconds:10.4f}")
    print(
        f"aggregation throughput: "
        f"{record['aggregate_records_per_second']:,.0f} records/s "
        f"over {record['records']:,} records -> {record['groups']} groups"
    )
    print(f"wrote {args.output}")

    if (
        args.fail_below is not None
        and record["aggregate_records_per_second"] < args.fail_below
    ):
        print(
            f"FAIL: aggregation throughput "
            f"{record['aggregate_records_per_second']:,.0f} records/s below "
            f"{args.fail_below:,.0f}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
