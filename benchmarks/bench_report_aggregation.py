"""Reporting-subsystem benchmark: columnar vs. streaming aggregation.

Standalone script in the style of ``bench_hot_path.py`` (not a pytest
module).  It synthesizes two equal stores of ``--records`` deterministic
records — one legacy JSONL, one sealed into binary columnar segments —
then times the reporting paths that must scale with store size,
interleaving the streaming and columnar measurements on the same host so
their ratio is hardware-independent:

* streaming the JSONL file through ``iter_store_records`` (the
  last-record-wins reader);
* ``SweepFrame.aggregate`` group-by/mean/geomean over that stream
  (the pre-engine baseline, live-measured, ~46k records/s historically);
* ``SweepFrame.aggregate_columns`` over the sealed store — a cold scan
  of the memory-mapped segments (nothing cached in-process per repeat);
* ``compare_files`` diffing the JSONL store against itself.

The record is written to ``BENCH_report.json``.  The headline metric is
``columnar_speedup_ratio`` (columnar vs. streaming aggregation); CI
regenerates the record and gates it against the committed baseline with
``repro-run compare --fail-on-regression``.  ``--fail-speedup-below``
gates the ratio directly; ``--fail-below`` gates the streaming
throughput for local full-mode runs.

Usage::

    PYTHONPATH=src python benchmarks/bench_report_aggregation.py
    PYTHONPATH=src python benchmarks/bench_report_aggregation.py --quick
    PYTHONPATH=src python benchmarks/bench_report_aggregation.py --fail-speedup-below 10
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.frame import SweepFrame
from repro.analysis.report import compare_files
from repro.engine.spec import ORGANIZATIONS, RunSpec
from repro.engine.store import ResultStore, iter_store_records
from repro.workloads.suite import WORKLOAD_NAMES

DEFAULT_RECORDS = 100_000
QUICK_RECORDS = 5_000

AGGREGATION = dict(
    group_by=("workload", "organization"),
    metrics={
        "points": ("workload", "count"),
        "avg_attempts": ("average_insertion_attempts", "mean"),
        "geomean_attempts": ("average_insertion_attempts", "geomean"),
        "invalidation_rate": ("forced_invalidation_rate", "mean"),
    },
)


def synthesize_store(path: Path, num_records: int) -> None:
    """Write ``num_records`` deterministic records in store JSONL format.

    Values are cheap arithmetic functions of the record index — the point
    is volume, not physics — and specs cycle the workload/organization/
    seed axes so group-by aggregation has real group structure.
    """
    num_workloads = len(WORKLOAD_NAMES)
    num_organizations = len(ORGANIZATIONS)
    with path.open("w", encoding="utf-8") as handle:
        for index in range(num_records):
            # Mixed-radix decomposition so every index yields a distinct
            # spec (and therefore a distinct store key).
            workload = index % num_workloads
            organization = (index // num_workloads) % num_organizations
            level = (index // (num_workloads * num_organizations)) % 2
            seed = index // (num_workloads * num_organizations * 2)
            spec = RunSpec(
                workload=WORKLOAD_NAMES[workload],
                tracked_level="L1" if level == 0 else "L2",
                organization=ORGANIZATIONS[organization],
                ways=4,
                provisioning=1.0,
                seed=seed,
            )
            result = {
                "spec": spec.to_dict(),
                "accesses": 40_000,
                "cache_hit_rate": 0.5 + (index % 100) / 400.0,
                "average_occupancy": 0.6 + (index % 50) / 250.0,
                "occupancy_vs_worst_case": 0.6 + (index % 50) / 250.0,
                "average_insertion_attempts": 1.0 + (index % 30) / 60.0,
                "forced_invalidation_rate": (index % 7) / 10_000.0,
                "insertions": 10_000 + index % 500,
                "insertion_attempts": 11_000 + index % 600,
                "forced_invalidations": index % 7,
                "tracked_frames_total": 8_192,
                "directory_capacity_total": 8_192,
                "total_messages": 100_000 + index % 1_000,
                "attempt_histogram": [[1, 9_000], [2, 1_000]],
                "elapsed_seconds": 0.0,
                "worker": "",
            }
            handle.write(
                json.dumps({"key": spec.key(), "result": result}) + "\n"
            )


def synthesize_sealed_store(path: Path, num_records: int) -> None:
    """The same records sealed into columnar segments (empty WAL)."""
    synthesize_store(path, num_records)
    ResultStore(path).seal()


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def _assert_equivalent(streamed: SweepFrame, columnar: SweepFrame) -> None:
    """The columnar fast path must agree with the streaming reference."""
    stream_rows, column_rows = streamed.rows(), columnar.rows()
    assert len(stream_rows) == len(column_rows), (
        len(stream_rows), len(column_rows),
    )
    for expected, actual in zip(stream_rows, column_rows):
        assert set(expected) == set(actual), (expected, actual)
        for field, value in expected.items():
            other = actual[field]
            if isinstance(value, float):
                assert math.isclose(value, other, rel_tol=1e-9), (field, value, other)
            else:
                assert value == other, (field, value, other)


def run_benchmark(num_records: int, repeats: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-report-") as tmp:
        legacy_path = Path(tmp) / "legacy.jsonl"
        sealed_path = Path(tmp) / "sealed.jsonl"
        _, synth_seconds = _timed(
            lambda: synthesize_store(legacy_path, num_records)
        )
        _, seal_seconds = _timed(
            lambda: synthesize_sealed_store(sealed_path, num_records)
        )

        def stream():
            return sum(1 for _record in iter_store_records(legacy_path))

        def aggregate_streaming():
            return SweepFrame.aggregate(
                (payload for _key, payload in iter_store_records(legacy_path)),
                **AGGREGATION,
            )

        def aggregate_columnar():
            # Cold scan: nothing is cached in-process between calls — every
            # repeat re-opens the memory-mapped segments from the manifest.
            return SweepFrame.aggregate_columns(sealed_path, **AGGREGATION)

        def self_compare():
            return compare_files(legacy_path, legacy_path, threshold=0.0)

        timings: dict = {}
        outputs: dict = {}
        # One timing round runs every workload back to back — streaming and
        # columnar interleave on the same host, so their ratio holds even
        # though the absolute wall-clock numbers are hardware-specific.
        workloads = (
            ("stream_seconds", stream),
            ("streaming_aggregate_seconds", aggregate_streaming),
            ("columnar_aggregate_seconds", aggregate_columnar),
            ("self_compare_seconds", self_compare),
        )
        for _repeat in range(repeats):
            for name, fn in workloads:
                value, seconds = _timed(fn)
                if name not in timings or seconds < timings[name]:
                    outputs[name], timings[name] = value, seconds

        streamed = outputs["stream_seconds"]
        stream_frame = outputs["streaming_aggregate_seconds"]
        column_frame = outputs["columnar_aggregate_seconds"]
        report = outputs["self_compare_seconds"]
        assert streamed == num_records, (streamed, num_records)
        assert len(stream_frame) == len(WORKLOAD_NAMES) * len(ORGANIZATIONS)
        _assert_equivalent(stream_frame, column_frame)
        assert report.ok and report.compared == num_records

        streaming_rate = num_records / timings["streaming_aggregate_seconds"]
        columnar_rate = num_records / timings["columnar_aggregate_seconds"]
        return {
            "records": num_records,
            "groups": len(stream_frame),
            "synthesize_seconds": synth_seconds,
            "seal_seconds": seal_seconds,
            "current_seconds": timings,
            "aggregate_records_per_second": streaming_rate,
            "columnar_records_per_second": columnar_rate,
            "columnar_speedup_ratio": (
                timings["streaming_aggregate_seconds"]
                / timings["columnar_aggregate_seconds"]
            ),
            "stream_records_per_second": num_records / timings["stream_seconds"],
        }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--records", type=int, default=None,
        help=f"records to synthesize (default {DEFAULT_RECORDS})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke: {QUICK_RECORDS} records, one repeat",
    )
    parser.add_argument(
        "--fail-below", type=float, default=None, metavar="RATE",
        help="exit non-zero if streaming aggregation is below RATE records/s",
    )
    parser.add_argument(
        "--fail-speedup-below", type=float, default=None, metavar="RATIO",
        help="exit non-zero if the columnar speedup ratio is below RATIO",
    )
    parser.add_argument(
        "--output", default="BENCH_report.json", metavar="PATH",
        help="where to write the benchmark record",
    )
    args = parser.parse_args(argv)

    num_records = args.records
    if num_records is None:
        num_records = QUICK_RECORDS if args.quick else DEFAULT_RECORDS
    repeats = 2 if args.quick else 3

    record = run_benchmark(num_records, repeats)
    record["quick"] = bool(args.quick)
    record["unix_time"] = time.time()
    Path(args.output).write_text(json.dumps(record, indent=2, sort_keys=True))

    print(f"{'metric':30s} {'seconds':>10s}")
    for name, seconds in record["current_seconds"].items():
        print(f"{name:30s} {seconds:10.4f}")
    print(
        f"streaming aggregation: "
        f"{record['aggregate_records_per_second']:,.0f} records/s, "
        f"columnar: {record['columnar_records_per_second']:,.0f} records/s "
        f"({record['columnar_speedup_ratio']:.1f}x) "
        f"over {record['records']:,} records -> {record['groups']} groups"
    )
    print(f"wrote {args.output}")

    failed = False
    if (
        args.fail_below is not None
        and record["aggregate_records_per_second"] < args.fail_below
    ):
        print(
            f"FAIL: streaming aggregation "
            f"{record['aggregate_records_per_second']:,.0f} records/s below "
            f"{args.fail_below:,.0f}",
            file=sys.stderr,
        )
        failed = True
    if (
        args.fail_speedup_below is not None
        and record["columnar_speedup_ratio"] < args.fail_speedup_below
    ):
        print(
            f"FAIL: columnar speedup {record['columnar_speedup_ratio']:.1f}x "
            f"below {args.fail_speedup_below:g}x",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
