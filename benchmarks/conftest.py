"""Shared settings for the benchmark harness.

Each benchmark regenerates one table or figure of the paper and prints the
corresponding rows/series.  By default the simulation-based benchmarks run
on a scaled-down system (see ``repro.experiments.common.scaled_system``)
with a reduced workload subset so that the whole suite completes in a few
minutes; set the environment variable ``REPRO_BENCH_FULL=1`` to run every
Table 2 workload on a larger system (much slower, closer to the paper's
setup).

The simulation-based benchmarks share one :class:`repro.engine.runner.
ParallelRunner` (the ``engine_runner`` fixture): points are sharded across
``$REPRO_BENCH_WORKERS`` processes (default: the CPU count) and finished
points persist in a content-addressed store under
``benchmarks/.engine-cache/``, so re-running the suite only simulates
points whose parameters changed.  Note the flip side for the *reported
timings*: figures share points (fig10's chosen designs appear in fig09's
sweep and fig11's worst cases), so later benchmarks in a session — and
every benchmark on a warm re-run — largely measure cache lookups, not
simulation.  The per-figure numbers answer "how long does regenerating
this figure take *now*", not "how expensive is this figure cold";
``bench_engine_parallel`` deliberately bypasses the shared store for its
cold/warm and serial/parallel comparisons.  Delete the cache directory —
or run ``repro-run cache --clear`` with ``$REPRO_RESULT_STORE`` pointed
at it — to force cold runs.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.engine import ParallelRunner, ResultStore
from repro.workloads.suite import WORKLOAD_NAMES

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false")

#: Shared on-disk result store for the benchmark suite.
ENGINE_CACHE = Path(__file__).resolve().parent / ".engine-cache" / "results.jsonl"


@pytest.fixture(scope="session")
def bench_scale() -> int:
    """Cache-capacity scale factor (1 = the paper's full-size system)."""
    return 8 if FULL_MODE else 32


@pytest.fixture(scope="session")
def bench_measure() -> int:
    """Measured accesses per simulation point."""
    return 100_000 if FULL_MODE else 12_000


@pytest.fixture(scope="session")
def bench_workloads() -> list:
    """Workload subset: the full Table 2 suite in full mode, otherwise one
    representative workload per category (OLTP, DSS, Web, scientific)."""
    if FULL_MODE:
        return list(WORKLOAD_NAMES)
    return ["Oracle", "Qry17", "Apache", "ocean"]


@pytest.fixture(scope="session")
def bench_workers() -> int:
    """Worker processes for the shared engine runner."""
    override = os.environ.get("REPRO_BENCH_WORKERS")
    if override:
        return max(1, int(override))
    return max(1, os.cpu_count() or 1)


@pytest.fixture(scope="session")
def engine_runner(bench_workers) -> ParallelRunner:
    """Session-wide parallel runner with the persistent benchmark store."""
    return ParallelRunner(workers=bench_workers, store=ResultStore(ENGINE_CACHE))
