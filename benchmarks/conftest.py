"""Shared settings for the benchmark harness.

Each benchmark regenerates one table or figure of the paper and prints the
corresponding rows/series.  By default the simulation-based benchmarks run
on a scaled-down system (see ``repro.experiments.common.scaled_system``)
with a reduced workload subset so that the whole suite completes in a few
minutes; set the environment variable ``REPRO_BENCH_FULL=1`` to run every
Table 2 workload on a larger system (much slower, closer to the paper's
setup).
"""

from __future__ import annotations

import os

import pytest

from repro.workloads.suite import WORKLOAD_NAMES

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false")


@pytest.fixture(scope="session")
def bench_scale() -> int:
    """Cache-capacity scale factor (1 = the paper's full-size system)."""
    return 8 if FULL_MODE else 32


@pytest.fixture(scope="session")
def bench_measure() -> int:
    """Measured accesses per simulation point."""
    return 100_000 if FULL_MODE else 12_000


@pytest.fixture(scope="session")
def bench_workloads() -> list:
    """Workload subset: the full Table 2 suite in full mode, otherwise one
    representative workload per category (OLTP, DSS, Web, scientific)."""
    if FULL_MODE:
        return list(WORKLOAD_NAMES)
    return ["Oracle", "Qry17", "Apache", "ocean"]
