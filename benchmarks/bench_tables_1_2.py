"""Tables 1 and 2 — system and application parameters.

Regenerates the two configuration tables of the paper from the library's
configuration objects, and benchmarks how quickly a full 16-core tiled CMP
(Table 1 geometry) can be constructed.
"""

from repro.analysis.tables import render_table
from repro.config import PRIVATE_L2_16CORE, SHARED_L2_16CORE
from repro.coherence.system import TiledCMP
from repro.core.cuckoo_directory import CuckooDirectory
from repro.workloads.suite import workload_table


def test_table1_system_parameters(benchmark):
    def build():
        return TiledCMP(
            SHARED_L2_16CORE,
            lambda caches, slice_id: CuckooDirectory(
                num_caches=caches, num_sets=512, num_ways=4
            ),
        )

    system = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = [
        ["CMP size", f"{SHARED_L2_16CORE.num_cores} cores"],
        ["L1 caches", "split I/D, 64KB, 2 ways, 64-byte blocks"],
        ["L2 NUCA cache", "1MB per core, 16 ways, 64-byte blocks"],
        ["Main memory", "8KB pages, 48-bit address space"],
        ["Tracked caches (Shared-L2)", str(SHARED_L2_16CORE.num_tracked_caches)],
        ["Tracked caches (Private-L2)", str(PRIVATE_L2_16CORE.num_tracked_caches)],
        ["Directory slices", str(SHARED_L2_16CORE.num_directory_slices)],
    ]
    print()
    print(render_table(["Parameter", "Value"], rows, title="Table 1: system parameters"))

    assert len(system.tracked_caches) == 32
    assert len(system.directories) == 16
    assert SHARED_L2_16CORE.l1_config.num_frames == 1024
    assert PRIVATE_L2_16CORE.l2_config.num_frames == 16384


def test_table2_application_parameters(benchmark):
    rows = benchmark.pedantic(workload_table, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["Workload", "Category", "Parameters"],
            [[r["name"], r["category"], r["description"]] for r in rows],
            title="Table 2: application parameters",
        )
    )
    assert len(rows) == 9
    assert {r["category"] for r in rows} == {"OLTP", "DSS", "Web", "Sci"}
