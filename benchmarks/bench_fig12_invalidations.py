"""Figure 12 — forced-invalidation rate comparison.

Regenerates the per-workload forced-invalidation rates of Sparse 2x,
Sparse 8x, Skewed 2x and the Cuckoo directory for both configurations and
checks the ordering the paper reports: the Cuckoo directory — despite
having the smallest capacity and lowest associativity — experiences
near-zero invalidations, Skewed 2x improves on Sparse 2x, and Sparse 8x
buys its low rate with 8x the capacity.
"""

from repro.experiments import fig12_invalidations


def _mean(values):
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def test_fig12_invalidations(benchmark, bench_scale, bench_measure, bench_workloads, engine_runner):
    result = benchmark.pedantic(
        fig12_invalidations.run,
        kwargs=dict(
            workloads=bench_workloads,
            scale=bench_scale,
            measure_accesses=bench_measure,
            runner=engine_runner,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(fig12_invalidations.format_table(result))
    from repro.analysis.report import reference_summary

    print()
    print(reference_summary("fig12", result))

    for config_name, rates in result.configurations().items():
        sparse2 = _mean(rates["Sparse 2x"].values())
        sparse8 = _mean(rates["Sparse 8x"].values())
        skewed2 = _mean(rates["Skewed 2x"].values())
        cuckoo = _mean(rates["Cuckoo"].values())
        # The Cuckoo directory is (near-)zero and never worse than the rest.
        assert cuckoo < 0.005, (config_name, cuckoo)
        assert cuckoo <= sparse8 + 1e-9
        assert cuckoo <= skewed2 + 1e-9
        assert cuckoo <= sparse2 + 1e-9
        # 8x over-provisioning improves on Sparse 2x; skewing helps overall
        # but (as the paper notes) not necessarily on the scientific
        # workloads, so allow a small absolute tolerance.
        assert sparse8 <= sparse2 + 1e-9
        assert skewed2 <= sparse2 + 2e-3
    # Sparse 2x genuinely conflicts somewhere in the suite.
    worst_sparse2 = max(
        max(rates["Sparse 2x"].values())
        for rates in result.configurations().values()
    )
    assert worst_sparse2 > 0.0
