#!/usr/bin/env python
"""Telemetry overhead benchmark: enabled vs disabled on the fig10 point.

The observability subsystem (:mod:`repro.obs`) promises that enabling
metrics + phase tracing costs at most 2% of end-to-end simulation time,
because every instrument sits at chunk/phase granularity — never inside
the per-access loop.  This benchmark holds that promise to the fire.

It times the Figure 10 reference point (Oracle, Shared-L2 chosen design,
scale 16, 40 000 measured accesses) through :func:`execute_spec` three
times per repeat — telemetry disabled, telemetry enabled, and counter
timelines enabled — *interleaved* so machine-load drift cancels out of
the ratios, and takes the best of N for each side.  The gated claim is
the telemetry ratio on the timeline-off path (the default), not the
absolute seconds:

    overhead_ratio = enabled_seconds / disabled_seconds <= 1.02

Counter-timeline collection (``--timeline-interval``, PR 8) is opt-in
and *allowed* to cost more — its ratio is recorded informationally so
sampling-cost regressions are still visible in the committed record.

The record also keeps the enabled run's per-phase self-time totals so a
future regression can be localised (did translate grow? store I/O?).

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py              # full
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick      # CI
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --fail-above 1.02

Like bench_hot_path.py this bypasses the engine result store on purpose:
a cached lookup would measure the store, not the instrumented simulator.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402
from repro.engine.execute import execute_spec  # noqa: E402
from repro.engine.spec import RunSpec  # noqa: E402

#: The Figure 10 reference point: Oracle on the Shared-L2 chosen design.
FIG10_REFERENCE = RunSpec(
    workload="Oracle",
    tracked_level="L1",
    organization="cuckoo",
    ways=4,
    provisioning=1.0,
    scale=16,
    measure_accesses=40_000,
    seed=0,
)


#: The same point with counter-timeline sampling on (informational leg).
FIG10_TIMELINE = replace(FIG10_REFERENCE, timeline_interval=1_000)


def _time_point(spec: RunSpec = FIG10_REFERENCE) -> float:
    start = time.perf_counter()
    execute_spec(spec)
    return time.perf_counter() - start


def run_benchmark(repeats: int) -> Dict[str, object]:
    """Interleaved best-of-``repeats`` timing of disabled vs enabled."""
    obs.disable()
    obs.reset()
    _time_point()  # warm up: imports, sigma tables, allocator

    disabled: List[float] = []
    enabled: List[float] = []
    timeline: List[float] = []
    for _ in range(repeats):
        obs.disable()
        disabled.append(_time_point())
        timeline.append(_time_point(FIG10_TIMELINE))
        obs.enable()
        enabled.append(_time_point())

    phase_self_seconds = {
        name: stats["self_seconds"] for name, stats in obs.TRACER.totals().items()
    }
    obs.disable()
    obs.reset()

    best_disabled = min(disabled)
    best_enabled = min(enabled)
    best_timeline = min(timeline)
    return {
        "disabled_seconds": best_disabled,
        "enabled_seconds": best_enabled,
        "overhead_ratio": best_enabled / best_disabled,
        "timeline_seconds": best_timeline,
        "timeline_overhead_ratio": best_timeline / best_disabled,
        "disabled_samples": disabled,
        "enabled_samples": enabled,
        "timeline_samples": timeline,
        "enabled_phase_self_seconds": phase_self_seconds,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="3 repeats instead of 7 (CI smoke)"
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_obs_overhead.json"),
        help="where to write the JSON record (default: repo root)",
    )
    parser.add_argument(
        "--fail-above",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit non-zero if enabled/disabled exceeds RATIO (the gate: 1.02)",
    )
    args = parser.parse_args(argv)

    repeats = 3 if args.quick else 7
    print(
        f"telemetry overhead benchmark ({repeats} interleaved repeats)",
        file=sys.stderr,
    )
    measured = run_benchmark(repeats)

    record = {
        "reference_point": FIG10_REFERENCE.to_dict(),
        "quick": args.quick,
        "unix_time": time.time(),
        **measured,
    }
    output = Path(args.output)
    output.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    print(f"disabled (best of {repeats}): {measured['disabled_seconds']:.4f}s")
    print(f"enabled  (best of {repeats}): {measured['enabled_seconds']:.4f}s")
    print(f"overhead ratio:               {measured['overhead_ratio']:.4f}x")
    print(f"timeline (best of {repeats}): {measured['timeline_seconds']:.4f}s")
    print(
        "timeline overhead (informational): "
        f"{measured['timeline_overhead_ratio']:.4f}x"
    )
    for name, seconds in sorted(
        measured["enabled_phase_self_seconds"].items(), key=lambda kv: -kv[1]
    ):
        print(f"  phase {name:20s} {seconds:8.4f}s self")
    print(f"recorded to {output}")

    if args.fail_above is not None and measured["overhead_ratio"] > args.fail_above:
        print(
            f"FAIL: telemetry overhead {measured['overhead_ratio']:.4f}x "
            f"exceeds {args.fail_above:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
