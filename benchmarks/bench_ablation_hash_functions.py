"""Section 5.5 ablation — skewing vs. strong hash functions.

Checks the paper's finding: at a sensible provisioning factor the cheap
skewing functions match the strong hash functions (no measurable benefit),
while severely under-provisioned designs misbehave for both.
"""

from repro.experiments import ablation_hash_functions


def test_hash_function_ablation(benchmark, bench_scale, bench_measure, engine_runner):
    results = benchmark.pedantic(
        ablation_hash_functions.run,
        kwargs=dict(scale=bench_scale, measure_accesses=bench_measure,
                    runner=engine_runner),
        rounds=1,
        iterations=1,
    )
    print()
    print(ablation_hash_functions.format_table(results))

    well_skew = results["1x/skewing"]
    well_strong = results["1x/strong"]
    under_skew = results["0.5x/skewing"]
    under_strong = results["0.5x/strong"]

    # At 1x provisioning neither family forces invalidations and the attempt
    # counts are close — the strong functions buy essentially nothing.
    assert well_skew.forced_invalidation_rate < 0.002
    assert well_strong.forced_invalidation_rate < 0.002
    assert abs(
        well_skew.average_insertion_attempts - well_strong.average_insertion_attempts
    ) < 0.5

    # Under-provisioning degrades both families badly relative to 1x.
    assert under_skew.average_insertion_attempts > well_skew.average_insertion_attempts
    assert under_strong.average_insertion_attempts > well_strong.average_insertion_attempts
