"""Figure 7 — d-ary cuckoo hash characteristics.

Regenerates the average-insertion-attempts and insertion-failure-probability
curves as a function of occupancy for 2/3/4/8-ary cuckoo tables, and checks
the paper's observations: below 50 % occupancy 3-ary and wider tables insert
in (nearly) one attempt and never fail; at 65 % occupancy they still do not
fail; the 2-ary table degrades far earlier.
"""

from repro.experiments import fig07_hash_characteristics


def test_fig07_hash_characteristics(benchmark):
    results = benchmark.pedantic(
        fig07_hash_characteristics.run,
        kwargs=dict(capacity=16_384, num_keys=60_000),
        rounds=1,
        iterations=1,
    )
    print()
    print(fig07_hash_characteristics.format_table(results))

    for arity in (3, 4, 8):
        series = results[arity].as_series()
        for occupancy, (attempts, failures) in series.items():
            if occupancy < 0.5:
                assert attempts < 1.6
                assert failures == 0.0
            if occupancy < 0.65:
                assert failures == 0.0

    # The 2-ary table is unusable well before the wider tables degrade.
    two_ary = results[2].as_series()
    high_bins = [b for b in two_ary if 0.7 < b < 0.9]
    assert high_bins
    assert max(two_ary[b][1] for b in high_bins) > 0.25
