"""Figure 13 — power and area comparison of directory organizations.

Regenerates the per-core energy and area projections for every organization
in the paper's comparison (both configurations, 16-1024 cores) and checks
the headline claims: the Cuckoo directory's energy stays nearly flat while
Duplicate-Tag/Tagless grow linearly per core, and the Cuckoo organizations
are several times more area-efficient than the Sparse 8x organizations.
"""

from repro.experiments import fig13_power_area


def test_fig13_power_area(benchmark):
    results = benchmark.pedantic(fig13_power_area.run, rounds=1, iterations=1)
    print()
    print(fig13_power_area.format_table(results))

    ratios = fig13_power_area.headline_ratios(results)
    # Paper: "up to 80x more power-efficient than Tagless at 1024 cores".
    assert ratios["tagless_energy_ratio_1024"] > 10
    # Paper: "more than 7x area-efficiency over Sparse at 1024 cores"
    # (the model reproduces the over-provisioning ratio, ~5-8x).
    assert ratios["sparse_area_ratio_1024"] > 4
    # Paper: "up to 16x more energy-efficient than Duplicate-Tag at 16 cores".
    assert ratios["duplicate_tag_energy_ratio_16"] > 8
    # Paper: "up to 6x more area-efficient than Sparse at 16 cores".
    assert ratios["sparse_area_ratio_16"] > 4

    for result in results.values():
        # Cuckoo energy is nearly constant per core out to 1024 cores.
        assert result.energy("Cuckoo Coarse", 1024) < 2 * result.energy(
            "Cuckoo Coarse", 16
        )
        # Cuckoo area beats every Sparse 8x variant at every core count.
        for cores in result.core_counts:
            assert result.area("Cuckoo Coarse", cores) < result.area(
                "Sparse 8x Coarse", cores
            )
            assert result.area("Cuckoo Hierarchical", cores) < result.area(
                "Sparse 8x Hierarchical", cores
            )
