"""Figure 10 — average insertion attempts of the chosen Cuckoo designs.

Regenerates the per-workload average-insertion-attempt bars for the designs
selected in Section 5.3 (4-way 1x Shared-L2, 3-way 1.5x Private-L2) and
checks that the averages stay well below two attempts, with the
private-footprint-heavy workloads at the high end.
"""

from repro.experiments import fig10_insertion_attempts


def test_fig10_insertion_attempts(benchmark, bench_scale, bench_measure, bench_workloads, engine_runner):
    result = benchmark.pedantic(
        fig10_insertion_attempts.run,
        kwargs=dict(
            workloads=bench_workloads,
            scale=bench_scale,
            measure_accesses=bench_measure,
            runner=engine_runner,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(fig10_insertion_attempts.format_table(result))
    from repro.analysis.report import reference_summary

    print()
    print(reference_summary("fig10", result))

    for per_workload in result.configurations().values():
        for workload, attempts in per_workload.items():
            assert 1.0 <= attempts < 2.6, (workload, attempts)
    # ocean (nearly 100% unique private blocks) needs the most attempts in
    # the Private-L2 configuration.
    assert result.private_l2["ocean"] == max(result.private_l2.values())
