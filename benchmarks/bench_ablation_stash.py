"""Ablation — does the Cuckoo directory need an overflow stash?

The paper argues (related work, Section 6) that unlike general hardware
hash tables, the Cuckoo *directory* does not need a CAM stash for overflow
victims because it may simply invalidate them, and overflows are rare at
sensible provisioning.  This ablation measures both variants at the chosen
1x design point and at an aggressive 1/2x under-provisioned point: the
stash only matters where the design is already impractical.
"""

from repro.config import CacheLevel
from repro.core.stashed_cuckoo import StashedCuckooDirectory
from repro.experiments import common
from repro.analysis.tables import format_percentage, render_table
from repro.workloads.suite import get_workload


def _stashed_factory(system, ways, provisioning, stash_entries):
    sets = common.cuckoo_factory(system, ways=ways, provisioning=provisioning)(1, 0).num_sets

    def make(num_caches, slice_id):
        return StashedCuckooDirectory(
            num_caches=num_caches,
            num_sets=sets,
            num_ways=ways,
            stash_entries=stash_entries,
        )

    return make


def _run_ablation(scale, measure):
    system = common.scaled_system(CacheLevel.L1, scale=scale)
    workload = get_workload("Oracle")
    results = {}
    for provisioning in (1.0, 0.5):
        for stash in (0, 8):
            factory = _stashed_factory(system, ways=4, provisioning=provisioning,
                                        stash_entries=stash)
            run = common.run_workload(
                workload, system, factory, measure_accesses=measure
            )
            stats = run.result.directory_stats
            results[(provisioning, stash)] = stats
    return results


def test_stash_ablation(benchmark, bench_scale, bench_measure):
    results = benchmark.pedantic(
        _run_ablation,
        args=(bench_scale, bench_measure),
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            f"{provisioning:g}x",
            stash,
            f"{stats.average_insertion_attempts:.2f}",
            format_percentage(stats.forced_invalidation_rate, 3),
        ]
        for (provisioning, stash), stats in sorted(results.items(), reverse=True)
    ]
    print()
    print(
        render_table(
            ["Provisioning", "Stash entries", "Avg attempts", "Invalidation rate"],
            rows,
            title="Ablation: overflow stash vs. plain Cuckoo directory (Oracle, Shared-L2)",
        )
    )

    # At the paper's 1x design point the plain Cuckoo directory is already
    # (near-)conflict-free, so the stash cannot buy anything meaningful.
    assert results[(1.0, 0)].forced_invalidation_rate < 0.002
    assert results[(1.0, 8)].forced_invalidation_rate <= (
        results[(1.0, 0)].forced_invalidation_rate + 1e-9
    )
    # Under-provisioned designs misbehave for both variants; the stash never
    # makes things worse.
    assert results[(0.5, 8)].forced_invalidation_rate <= (
        results[(0.5, 0)].forced_invalidation_rate + 1e-9
    )
    assert results[(0.5, 0)].average_insertion_attempts > (
        results[(1.0, 0)].average_insertion_attempts
    )
