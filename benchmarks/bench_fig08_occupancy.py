"""Figure 8 — average directory occupancy per workload.

Regenerates the per-workload occupancy bars for the Shared-L2 and
Private-L2 configurations and checks the paper's qualitative findings:
server workloads leave the directory well under 1x thanks to instruction
and data sharing, while the scientific/DSS private footprints push the
Private-L2 configuration towards full occupancy (ocean being the extreme).
"""

from repro.experiments import fig08_occupancy


def test_fig08_occupancy(benchmark, bench_scale, bench_measure, bench_workloads, engine_runner):
    result = benchmark.pedantic(
        fig08_occupancy.run,
        kwargs=dict(
            workloads=bench_workloads,
            scale=bench_scale,
            measure_accesses=bench_measure,
            runner=engine_runner,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(fig08_occupancy.format_table(result))
    from repro.analysis.report import reference_summary

    print()
    print(reference_summary("fig08", result))

    assert result.private_l2["ocean"] > 0.85
    for name in bench_workloads:
        assert 0.0 < result.shared_l2[name] <= 1.1
        assert 0.0 < result.private_l2[name] <= 1.1
    # Server workloads share instructions and data, so Shared-L2 occupancy
    # stays clearly below the worst case.
    server = [n for n in bench_workloads if n not in ("em3d", "ocean")]
    assert all(result.shared_l2[name] < 0.95 for name in server)
