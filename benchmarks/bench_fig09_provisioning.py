"""Figure 9 — Cuckoo directory sizing sweep.

Regenerates the insertion-attempt / forced-invalidation sweep over the
paper's directory geometries (2x down to 3/8x provisioning) for both
configurations and checks the exponential degradation of under-provisioned
designs versus the clean behaviour at 1x / 1.5x.
"""

from repro.experiments import fig09_provisioning


def test_fig09_provisioning(benchmark, bench_scale, bench_measure, bench_workloads, engine_runner):
    result = benchmark.pedantic(
        fig09_provisioning.run,
        kwargs=dict(
            workloads=bench_workloads,
            scale=bench_scale,
            measure_accesses=bench_measure,
            runner=engine_runner,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(fig09_provisioning.format_table(result))

    for points in result.configurations().values():
        by_provisioning = {p.provisioning: p for p in points}
        factors = sorted(by_provisioning)
        # Attempts and invalidations grow monotonically (within tolerance) as
        # the directory shrinks below 1x capacity.
        most = by_provisioning[factors[-1]]
        least = by_provisioning[factors[0]]
        assert least.average_insertion_attempts > most.average_insertion_attempts
        assert least.forced_invalidation_rate >= most.forced_invalidation_rate
        # Generously provisioned designs never invalidate; the smallest
        # (3/8x) design degrades dramatically.
        assert most.forced_invalidation_rate < 1e-6
        assert least.forced_invalidation_rate > 0.01
