"""Microbenchmarks of the core data structures.

These are conventional pytest-benchmark timings (many rounds) of the hot
operations every experiment exercises: cuckoo-hash insertion at the paper's
target occupancy, directory lookups, and the sparse directory's insertion
path, so performance regressions in the core library are visible.
"""

import itertools

from repro.core.cuckoo_directory import CuckooDirectory
from repro.core.cuckoo_hash import CuckooHashTable
from repro.directories.sparse import SparseDirectory


def test_cuckoo_hash_insert_at_half_occupancy(benchmark):
    table = CuckooHashTable(num_ways=4, num_sets=4096)
    for key in range(table.capacity // 2):
        table.insert(key)
    counter = itertools.count(start=1_000_000)

    def insert_and_remove():
        key = next(counter)
        table.insert(key)
        table.remove(key)

    benchmark(insert_and_remove)
    assert table.occupancy() <= 0.51


def test_cuckoo_directory_lookup(benchmark):
    directory = CuckooDirectory(num_caches=32, num_sets=2048, num_ways=4)
    for block in range(2048):
        directory.add_sharer(block, block % 32)

    benchmark(directory.lookup, 1024)
    assert directory.lookup(1024).found


def test_cuckoo_directory_add_remove_sharer(benchmark):
    directory = CuckooDirectory(num_caches=32, num_sets=2048, num_ways=4)
    for block in range(1024):
        directory.add_sharer(block, 0)

    def add_remove():
        directory.add_sharer(100, 7)
        directory.remove_sharer(100, 7)

    benchmark(add_remove)


def test_sparse_directory_insert_with_conflicts(benchmark):
    directory = SparseDirectory(num_caches=32, num_sets=256, num_ways=8)
    counter = itertools.count()

    def insert():
        block = next(counter)
        directory.add_sharer(block, block % 32)

    benchmark(insert)
