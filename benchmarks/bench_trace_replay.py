#!/usr/bin/env python
"""Trace replay vs. live generation on the Figure 10 reference point.

Measures the cost of *producing* the access stream — what the trace
subsystem removes from every repeated run — on the Figure 10 reference
point (Oracle, Shared-L2 chosen design, scale 16, 40 000 measured
accesses plus warm-up):

* ``generate_seconds`` — drain the live ``Workload.trace_chunks`` stream
  for the run's full access budget (RNG draws, Zipf inverse-CDF lookups,
  numpy selection);
* ``replay_seconds`` — drain the same accesses from a recorded trace
  (memory-mapped array slicing);
* ``record_seconds`` — the one-off cost of making the recording;
* ``end_to_end_live`` / ``end_to_end_replay`` — full simulations of the
  reference point from each source (identical results, see the
  record→replay golden tests).  These are *context only*: simulation time
  dominates both, so their ratio hovers near 1.0 and says nothing about
  the trace subsystem (an earlier ``end_to_end_speedup`` metric derived
  from them was retired for exactly that reason).

The gated claim is the stream-production ratio: ``replay_speedup =
generate_seconds / replay_seconds`` must be **≥ 3x** — that is the cost
the subsystem removes from every repeated run.  Everything is recorded to
``BENCH_trace_replay.json``; ``--fail-below`` turns the claim into an
exit code for CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_trace_replay.py            # full
    PYTHONPATH=src python benchmarks/bench_trace_replay.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_trace_replay.py --fail-below 3.0

Like ``bench_hot_path.py``, this script bypasses the engine's result
store: a cached result would time a cache lookup, not the replay path.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import CacheLevel  # noqa: E402
from repro.engine.execute import execute_spec  # noqa: E402
from repro.engine.spec import RunSpec  # noqa: E402
from repro.experiments.common import scaled_system  # noqa: E402
from repro.traces import TraceRecorder, TraceReplayWorkload, accesses_for_run  # noqa: E402
from repro.workloads.suite import get_workload  # noqa: E402

#: The Figure 10 reference point (same as bench_hot_path.py).
FIG10_REFERENCE = RunSpec(
    workload="Oracle",
    tracked_level="L1",
    organization="cuckoo",
    ways=4,
    provisioning=1.0,
    scale=16,
    measure_accesses=40_000,
    seed=0,
)

#: Minimum stream-production speedup the trace subsystem promises.
TARGET_SPEEDUP = 3.0

#: Replay stream production is zero-copy array slicing (~0.1 ms per full
#: drain), far below what one perf_counter window measures reliably; each
#: timed sample drains this many times and reports the mean.
REPLAY_DRAIN_REPEATS = 25


def _best_of(fn: Callable[[], None], repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _drain(chunks, budget: int) -> int:
    """Consume ``budget`` accesses from a chunk stream (the producer cost)."""
    seen = 0
    for cores, _addresses, _writes, _instrs in chunks:
        seen += len(cores)
        if seen >= budget:
            break
    return seen


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="single repeat and a smaller access budget (CI smoke)",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_trace_replay.json"),
        help="where to write the JSON record (default: repo root)",
    )
    parser.add_argument(
        "--fail-below", type=float, default=None, metavar="RATIO",
        help="exit non-zero if the replay speedup is below RATIO",
    )
    args = parser.parse_args(argv)

    repeats = 1 if args.quick else 3
    spec = FIG10_REFERENCE
    if args.quick:
        spec = RunSpec.from_dict({**spec.to_dict(), "measure_accesses": 8_000})

    system = scaled_system(
        CacheLevel(spec.tracked_level), num_cores=spec.num_cores, scale=spec.scale
    )
    workload = get_workload(spec.workload)
    budget = accesses_for_run(workload, system, spec.measure_accesses)
    print(
        f"trace-replay benchmark: {spec.workload} scale={spec.scale}, "
        f"{budget} accesses, {repeats} repeat(s)",
        file=sys.stderr,
    )

    with tempfile.TemporaryDirectory(prefix="bench-trace-") as tmp:
        trace_path = Path(tmp) / "reference.npz"

        def record() -> None:
            TraceRecorder().record(
                workload, system, trace_path, budget, seed=spec.seed, scale=spec.scale
            )

        current: Dict[str, float] = {}
        current["record_seconds"] = _best_of(record, 1)  # one-off by design

        def generate() -> None:
            _drain(workload.trace_chunks(system, seed=spec.seed), budget)

        # Opened once, replayed many times — that is the subsystem's whole
        # usage model, so the one-off open/mmap cost is not part of the
        # per-replay stream-production time.
        recording = TraceReplayWorkload(trace_path)

        def replay() -> None:
            for _ in range(REPLAY_DRAIN_REPEATS):
                _drain(recording.trace_chunks(system, seed=spec.seed), budget)

        def end_to_end_live() -> None:
            execute_spec(spec)

        replay_spec = RunSpec.from_dict({**spec.to_dict(), "trace": str(trace_path)})

        def end_to_end_replay() -> None:
            execute_spec(replay_spec)

        for name, bench in (
            ("generate_seconds", generate),
            ("replay_seconds", replay),
            ("end_to_end_live_seconds", end_to_end_live),
            ("end_to_end_replay_seconds", end_to_end_replay),
        ):
            bench()  # warm up (page cache, sigma tables, imports)
            current[name] = _best_of(bench, repeats)
            if name == "replay_seconds":
                current[name] /= REPLAY_DRAIN_REPEATS
            print(f"  {name:28s} {current[name]:9.4f}s", file=sys.stderr)
        trace_bytes = trace_path.stat().st_size

    replay_speedup = (
        current["generate_seconds"] / current["replay_seconds"]
        if current["replay_seconds"] > 0
        else float("inf")
    )
    record_payload = {
        "reference_point": spec.to_dict(),
        "quick": args.quick,
        "accesses": budget,
        "trace_bytes": trace_bytes,
        "current_seconds": current,
        "replay_speedup_vs_generation": replay_speedup,
        "target_speedup": TARGET_SPEEDUP,
        "unix_time": time.time(),
    }
    output = Path(args.output)
    output.write_text(json.dumps(record_payload, indent=2, sort_keys=True) + "\n")

    print(f"\n{'metric':28s} {'seconds':>9s}")
    for name, value in current.items():
        print(f"{name:28s} {value:8.4f}s")
    print(f"\nstream production: replay is {replay_speedup:.2f}x faster than generation")
    print(
        "end-to-end times above are context only (simulation dominates both "
        "runs; their ratio is not a trace-subsystem metric)"
    )
    print(f"recorded to {output}")

    threshold = args.fail_below
    if threshold is not None and replay_speedup < threshold:
        print(
            f"FAIL: replay speedup {replay_speedup:.2f}x below {threshold:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
