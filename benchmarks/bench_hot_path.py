#!/usr/bin/env python
"""Hot-path benchmark: before/after numbers for the allocation-free rewrite.

Measures the per-access simulation hot path end-to-end on the Figure 10
reference point (Oracle workload, Shared-L2 chosen design, scale 16,
40 000 measured accesses) plus four component microbenchmarks, compares
each against the pinned pre-rewrite baseline, and records everything to
``BENCH_hot_path.json``.

The baseline numbers were measured on the pre-rewrite tree interleaved
with the rewritten tree on the same machine (alternating runs, best of
three each) so machine-load drift cancels out of the ratio.  Absolute
numbers on another machine will differ; the *ratio* is the claim:

* end-to-end fig10 reference point: >= 6x vs the pre-PR-2 tree, i.e.
  >= 1.8x on top of PR 2's allocation-free rewrite (the array-native
  core: flat-state caches, integer coherence protocol, batched chunk
  front-end, candidate-index caching);
* cuckoo insert/remove and skewing index throughput: ~2x

The record also carries ``fig10_speedup_vs_prev_committed`` — the fig10
time committed by the previous perf PR divided by the current time —
which is the per-PR claim CI's ``repro-run compare`` gate watches.

``--kernel {auto,vector,scalar}`` selects the batch front-end for the
fig10 point: the whole-chunk kernel (``vector``), the per-access scalar
loop (``scalar``), or the per-chunk heuristic (``auto``, the default and
what the committed record uses).  Both paths are bit-identical; keeping
both benchmarked pins the kernel's win and catches a regression in
either.  The fig10 reference point is *miss-dominated* (the scaled L1s
hit only ~21% of accesses), so its time is governed by the miss drain;
the ``drain_heavy_50k`` metric isolates that further with a ~0% hit-rate
stream, and the ``drain_vector_speedup`` leg times the same stream with
the vectorized drain pipeline forced off (``DEFAULT_DRAIN_PIPELINE =
"scalar"``, the pre-pipeline protocol loop) — alternated run-for-run
in the same process, so bursty host load lands on both sides of the
ratio and the drain win is gated independently of hit retirement and
of machine drift.  A second alternated leg times the fig10 point
itself with the scalar drain (``fig10_drain_pipeline_speedup``): the
end-to-end claim with both sides measured seconds apart instead of
against a cross-session pin.

Usage::

    PYTHONPATH=src python benchmarks/bench_hot_path.py            # full
    PYTHONPATH=src python benchmarks/bench_hot_path.py --quick    # 1 repeat
    PYTHONPATH=src python benchmarks/bench_hot_path.py --kernel scalar
    PYTHONPATH=src python benchmarks/bench_hot_path.py --fail-drain-below 1.3
    PYTHONPATH=src python benchmarks/bench_hot_path.py --output out.json

Unlike the figure benchmarks, this script bypasses the engine's result
store on purpose: a cached result would time a cache lookup, not the
simulator.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import CacheLevel  # noqa: E402
from repro.core.cuckoo_hash import CuckooHashTable  # noqa: E402
from repro.directories.sharers import FullBitVector  # noqa: E402
from repro.engine.execute import execute_spec  # noqa: E402
from repro.engine.spec import RunSpec  # noqa: E402
from repro.experiments.common import scaled_system  # noqa: E402
from repro.hashing.skewing import SkewingHashFamily  # noqa: E402
from repro.hashing.strong import StrongHashFamily  # noqa: E402
from repro.workloads.suite import get_workload  # noqa: E402

#: Pre-rewrite timings (seconds), measured on commit 0abe6e5 interleaved
#: with the rewritten tree on the same machine (best of 3 per metric,
#: median of two alternating sessions).
PRE_PR_BASELINE: Dict[str, float] = {
    "fig10_point_seconds": 2.170,
    "sharer_60k_ops_seconds": 0.00648,
    "cuckoo_6k_ops_seconds": 0.02828,
    "skewing_indices_50k_seconds": 0.24681,
    "trace_100k_seconds": 0.17169,
    # The drain-heavy stream predates no rewrite (the metric was added
    # with the vectorized drain pipeline), so its "before" is the scalar
    # drain on the same tree: best of 3 with DEFAULT_DRAIN_PIPELINE
    # forced to "scalar" — the pre-pipeline protocol loop, unchanged.
    "drain_heavy_50k_seconds": 0.3268,
}

#: fig10 point time committed by the whole-chunk-kernel PR
#: (``current_seconds`` of the BENCH_hot_path.json committed by PR 7,
#: measured on the same machine class as the baseline above).  The
#: vectorized drain pipeline's per-PR claim is measured against this.
PREV_COMMITTED_FIG10_SECONDS = 0.2788

#: The Figure 10 reference point: Oracle on the Shared-L2 chosen design.
FIG10_REFERENCE = RunSpec(
    workload="Oracle",
    tracked_level="L1",
    organization="cuckoo",
    ways=4,
    provisioning=1.0,
    scale=16,
    measure_accesses=40_000,
    seed=0,
)


def _best_of(fn: Callable[[], None], repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _bench_fig10_point() -> None:
    execute_spec(FIG10_REFERENCE)


def _bench_sharers() -> None:
    sharers = FullBitVector(32)
    for step in range(20_000):
        cache_id = step & 31
        sharers.add(cache_id)
        sharers.contains(cache_id)
        sharers.remove(cache_id)


def _bench_cuckoo() -> None:
    table = CuckooHashTable(4, 1024, hash_family=StrongHashFamily(4, 1024, seed=3))
    for key in range(3000):
        table.insert(key, key)
    for key in range(3000):
        table.remove(key)


_SKEW_FAMILY = SkewingHashFamily(4, 512)
_SKEW_ADDRESSES = list(range(0, 50_000 * 64, 64))


def _bench_skewing() -> None:
    indices = _SKEW_FAMILY.indices
    for address in _SKEW_ADDRESSES:
        indices(address)


def _bench_trace() -> None:
    system = scaled_system(CacheLevel.L1, scale=16)
    stream = get_workload("Oracle").trace(system, seed=0)
    for _ in range(100_000):
        next(stream)


_DRAIN_STREAM = None


def _drain_heavy_stream():
    """50k accesses over a footprint ~30x the tracked L1 capacity.

    The hit rate collapses to ~1%, so virtually every access reaches the
    miss drain: the stream isolates the drain pipeline from the hit
    retirement the whole-chunk kernel already vectorizes.  30% writes
    keep the write-miss/invalidation protocol in the mix; the shared
    footprint keeps directory-hit reads (sharer additions, owner
    downgrades) common.  Built once and reused — the arrays, not their
    generation, are what the benchmark times.
    """
    global _DRAIN_STREAM
    if _DRAIN_STREAM is None:
        import numpy as np

        rng = np.random.default_rng(7)
        n = 50_000
        cores = rng.integers(0, 16, size=n)
        addresses = rng.integers(0, 1 << 16, size=n) << 6
        writes = rng.random(n) < 0.3
        instrs = np.zeros(n, dtype=bool)
        _DRAIN_STREAM = (cores, addresses, writes, instrs)
    return _DRAIN_STREAM


def _bench_drain_heavy() -> None:
    from repro.coherence.system import TiledCMP
    from repro.engine.execute import directory_factory_for_spec

    config = scaled_system(CacheLevel.L1, scale=16)
    factory = directory_factory_for_spec(FIG10_REFERENCE, config)
    system = TiledCMP(config, factory)
    cores, addresses, writes, instrs = _drain_heavy_stream()
    total = len(cores)
    for start in range(0, total, 4096):
        system.access_batch(
            cores, addresses, writes, instrs, start, min(start + 4096, total)
        )


METRICS: Dict[str, Callable[[], None]] = {
    "fig10_point_seconds": _bench_fig10_point,
    "sharer_60k_ops_seconds": _bench_sharers,
    "cuckoo_6k_ops_seconds": _bench_cuckoo,
    "skewing_indices_50k_seconds": _bench_skewing,
    "trace_100k_seconds": _bench_trace,
    "drain_heavy_50k_seconds": _bench_drain_heavy,
}


def _alternated_pair(fn, repeats, system_module):
    """Best-of-``repeats`` for ``fn`` under both drain pipelines.

    The two sides alternate run-for-run (vector, scalar, vector, ...)
    so bursty host load lands on both legs equally instead of on
    whichever leg happened to run later; each side's minimum then comes
    from the same quiet moments.  Returns ``(vector_min, scalar_min)``.
    """
    vector_times = []
    scalar_times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        vector_times.append(time.perf_counter() - start)
        system_module.DEFAULT_DRAIN_PIPELINE = "scalar"
        try:
            start = time.perf_counter()
            fn()
            scalar_times.append(time.perf_counter() - start)
        finally:
            system_module.DEFAULT_DRAIN_PIPELINE = "auto"
    return min(vector_times), min(scalar_times)


def run_benchmarks(repeats: int) -> Dict[str, float]:
    current: Dict[str, float] = {}
    for name, bench in METRICS.items():
        bench()  # warm up (imports, sigma tables, allocator)
        current[name] = _best_of(bench, repeats)
        print(f"  {name:32s} {current[name]:9.4f}s", file=sys.stderr)
    return current


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="single repeat per metric (CI smoke)"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="timed repeats per metric (best-of-N; default 3, or 1 with "
        "--quick) — raise on noisy hosts to sharpen the minimum",
    )
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_hot_path.json"),
        help="where to write the JSON record (default: repo root)",
    )
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit non-zero if the fig10 end-to-end speedup is below RATIO",
    )
    parser.add_argument(
        "--fail-drain-below",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit non-zero if drain_vector_speedup (vectorized drain "
        "pipeline vs scalar drain on the drain-heavy stream, measured "
        "interleaved) is below RATIO",
    )
    parser.add_argument(
        "--kernel",
        choices=("auto", "vector", "scalar"),
        default="auto",
        help="batch-kernel selection for the fig10 point: 'vector' forces "
        "the whole-chunk kernel, 'scalar' forces the per-access loop, "
        "'auto' (default, what the committed record uses) lets the system "
        "choose per chunk — keeps both paths benchmarked",
    )
    args = parser.parse_args(argv)

    # The toggle works through the module default read at system
    # construction, so every system the benchmarks build below obeys it.
    import repro.coherence.system as _system_module

    _system_module.DEFAULT_BATCH_KERNEL = args.kernel

    repeats = args.repeats if args.repeats else (1 if args.quick else 3)
    print(f"hot-path benchmark ({repeats} repeat(s) per metric)", file=sys.stderr)
    current = run_benchmarks(repeats)

    # The drain leg: the same drain-heavy stream with the vectorized
    # drain pipeline forced off, alternated run-for-run in the same
    # process so the ratio is host-independent.  The scalar drain is
    # the pre-pipeline protocol loop, so this gates the drain win on
    # its own — fig10 and trace_100k mix in hit retirement and trace
    # production.
    drain_vector, drain_scalar = _alternated_pair(
        _bench_drain_heavy, repeats, _system_module
    )
    drain_vector_speedup = (
        drain_scalar / drain_vector if drain_vector > 0 else float("inf")
    )
    print(
        f"  {'drain_heavy_50k (scalar drain)':32s} {drain_scalar:9.4f}s",
        file=sys.stderr,
    )

    # End-to-end drain-pipeline ratio on the reference point, measured
    # the same way: fig10 with the vectorized drain vs fig10 with
    # DEFAULT_DRAIN_PIPELINE forced to "scalar", alternated.  This is
    # the comparison behind fig10_speedup_vs_prev_committed but with
    # both sides measured seconds apart on the same host instead of
    # against a pin from another session's load phase.
    fig10_vector, fig10_scalar_drain = _alternated_pair(
        _bench_fig10_point, repeats, _system_module
    )
    fig10_pipeline_speedup = (
        fig10_scalar_drain / fig10_vector if fig10_vector > 0 else float("inf")
    )
    print(
        f"  {'fig10_point (scalar drain)':32s} {fig10_scalar_drain:9.4f}s",
        file=sys.stderr,
    )

    speedups = {
        name: PRE_PR_BASELINE[name] / current[name]
        for name in METRICS
        if current[name] > 0
    }
    fig10_vs_prev = (
        PREV_COMMITTED_FIG10_SECONDS / current["fig10_point_seconds"]
        if current["fig10_point_seconds"] > 0
        else float("inf")
    )
    record = {
        "reference_point": FIG10_REFERENCE.to_dict(),
        "quick": args.quick,
        "kernel": args.kernel,
        "baseline_pre_pr_seconds": PRE_PR_BASELINE,
        "prev_committed_fig10_seconds": PREV_COMMITTED_FIG10_SECONDS,
        "current_seconds": current,
        "drain_heavy_vector_seconds": drain_vector,
        "drain_heavy_scalar_seconds": drain_scalar,
        "drain_vector_speedup": drain_vector_speedup,
        "fig10_vector_drain_seconds": fig10_vector,
        "fig10_scalar_drain_seconds": fig10_scalar_drain,
        "fig10_drain_pipeline_speedup": fig10_pipeline_speedup,
        "speedup_vs_baseline": speedups,
        "fig10_speedup_vs_prev_committed": fig10_vs_prev,
        "unix_time": time.time(),
    }
    output = Path(args.output)
    output.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    print(f"\n{'metric':32s} {'before':>9s} {'after':>9s} {'speedup':>8s}")
    for name in METRICS:
        print(
            f"{name:32s} {PRE_PR_BASELINE[name]:8.4f}s {current[name]:8.4f}s "
            f"{speedups.get(name, float('nan')):7.2f}x"
        )
    print(
        f"\nfig10 vs previously committed ({PREV_COMMITTED_FIG10_SECONDS:.4f}s): "
        f"{fig10_vs_prev:.2f}x"
    )
    print(
        f"drain pipeline vs scalar drain ({drain_scalar:.4f}s): "
        f"{drain_vector_speedup:.2f}x"
    )
    print(
        f"fig10 vs scalar drain, alternated ({fig10_scalar_drain:.4f}s): "
        f"{fig10_pipeline_speedup:.2f}x"
    )
    print(f"recorded to {output}")

    fig10_speedup = speedups.get("fig10_point_seconds", 0.0)
    if args.fail_below is not None and fig10_speedup < args.fail_below:
        print(
            f"FAIL: fig10 speedup {fig10_speedup:.2f}x below {args.fail_below:.2f}x",
            file=sys.stderr,
        )
        return 1
    if (
        args.fail_drain_below is not None
        and drain_vector_speedup < args.fail_drain_below
    ):
        print(
            f"FAIL: drain speedup {drain_vector_speedup:.2f}x below "
            f"{args.fail_drain_below:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
