"""Figure 4 — area and energy scalability of the baseline organizations.

Regenerates both panels of Figure 4 (energy relative to a 1 MB L2 tag
lookup, area relative to a 1 MB L2 data array) for the baseline directory
organizations from 16 to 1024 cores, and checks the scaling trends the
paper reports.
"""

from repro.experiments import fig04_scalability


def test_fig04_scalability(benchmark):
    results = benchmark.pedantic(fig04_scalability.run, rounds=1, iterations=1)
    print()
    print(fig04_scalability.format_table(results))

    for result in results.values():
        # Duplicate-Tag energy grows roughly linearly per core...
        assert result.energy("Duplicate-Tag", 1024) > 30 * result.energy(
            "Duplicate-Tag", 16
        )
        # ...and so does Tagless energy, while Sparse Coarse stays nearly flat.
        assert result.energy("Tagless", 1024) > 30 * result.energy("Tagless", 16)
        assert result.energy("Sparse 8x Coarse", 1024) < 2 * result.energy(
            "Sparse 8x Coarse", 16
        )
        # Tagless is the most area-efficient baseline at scale.
        assert result.area("Tagless", 1024) < result.area("Sparse 8x Coarse", 1024)
        assert result.area("Tagless", 1024) < result.area("Duplicate-Tag", 1024)
