"""Engine benchmark — parallel speedup and cache warm-up.

Runs one representative grid (the Figure 8 points of the benchmark
workload subset, on both system configurations) three ways and reports
wall-clock:

* **serial** — one in-process worker, no cache;
* **parallel** — a worker pool (``$REPRO_BENCH_WORKERS`` or the CPU
  count), no cache; results must be identical to the serial run;
* **cold vs. warm cache** — the same grid against a fresh result store
  twice: the first run simulates every point, the second simulates none.

The parallel speedup assertion is deliberately loose (pool start-up and
result pickling cost real time on small grids and single-core machines);
the benchmark's main job is to report the numbers and to prove
bit-identical results and a fully incremental warm run.
"""

from __future__ import annotations

import time

from repro.engine import ParallelRunner, ResultStore
from repro.experiments import fig08_occupancy


def _timed(runner: ParallelRunner, grid):
    started = time.perf_counter()
    report = runner.run(grid)
    return report, time.perf_counter() - started


def test_engine_parallel_speedup(
    benchmark, bench_scale, bench_measure, bench_workloads, bench_workers
):
    grid = fig08_occupancy.grid(
        workloads=bench_workloads, scale=bench_scale, measure_accesses=bench_measure
    )
    workers = bench_workers

    serial_report, serial_seconds = _timed(ParallelRunner(workers=1), grid)
    parallel_runner = ParallelRunner(workers=workers)
    parallel_report = benchmark.pedantic(
        parallel_runner.run, args=(grid,), rounds=1, iterations=1
    )
    parallel_seconds = parallel_report.elapsed_seconds
    speedup = serial_seconds / parallel_seconds if parallel_seconds else float("inf")

    print()
    print(f"grid points:      {len(grid)}")
    print(f"serial:           {serial_seconds:.2f}s")
    print(f"parallel (x{workers}):   {parallel_seconds:.2f}s")
    print(f"speedup:          {speedup:.2f}x")

    # Workers rebuild every system from its spec: bit-identical results.
    assert serial_report.ok and parallel_report.ok
    assert parallel_report.results == serial_report.results
    # The pool must not collapse into pathological slowdown.
    if workers > 1 and len(grid) >= workers:
        assert speedup > 0.5, (speedup, workers)


def test_engine_cache_warm_run_simulates_nothing(
    tmp_path, bench_scale, bench_measure, bench_workloads
):
    grid = fig08_occupancy.grid(
        workloads=bench_workloads, scale=bench_scale, measure_accesses=bench_measure
    )
    store = ResultStore(tmp_path / "results.jsonl")
    runner = ParallelRunner(workers=1, store=store)

    cold_report, cold_seconds = _timed(runner, grid)
    warm_report, warm_seconds = _timed(runner, grid)

    print()
    print(f"cold (all simulated): {cold_seconds:.2f}s ({cold_report.simulated} points)")
    print(f"warm (all cached):    {warm_seconds:.4f}s ({warm_report.cached} hits)")

    assert cold_report.simulated == len(grid) and cold_report.cached == 0
    assert warm_report.simulated == 0 and warm_report.cached == len(grid)
    assert warm_report.results == cold_report.results
    assert warm_seconds < cold_seconds
