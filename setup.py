"""Package metadata and entry points.

Installing the package (``pip install -e .``) puts the ``repro`` library
on the path and installs the ``repro-run`` console script — the unified
CLI of the parallel experiment engine (equivalent to
``python -m repro.engine``).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_ROOT = Path(__file__).resolve().parent
_README = _ROOT / "README.md"

# Single source of truth for the version: repro.__version__.
_VERSION = re.search(
    r'^__version__ = "([^"]+)"',
    (_ROOT / "src" / "repro" / "__init__.py").read_text(encoding="utf-8"),
    re.MULTILINE,
).group(1)

setup(
    name="repro-cuckoo-directory",
    version=_VERSION,
    description=(
        "Reproduction of the Cuckoo Directory (HPCA 2011) with a parallel, "
        "cached experiment engine"
    ),
    long_description=_README.read_text(encoding="utf-8") if _README.exists() else "",
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro-run=repro.engine.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Hardware",
    ],
)
