#!/usr/bin/env python3
"""Quickstart: build a Cuckoo directory, run a workload through a tiled CMP.

This example walks through the public API end to end:

1. print the paper's system parameters (Table 1);
2. use the :class:`repro.CuckooDirectory` directly as a data structure;
3. build a scaled-down 16-core Shared-L2 system, replay the OLTP "Oracle"
   workload through it, and print the directory-level metrics the paper
   reports (occupancy, insertion attempts, forced invalidations).

Run with:  python examples/quickstart.py
"""

from repro import SHARED_L2_16CORE, CuckooDirectory
from repro.analysis.tables import format_percentage, render_table
from repro.config import CacheLevel
from repro.experiments import common
from repro.workloads.suite import get_workload


def demonstrate_directory_data_structure() -> None:
    """The Cuckoo directory as a standalone structure."""
    print("== Cuckoo directory as a data structure ==")
    directory = CuckooDirectory(num_caches=32, num_sets=512, num_ways=4)

    # Three L1 caches pull in the same block; the first insert allocates an
    # entry, the rest only update the sharer set.
    block = 0x7F3A2
    for cache_id in (0, 5, 17):
        result = directory.add_sharer(block, cache_id)
        print(
            f"  add_sharer(cache {cache_id:2d}): new entry={result.inserted_new_entry}, "
            f"attempts={result.attempts}"
        )
    print(f"  sharers of block {block:#x}: {sorted(directory.lookup(block).sharers)}")

    # A write from cache 5 invalidates the other sharers.
    result = directory.acquire_exclusive(block, 5)
    print(f"  write by cache 5 invalidates: {sorted(result.coherence_invalidations)}")
    print(f"  sharers now: {sorted(directory.lookup(block).sharers)}")
    print()


def print_table1() -> None:
    print("== Table 1: system parameters ==")
    config = SHARED_L2_16CORE
    rows = [
        ["Cores", config.num_cores],
        ["L1 caches", "split I/D, 64KB, 2-way, 64B blocks"],
        ["L2 NUCA cache", "1MB per core, 16-way, 64B blocks"],
        ["Pages", f"{config.page_bytes} bytes"],
        ["Tracked caches", config.num_tracked_caches],
        ["Directory slices", config.num_directory_slices],
        ["Worst-case blocks per slice (1x)", config.tracked_frames_per_slice],
    ]
    print(render_table(["Parameter", "Value"], rows))
    print()


def run_small_simulation() -> None:
    print("== Trace-driven simulation (scaled-down Shared-L2 system) ==")
    system_config = common.scaled_system(CacheLevel.L1, scale=32)
    workload = get_workload("Oracle")
    factory = common.cuckoo_factory(system_config, ways=4, provisioning=1.0)
    run = common.run_workload(
        workload, system_config, factory, measure_accesses=20_000
    )
    stats = run.result.directory_stats
    rows = [
        ["Workload", workload.name],
        ["Measured accesses", run.result.accesses],
        ["Tracked-cache hit rate", format_percentage(run.result.cache_hit_rate, 1)],
        ["Directory occupancy (vs 1x)", format_percentage(run.occupancy_vs_worst_case, 1)],
        ["Average insertion attempts", f"{stats.average_insertion_attempts:.2f}"],
        ["Forced invalidation rate", format_percentage(stats.forced_invalidation_rate, 3)],
        ["Coherence messages", run.result.traffic.total_messages],
    ]
    print(render_table(["Metric", "Value"], rows))


def main() -> None:
    print_table1()
    demonstrate_directory_data_structure()
    run_small_simulation()


if __name__ == "__main__":
    main()
