#!/usr/bin/env python3
"""Characterise d-ary cuckoo hashing and the worst-case insertion tails.

Regenerates the two hash-level analyses of the paper:

* Figure 7 — average insertion attempts and insertion-failure probability
  of 2/3/4/8-ary cuckoo tables as a function of occupancy (this is what
  justifies the "2x capacity is always enough, and usually unnecessary"
  sizing rule); and
* Figure 11 — the insertion-attempt distribution of the chosen directory
  designs under their worst-behaved workloads (Oracle on Shared-L2, ocean
  on Private-L2), showing the exponentially decaying tail.

Run with:  python examples/cuckoo_hash_analysis.py
"""

from repro.experiments import fig07_hash_characteristics, fig11_worst_case


def main() -> None:
    print("Characterising d-ary cuckoo hashing (Figure 7)...")
    hash_results = fig07_hash_characteristics.run(capacity=8192, num_keys=30_000)
    print(fig07_hash_characteristics.format_table(hash_results))
    print()

    print("Worst-case insertion-attempt distributions (Figure 11)...")
    worst_case = fig11_worst_case.run(scale=32, measure_accesses=12_000)
    print(fig11_worst_case.format_table(worst_case))
    print()

    for label, distribution in worst_case.distributions.items():
        first_attempt = distribution.get(1, 0.0) * 100
        print(f"  {label}: {first_attempt:.1f}% of insertions succeed on the first attempt")


if __name__ == "__main__":
    main()
