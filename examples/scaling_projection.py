#!/usr/bin/env python3
"""Project directory energy and area to 1024 cores (Figures 4 and 13).

Uses the analytical energy/area model to regenerate the paper's scaling
projection for every directory organization, prints the normalised series,
and summarises the headline ratios (Cuckoo vs. Tagless energy at 1024
cores, Cuckoo vs. Sparse area, ...).

Run with:  python examples/scaling_projection.py
"""

from repro.analysis.tables import render_table
from repro.experiments import fig13_power_area


def main() -> None:
    results = fig13_power_area.run()
    print(fig13_power_area.format_table(results))
    print()

    ratios = fig13_power_area.headline_ratios(results)
    rows = [
        ["Cuckoo vs Tagless energy @1024 cores",
         f"{ratios['tagless_energy_ratio_1024']:.1f}x more efficient"],
        ["Cuckoo vs Sparse 8x area @1024 cores",
         f"{ratios['sparse_area_ratio_1024']:.1f}x smaller"],
        ["Cuckoo vs Duplicate-Tag energy @16 cores",
         f"{ratios['duplicate_tag_energy_ratio_16']:.1f}x more efficient"],
        ["Cuckoo vs Sparse 8x area @16 cores",
         f"{ratios['sparse_area_ratio_16']:.1f}x smaller"],
    ]
    print(render_table(["Headline comparison", "Model projection"], rows,
                       title="Paper headline claims, as reproduced by the model"))


if __name__ == "__main__":
    main()
