#!/usr/bin/env python3
"""Compare directory organizations on the same workloads (Figure 12 style).

Replays an OLTP workload and the ocean scientific kernel against four
directory organizations — Sparse 2x, Sparse 8x, Skewed 2x and the Cuckoo
directory — on identical scaled-down systems, and prints the forced
invalidation rates and capacities, illustrating the paper's central claim:
the Cuckoo directory reaches (near-)zero invalidations with *half* the
capacity of the 2x baselines.

Run with:  python examples/directory_comparison.py
"""

from repro.analysis.tables import format_percentage, render_table
from repro.config import CacheLevel
from repro.experiments import common
from repro.workloads.suite import get_workload

WORKLOADS = ["Oracle", "ocean"]
SCALE = 32
MEASURE = 15_000


def organizations(system, tracked_level):
    if tracked_level is CacheLevel.L1:
        cuckoo = common.cuckoo_factory(system, ways=4, provisioning=1.0)
        cuckoo_label = "Cuckoo 4-way (1x)"
    else:
        cuckoo = common.cuckoo_factory(system, ways=3, provisioning=1.5)
        cuckoo_label = "Cuckoo 3-way (1.5x)"
    return {
        "Sparse 8-way (2x)": common.sparse_factory(system, ways=8, provisioning=2.0),
        "Sparse 8-way (8x)": common.sparse_factory(system, ways=8, provisioning=8.0),
        "Skewed 4-way (2x)": common.skewed_factory(system, ways=4, provisioning=2.0),
        cuckoo_label: cuckoo,
    }


def compare(tracked_level: CacheLevel, title: str) -> None:
    system = common.scaled_system(tracked_level, scale=SCALE)
    rows = []
    for workload_name in WORKLOADS:
        workload = get_workload(workload_name)
        for org_name, factory in organizations(system, tracked_level).items():
            run = common.run_workload(
                workload, system, factory, measure_accesses=MEASURE
            )
            stats = run.result.directory_stats
            rows.append(
                [
                    workload_name,
                    org_name,
                    run.directory_capacity_total,
                    f"{stats.average_insertion_attempts:.2f}",
                    format_percentage(stats.forced_invalidation_rate, 3),
                ]
            )
    print(
        render_table(
            ["Workload", "Organization", "Capacity (entries)",
             "Avg attempts", "Forced invalidation rate"],
            rows,
            title=title,
        )
    )
    print()


def main() -> None:
    compare(CacheLevel.L1, "Shared-L2 configuration (directory tracks L1 I/D caches)")
    compare(CacheLevel.L2, "Private-L2 configuration (directory tracks private L2 caches)")


if __name__ == "__main__":
    main()
