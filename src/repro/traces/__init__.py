"""Trace capture, replay, multi-programmed mixes, and sampled simulation.

This package decouples *input preparation* from *experimentation*:

* :mod:`~repro.traces.format` — the compact ``.npz``-backed trace
  container (parallel per-access arrays + JSON header with a SHA-256
  content fingerprint), memory-mapped on read;
* :mod:`~repro.traces.recorder` — :class:`TraceRecorder` freezes any
  workload's chunked stream to disk, once;
* :mod:`~repro.traces.replay` — :class:`TraceReplayWorkload` streams a
  recording back through the simulator, bit-identical to live generation;
* :mod:`~repro.traces.mix` — :class:`MixWorkload` composes
  multi-programmed scenarios (disjoint core groups, disjoint address
  bands, proportional deterministic interleave);
* :mod:`~repro.traces.sampling` — :class:`SampledTrace` applies
  SMARTS-style alternating skip/measure windows with measured-window-only
  statistics.

Everything here implements or consumes the ordinary
:class:`~repro.workloads.base.Workload` interface, so the engine
(``RunSpec.trace`` / ``RunSpec.mix``), the experiment drivers and the
``repro-run trace``/``repro-run mix`` CLI verbs all compose freely.
"""

from repro.traces.format import TRACE_FORMAT_VERSION, TraceFile, TraceHeader, write_trace
from repro.traces.mix import PROGRAM_STRIDE_BITS, MixWorkload, parse_mix
from repro.traces.recorder import TraceRecorder, accesses_for_run
from repro.traces.replay import TraceReplayWorkload
from repro.traces.sampling import SampledRun, SampledTrace

__all__ = [
    "TRACE_FORMAT_VERSION",
    "TraceFile",
    "TraceHeader",
    "write_trace",
    "TraceRecorder",
    "accesses_for_run",
    "TraceReplayWorkload",
    "MixWorkload",
    "parse_mix",
    "PROGRAM_STRIDE_BITS",
    "SampledRun",
    "SampledTrace",
]
