"""On-disk trace format: a compact, chunked, ``.npz``-backed container.

A recorded trace is a standard uncompressed NumPy ``.npz`` archive holding
four parallel per-access arrays plus a JSON header:

========== ============ ====================================================
member      dtype        contents
========== ============ ====================================================
``header``  ``uint8``    UTF-8 JSON :class:`TraceHeader` (workload name and
                         category, generation seed, core count, scale,
                         block size, access count, content fingerprint)
``cores``   ``int32``    issuing core of each access
``addresses`` ``int64``  virtual byte address of each access
``writes``  ``bool``     write flag per access
``instrs``  ``bool``     instruction-fetch flag per access
========== ============ ====================================================

``np.savez`` stores members uncompressed (``ZIP_STORED``), which means each
member's ``.npy`` payload sits as one contiguous byte range inside the
archive.  :class:`TraceFile` exploits that to *memory-map* the arrays
(:func:`_map_member`): replaying a multi-gigabyte trace touches only the
pages the simulator actually streams, and several replays share one page
cache.  If a member turns out to be compressed (a foreign archive), the
reader transparently falls back to a normal in-memory load.

The ``fingerprint`` is a SHA-256 over the header's identity fields and the
raw bytes of all four arrays, so a trace file can be verified end-to-end
(:meth:`TraceFile.verify`) and the engine can tell two recordings apart
without replaying them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import zipfile
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np

__all__ = ["TRACE_FORMAT_VERSION", "TraceHeader", "TraceFile", "write_trace"]

#: Bumped whenever the container layout changes incompatibly.
TRACE_FORMAT_VERSION = 1

#: Array members of the archive, in fingerprint order.
_ARRAY_MEMBERS = ("cores", "addresses", "writes", "instrs")

#: dtypes each member is normalised to before writing/fingerprinting.
_MEMBER_DTYPES = {
    "cores": np.int32,
    "addresses": np.int64,
    "writes": np.bool_,
    "instrs": np.bool_,
}


@dataclass(frozen=True)
class TraceHeader:
    """Identity and provenance of one recorded trace.

    ``num_cores``, ``scale`` and ``block_bytes`` pin down the generating
    :class:`~repro.config.SystemConfig` closely enough that replay can
    refuse a mismatched system instead of silently producing a different
    simulation point.  ``scale`` is informational (``None`` when the trace
    was recorded from a hand-built system).
    """

    workload: str
    category: str
    seed: int
    num_cores: int
    block_bytes: int
    num_accesses: int
    fingerprint: str
    scale: Optional[int] = None
    format_version: int = TRACE_FORMAT_VERSION

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceHeader":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown TraceHeader fields: {sorted(unknown)}")
        required = {
            f.name for f in fields(cls) if f.default is dataclasses.MISSING
        }
        missing = required - set(data)
        if missing:
            raise ValueError(f"trace header missing fields: {sorted(missing)}")
        return cls(**data)

    def describe(self) -> str:
        """Multi-line human-readable summary (``repro-run trace info``)."""
        scale = self.scale if self.scale is not None else "unknown"
        return "\n".join(
            [
                f"workload:     {self.workload} ({self.category})",
                f"seed:         {self.seed}",
                f"cores:        {self.num_cores}",
                f"scale:        {scale}",
                f"block bytes:  {self.block_bytes}",
                f"accesses:     {self.num_accesses}",
                f"fingerprint:  {self.fingerprint}",
                f"format:       v{self.format_version}",
            ]
        )


def _identity_payload(header: TraceHeader) -> bytes:
    """The header fields covered by the fingerprint, canonically encoded."""
    identity = {
        "workload": header.workload,
        "category": header.category,
        "seed": header.seed,
        "num_cores": header.num_cores,
        "block_bytes": header.block_bytes,
        "num_accesses": header.num_accesses,
        "format_version": header.format_version,
    }
    return json.dumps(identity, sort_keys=True, separators=(",", ":")).encode("utf-8")


def compute_fingerprint(header: TraceHeader, arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over the identity fields and every array's raw bytes.

    Hashes straight from the arrays' buffers (no ``tobytes`` copy), so
    verifying a memory-mapped multi-gigabyte trace streams pages instead
    of materialising each member in RAM.
    """
    digest = hashlib.sha256(_identity_payload(header))
    for name in _ARRAY_MEMBERS:
        array = arrays[name]
        if array.dtype != _MEMBER_DTYPES[name] or not array.flags.c_contiguous:
            array = np.ascontiguousarray(array, dtype=_MEMBER_DTYPES[name])
        digest.update(array.data)
    return digest.hexdigest()


def write_trace(
    path: Union[str, Path],
    header: TraceHeader,
    cores: np.ndarray,
    addresses: np.ndarray,
    writes: np.ndarray,
    instrs: np.ndarray,
) -> TraceHeader:
    """Write one trace archive; returns the header with its fingerprint set.

    The arrays must be parallel (same length, one entry per access); they
    are normalised to the format's dtypes before writing so the on-disk
    bytes — and therefore the fingerprint — do not depend on what the
    recorder happened to accumulate in.
    """
    arrays = {
        "cores": np.ascontiguousarray(cores, dtype=np.int32),
        "addresses": np.ascontiguousarray(addresses, dtype=np.int64),
        "writes": np.ascontiguousarray(writes, dtype=np.bool_),
        "instrs": np.ascontiguousarray(instrs, dtype=np.bool_),
    }
    lengths = {name: len(array) for name, array in arrays.items()}
    if len(set(lengths.values())) != 1:
        raise ValueError(f"trace arrays must be parallel, got lengths {lengths}")
    if lengths["cores"] != header.num_accesses:
        raise ValueError(
            f"header says {header.num_accesses} accesses, arrays hold {lengths['cores']}"
        )
    fingerprint = compute_fingerprint(header, arrays)
    stamped = TraceHeader.from_dict({**header.to_dict(), "fingerprint": fingerprint})
    header_bytes = np.frombuffer(
        json.dumps(stamped.to_dict(), sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # np.savez appends ".npz" to suffix-less paths; write via a file handle so
    # the trace lands exactly where the caller asked.
    with path.open("wb") as handle:
        np.savez(handle, header=header_bytes, **arrays)
    return stamped


def _map_member(path: Path, name: str) -> Optional[np.ndarray]:
    """Memory-map one uncompressed ``.npy`` member of the archive.

    Returns ``None`` when the member is compressed or the local zip entry
    is not laid out the way ``np.savez`` writes it, in which case the
    caller falls back to ``np.load``.
    """
    member = name + ".npy"
    with zipfile.ZipFile(path) as archive:
        try:
            info = archive.getinfo(member)
        except KeyError:
            return None
        if info.compress_type != zipfile.ZIP_STORED:
            return None
    with path.open("rb") as handle:
        handle.seek(info.header_offset)
        local_header = handle.read(30)
        if len(local_header) != 30 or local_header[:4] != b"PK\x03\x04":
            return None
        name_length = int.from_bytes(local_header[26:28], "little")
        extra_length = int.from_bytes(local_header[28:30], "little")
        handle.seek(info.header_offset + 30 + name_length + extra_length)
        try:
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
            else:
                return None
        except ValueError:
            return None
        if fortran or dtype.hasobject:
            return None
        offset = handle.tell()
    return np.memmap(path, dtype=dtype, mode="r", offset=offset, shape=shape)


class TraceFile:
    """A recorded trace opened for replay.

    Arrays are resolved lazily and memory-mapped where the archive layout
    allows it; ``mapped`` reports whether the zero-copy path was taken for
    every array (tests and ``trace info`` surface it).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        if not self._path.exists():
            raise FileNotFoundError(f"trace file not found: {self._path}")
        try:
            with np.load(self._path) as archive:
                if "header" not in archive.files:
                    raise ValueError(f"{self._path} is not a repro trace (no header)")
                missing = [
                    name for name in _ARRAY_MEMBERS if name not in archive.files
                ]
                if missing:
                    raise ValueError(
                        f"{self._path} is missing trace arrays: {', '.join(missing)}"
                    )
                header_bytes = bytes(archive["header"].tobytes())
        except (zipfile.BadZipFile, OSError) as exc:
            raise ValueError(f"{self._path} is not a readable trace archive: {exc}")
        self._header = TraceHeader.from_dict(json.loads(header_bytes.decode("utf-8")))
        if self._header.format_version > TRACE_FORMAT_VERSION:
            raise ValueError(
                f"{self._path} uses trace format v{self._header.format_version}; "
                f"this library reads up to v{TRACE_FORMAT_VERSION}"
            )
        self._arrays: Optional[Dict[str, np.ndarray]] = None
        self._mapped = False

    @property
    def path(self) -> Path:
        return self._path

    @property
    def header(self) -> TraceHeader:
        return self._header

    @property
    def mapped(self) -> bool:
        """True when every array is memory-mapped (arrays must be loaded)."""
        self.arrays()
        return self._mapped

    def __len__(self) -> int:
        return self._header.num_accesses

    def arrays(self) -> Dict[str, np.ndarray]:
        """The four parallel per-access arrays, memory-mapped if possible."""
        if self._arrays is not None:
            return self._arrays
        arrays: Dict[str, np.ndarray] = {}
        mapped = True
        fallback: Optional[Dict[str, np.ndarray]] = None
        for name in _ARRAY_MEMBERS:
            array = _map_member(self._path, name)
            if array is None:
                mapped = False
                if fallback is None:
                    with np.load(self._path) as archive:
                        fallback = {m: archive[m] for m in _ARRAY_MEMBERS}
                array = fallback[name]
            if len(array) != self._header.num_accesses:
                raise ValueError(
                    f"{self._path}: array {name!r} holds {len(array)} entries, "
                    f"header says {self._header.num_accesses}"
                )
            arrays[name] = array
        self._arrays = arrays
        self._mapped = mapped
        return arrays

    def iter_chunks(
        self, chunk_size: int = 16384
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Stream the trace as :data:`~repro.coherence.simulator.TraceChunk`\\ s.

        Chunks are zero-copy numpy array views over the (memory-mapped)
        trace arrays — the batched simulation front-end consumes them with
        no per-element Python conversion at all.  Chunk boundaries carry no
        meaning: the flattened stream is the trace.
        """
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        arrays = self.arrays()
        cores = arrays["cores"]
        addresses = arrays["addresses"]
        writes = arrays["writes"]
        instrs = arrays["instrs"]
        total = self._header.num_accesses
        for start in range(0, total, chunk_size):
            end = min(start + chunk_size, total)
            yield (
                cores[start:end],
                addresses[start:end],
                writes[start:end],
                instrs[start:end],
            )

    def verify(self) -> bool:
        """Recompute the fingerprint over the full file; True when intact."""
        return compute_fingerprint(self._header, self.arrays()) == self._header.fingerprint

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceFile({str(self._path)!r}, workload={self._header.workload!r}, "
            f"accesses={self._header.num_accesses})"
        )
