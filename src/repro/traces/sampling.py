"""SMARTS-style systematic sampling of recorded traces.

Replaying a long recording end to end is cheap compared to generating it,
but still linear in its length.  Systematic sampling (Wunderlich et al.,
SMARTS) cuts that cost: the trace is consumed as alternating windows —
``skip_window`` accesses executed for micro-architectural state only
(caches, directories and the page mapper advance; statistics are
discarded) followed by ``measure_window`` accesses whose statistics are
kept.  Every skipped window doubles as functional warming for the
measured window after it, so the merged measured-window statistics
estimate the full-trace result at a fraction of the measured volume.

:class:`SampledTrace` packages the policy (window sizes, window budget)
with a trace source and drives
:meth:`repro.coherence.simulator.TraceSimulator.run_sampled`; the source
can be a recorded :class:`~repro.traces.replay.TraceReplayWorkload`, a
live generator, or a :class:`~repro.traces.mix.MixWorkload`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.coherence.simulator import SimulationResult, TraceSimulator
from repro.coherence.system import TiledCMP
from repro.config import SystemConfig
from repro.workloads.base import Workload

__all__ = ["SampledRun", "SampledTrace"]


@dataclass(frozen=True)
class SampledRun:
    """Outcome of one sampled simulation."""

    result: SimulationResult
    windows: int
    measure_window: int
    skip_window: int

    @property
    def measured_accesses(self) -> int:
        return self.result.accesses

    @property
    def sampled_fraction(self) -> float:
        """Fraction of the consumed trace that was measured."""
        window = self.measure_window + self.skip_window
        return self.measure_window / window if window else 0.0


class SampledTrace:
    """A trace source plus a systematic-sampling policy.

    Parameters
    ----------
    workload:
        The access-stream source (typically a
        :class:`~repro.traces.replay.TraceReplayWorkload`; any workload
        works).
    measure_window:
        Accesses measured per window.
    skip_window:
        Accesses executed unmeasured (functional warming) before each
        measured window.
    max_windows:
        Optional budget; ``None`` samples until the trace runs dry (live
        infinite generators must set a budget).

    ``run``'s ``occupancy_sample_interval`` defaults to 2 000 accesses,
    matching the engine's :class:`~repro.engine.spec.RunSpec` default so
    sampled and unsampled replays report occupancy at the same cadence.
    """

    def __init__(
        self,
        workload: Workload,
        measure_window: int,
        skip_window: int,
        max_windows: Optional[int] = None,
    ) -> None:
        if measure_window <= 0:
            raise ValueError("measure_window must be positive")
        if skip_window < 0:
            raise ValueError("skip_window must be non-negative")
        if max_windows is not None and max_windows <= 0:
            raise ValueError("max_windows must be positive")
        self._workload = workload
        self._measure_window = measure_window
        self._skip_window = skip_window
        self._max_windows = max_windows

    @property
    def workload(self) -> Workload:
        return self._workload

    def run(
        self,
        system_config: SystemConfig,
        directory_factory: Callable[[int, int], "object"],
        seed: int = 0,
        occupancy_sample_interval: int = 2_000,
        timeline_interval: Optional[int] = None,
    ) -> SampledRun:
        """Build a system and sample the trace through it.

        ``timeline_interval`` enables window-cadence counter timelines
        (:mod:`repro.obs.timeline`): every *completed* measured window
        contributes one sample per channel, so the timeline only ever
        reflects accesses that also count toward the merged statistics.
        """
        system = TiledCMP(system_config, directory_factory)
        simulator = TraceSimulator(
            system,
            occupancy_sample_interval=occupancy_sample_interval,
            timeline_interval=timeline_interval,
        )
        chunks = self._workload.trace_chunks(system_config, seed=seed)
        result, windows = simulator.run_sampled(
            chunks,
            measure_window=self._measure_window,
            skip_window=self._skip_window,
            max_windows=self._max_windows,
        )
        return SampledRun(
            result=result,
            windows=windows,
            measure_window=self._measure_window,
            skip_window=self._skip_window,
        )
