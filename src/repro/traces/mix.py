"""Multi-programmed workload mixes.

The paper evaluates nine single-application workloads; real consolidated
servers run several programs side by side on one tile, each confined to a
core group.  :class:`MixWorkload` composes that scenario out of existing
workloads (live generators *or* recorded-trace replays): every component
program is assigned a disjoint core group, its stream is generated against
a core-group-sized system, and its cores/addresses are remapped into the
combined machine:

* **core remap** — component-local core ``c`` becomes ``c + base_core`` of
  its group, so program 0 occupies cores ``[0, n0)``, program 1 occupies
  ``[n0, n0+n1)``, and so on;
* **address remap** — every program's virtual addresses are lifted into a
  private ``2**PROGRAM_STRIDE_BITS``-byte band (program ``i`` owns
  ``[i << 42, (i+1) << 42)``), so the programs' footprints can never alias
  to the same block even though every generator lays its regions out from
  the same canonical base.  The band is block- and page-aligned, so block
  identity within a program is untouched.

Streams are interleaved access-for-access with a deterministic *stride
schedule* proportional to core counts (an 8-core program issues twice the
accesses of a 4-core one, finely interleaved rather than in bursts), which
is what the home directories would observe from concurrently running
programs.  The composed stream is itself a
:class:`~repro.workloads.base.Workload`, so mixes record, replay, sample
and sweep exactly like single programs.
"""

from __future__ import annotations

import hashlib
import re
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.coherence.system import MemoryAccess
from repro.config import SystemConfig
from repro.traces.replay import TraceReplayWorkload
from repro.workloads.base import Workload, WorkloadCategory

__all__ = ["PROGRAM_STRIDE_BITS", "MixWorkload", "parse_mix"]

#: Each program's virtual-address band is 2**42 bytes wide; with 48-bit
#: physical addresses (Table 1) that allows 64 programs per mix, far more
#: than one tile has core groups for.
PROGRAM_STRIDE_BITS = 42

_COMPONENT_PATTERN = re.compile(r"^(\d+)x(.+)$")


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def _stride_schedule(weights: Sequence[int]) -> np.ndarray:
    """One round of the deterministic proportional interleave.

    Classic stride scheduling: component ``i``'s ``t``-th access of the
    round lands at fractional position ``(t + 0.5) / w_i``; sorting all
    positions (ties broken by component index) yields a round of length
    ``sum(weights)`` in which every component appears ``w_i`` times,
    maximally spread out.
    """
    slots: List[Tuple[float, int]] = []
    for index, weight in enumerate(weights):
        for t in range(weight):
            slots.append(((t + 0.5) / weight, index))
    slots.sort()
    return np.asarray([index for _, index in slots], dtype=np.int64)


class _ComponentStream:
    """Buffered chunk stream of one mix component (arrays + cursor)."""

    def __init__(self, workload: Workload, system: SystemConfig, seed: int) -> None:
        self._chunks = workload.trace_chunks(system, seed=seed)
        self._parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self._buffered = 0
        self._exhausted = False

    def ensure(self, count: int) -> int:
        """Buffer at least ``count`` accesses (or all that remain)."""
        while self._buffered < count and not self._exhausted:
            try:
                cores, addresses, writes, instrs = next(self._chunks)
            except StopIteration:
                self._exhausted = True
                break
            self._parts.append(
                (
                    np.asarray(cores, dtype=np.int64),
                    np.asarray(addresses, dtype=np.int64),
                    np.asarray(writes, dtype=np.bool_),
                    np.asarray(instrs, dtype=np.bool_),
                )
            )
            self._buffered += len(self._parts[-1][0])
        return self._buffered

    def take(self, count: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Pop exactly ``count`` buffered accesses as four parallel arrays."""
        if count > self._buffered:
            raise ValueError("take() beyond the buffered window")
        fields: List[List[np.ndarray]] = [[], [], [], []]
        remaining = count
        while remaining > 0:
            part = self._parts[0]
            size = len(part[0])
            if size <= remaining:
                for store, array in zip(fields, part):
                    store.append(array)
                self._parts.pop(0)
                remaining -= size
            else:
                for store, array in zip(fields, part):
                    store.append(array[:remaining])
                self._parts[0] = tuple(array[remaining:] for array in part)
                remaining = 0
        self._buffered -= count
        return tuple(
            parts[0] if len(parts) == 1 else np.concatenate(parts) for parts in fields
        )


class MixWorkload(Workload):
    """A multi-programmed scenario: workloads pinned to disjoint core groups.

    Parameters
    ----------
    components:
        ``(workload, cores)`` pairs in core-group order.  Each core count
        must be a power of two (the per-program generating system inherits
        the library's power-of-two core constraint) and the counts must sum
        to the combined system's core count at generation time.
    name:
        Display name; defaults to the canonical mix spec, e.g.
        ``"8xApache+8xocean"``.
    """

    def __init__(
        self,
        components: Sequence[Tuple[Workload, int]],
        name: Optional[str] = None,
    ) -> None:
        if not components:
            raise ValueError("a mix needs at least one component")
        for workload, cores in components:
            if not isinstance(workload, Workload):
                raise TypeError(
                    f"mix components are (Workload, cores) pairs, got {type(workload).__name__}"
                )
            if not _is_power_of_two(cores):
                raise ValueError(
                    f"component core counts must be powers of two, got {cores} "
                    f"for {workload.name!r}"
                )
        if len(components) > (1 << (48 - PROGRAM_STRIDE_BITS)):
            raise ValueError("too many components for the program address bands")
        self._components: Tuple[Tuple[Workload, int], ...] = tuple(
            (workload, int(cores)) for workload, cores in components
        )
        spec = "+".join(f"{cores}x{workload.name}" for workload, cores in self._components)
        super().__init__(name if name is not None else spec, WorkloadCategory.MIX)

    @property
    def components(self) -> Tuple[Tuple[Workload, int], ...]:
        return self._components

    @property
    def total_cores(self) -> int:
        return sum(cores for _, cores in self._components)

    @staticmethod
    def component_seed(seed: int, index: int) -> int:
        """Per-program seed derivation (distinct streams for repeated programs)."""
        return seed + 1_000_003 * index

    @staticmethod
    def program_base(index: int) -> int:
        """Base virtual address of program ``index``'s private band."""
        return index << PROGRAM_STRIDE_BITS

    def trace_chunks(
        self, system: SystemConfig, seed: int = 0, chunk_size: int = 4096
    ) -> Iterator[tuple]:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        weights = [cores for _, cores in self._components]
        total = sum(weights)
        if total != system.num_cores:
            raise ValueError(
                f"mix {self.name!r} spans {total} cores but the system has "
                f"{system.num_cores}"
            )
        base_cores = np.cumsum([0] + weights[:-1])
        streams: List[_ComponentStream] = []
        for index, (workload, cores) in enumerate(self._components):
            subsystem = system.with_cores(cores)
            # Replay components are frozen recordings: they carry their own
            # seed and reject any other, so hand it straight back to them.
            if isinstance(workload, TraceReplayWorkload):
                component_seed = workload.header.seed
            else:
                component_seed = self.component_seed(seed, index)
            streams.append(_ComponentStream(workload, subsystem, component_seed))

        schedule = _stride_schedule(weights)
        round_positions = [
            np.flatnonzero(schedule == index) for index in range(len(weights))
        ]
        rounds_per_chunk = max(1, chunk_size // total)
        max_local_address = 1 << PROGRAM_STRIDE_BITS

        while True:
            available_rounds = rounds_per_chunk
            for stream, weight in zip(streams, weights):
                buffered = stream.ensure(rounds_per_chunk * weight)
                available_rounds = min(available_rounds, buffered // weight)
            if available_rounds == 0:
                return  # a finite component (a replayed trace) ran dry
            size = available_rounds * total
            out_cores = np.empty(size, dtype=np.int64)
            out_addresses = np.empty(size, dtype=np.int64)
            out_writes = np.empty(size, dtype=np.bool_)
            out_instrs = np.empty(size, dtype=np.bool_)
            round_offsets = (np.arange(available_rounds) * total)[:, None]
            for index, (stream, weight) in enumerate(zip(streams, weights)):
                cores, addresses, writes, instrs = stream.take(
                    available_rounds * weight
                )
                if len(addresses) and int(addresses.max()) >= max_local_address:
                    raise ValueError(
                        f"component {self._components[index][0].name!r} generated an "
                        f"address beyond its {1 << PROGRAM_STRIDE_BITS:#x}-byte band"
                    )
                positions = (round_positions[index][None, :] + round_offsets).ravel()
                out_cores[positions] = cores + int(base_cores[index])
                out_addresses[positions] = addresses + self.program_base(index)
                out_writes[positions] = writes
                out_instrs[positions] = instrs
            yield (out_cores, out_addresses, out_writes, out_instrs)

    def trace(self, system: SystemConfig, seed: int = 0) -> Iterator[MemoryAccess]:
        return self._trace_via_chunks(system, seed)

    def core_group(self, index: int) -> Tuple[int, int]:
        """``[start, end)`` core range of component ``index``."""
        weights = [cores for _, cores in self._components]
        start = sum(weights[:index])
        return start, start + weights[index]

    def trace_fingerprint(self) -> Optional[str]:
        """Combined content fingerprint of the trace-backed components.

        ``None`` when every component is a live generator.  Covers each
        replay component's position and recording fingerprint, so the
        engine can key cached results to the recordings' *contents* rather
        than their paths (re-recording a file changes the fingerprint and
        therefore misses the cache).
        """
        parts = [
            f"{index}:{workload.header.fingerprint}"
            for index, (workload, _cores) in enumerate(self._components)
            if isinstance(workload, TraceReplayWorkload)
        ]
        if not parts:
            return None
        return hashlib.sha256("+".join(parts).encode("utf-8")).hexdigest()


def parse_mix(
    spec: str,
    resolve: Optional[Callable[[str], Workload]] = None,
) -> MixWorkload:
    """Parse a mix spec string like ``"8xApache+8xocean"`` into a workload.

    Each ``+``-separated part is ``<cores>x<program>`` where ``<program>``
    is a Table 2 workload name or ``@<path>`` naming a recorded trace file
    (replayed via :class:`TraceReplayWorkload`).  ``resolve`` overrides how
    bare names are looked up (defaults to the Table 2 suite).
    """
    if resolve is None:
        from repro.workloads.suite import get_workload as resolve

    parts = [part.strip() for part in spec.split("+") if part.strip()]
    if not parts:
        raise ValueError(f"empty mix spec {spec!r}")
    components: List[Tuple[Workload, int]] = []
    for part in parts:
        match = _COMPONENT_PATTERN.match(part)
        if match is None:
            raise ValueError(
                f"bad mix component {part!r} (expected '<cores>x<workload>', "
                f"e.g. '8xApache+8xocean')"
            )
        cores = int(match.group(1))
        name = match.group(2)
        if name.startswith("@"):
            workload: Workload = TraceReplayWorkload(name[1:])
        else:
            try:
                workload = resolve(name)
            except KeyError as exc:
                raise ValueError(str(exc.args[0]) if exc.args else str(exc))
        components.append((workload, cores))
    return MixWorkload(components, name=spec)
