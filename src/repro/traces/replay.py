"""Replaying recorded traces as first-class workloads.

:class:`TraceReplayWorkload` adapts a :class:`~repro.traces.format.TraceFile`
to the :class:`~repro.workloads.base.Workload` interface, so everything
that consumes workloads — :func:`repro.experiments.common.run_workload`,
the engine's :func:`~repro.engine.execute.execute_spec`, mixes, sampling —
replays recordings through the exact same machinery that drives live
generation.  Replay streams memory-mapped array slices straight into
:meth:`~repro.coherence.simulator.TraceSimulator.run_chunks`; for the same
``(system, seed)`` the flattened stream is byte-for-byte the recorded one,
so the resulting :class:`~repro.coherence.simulator.SimulationResult` is
bit-identical to live generation at a fraction of the generation cost.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Union

from repro.coherence.system import MemoryAccess
from repro.config import SystemConfig
from repro.traces.format import TraceFile, TraceHeader
from repro.workloads.base import Workload, WorkloadCategory

__all__ = ["TraceReplayWorkload"]

#: Replay chunk granularity.  Chunk boundaries carry no semantics (warm-up
#: and sampling are per-access), so replay is free to use larger chunks
#: than the generators' draw-order-pinned 4096.
REPLAY_CHUNK_SIZE = 16384


class TraceReplayWorkload(Workload):
    """A workload whose accesses come from a recorded trace file.

    The replayed stream is frozen data: the ``seed`` argument of
    :meth:`trace_chunks` is accepted for interface compatibility but must
    match the seed the trace was recorded with — replaying recording A
    under seed B would silently mislabel the simulation point.
    """

    def __init__(self, path: Union[str, Path, TraceFile]) -> None:
        trace = path if isinstance(path, TraceFile) else TraceFile(path)
        self._trace = trace
        header = trace.header
        super().__init__(header.workload, WorkloadCategory(header.category))

    @property
    def trace_file(self) -> TraceFile:
        return self._trace

    @property
    def header(self) -> TraceHeader:
        return self._trace.header

    @property
    def path(self) -> Path:
        return self._trace.path

    @property
    def num_accesses(self) -> int:
        return self._trace.header.num_accesses

    def _validate_system(self, system: SystemConfig, seed: int) -> None:
        header = self._trace.header
        problems = []
        if system.num_cores != header.num_cores:
            problems.append(
                f"system has {system.num_cores} cores, trace was recorded on "
                f"{header.num_cores}"
            )
        if system.block_bytes != header.block_bytes:
            problems.append(
                f"system block size is {system.block_bytes} B, trace was recorded "
                f"with {header.block_bytes} B blocks"
            )
        if seed != header.seed:
            problems.append(
                f"requested seed {seed}, trace was recorded with seed {header.seed}"
            )
        if problems:
            raise ValueError(
                f"trace {self._trace.path} cannot replay on this system: "
                + "; ".join(problems)
            )

    def trace_chunks(
        self, system: SystemConfig, seed: int = 0, chunk_size: int = REPLAY_CHUNK_SIZE
    ) -> Iterator[tuple]:
        """Stream the recorded accesses in chunks (finite, then exhausted)."""
        self._validate_system(system, seed)
        return self._trace.iter_chunks(chunk_size=chunk_size)

    def trace(self, system: SystemConfig, seed: int = 0) -> Iterator[MemoryAccess]:
        return self._trace_via_chunks(system, seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceReplayWorkload({str(self._trace.path)!r}, "
            f"{self.name!r}, accesses={self.num_accesses})"
        )
