"""Recording live workload streams into trace files.

:class:`TraceRecorder` wraps any :class:`~repro.workloads.base.Workload`'s
``trace_chunks`` stream and freezes its first ``num_accesses`` accesses
into the :mod:`~repro.traces.format` container.  Because the chunked
stream is, by contract, access-for-access identical to ``trace()``, a
recording made once replays bit-identically through
:class:`~repro.coherence.simulator.TraceSimulator` — record the expensive
generation once, then fan replays out across sweeps.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.config import SystemConfig
from repro.traces.format import TraceHeader, write_trace
from repro.workloads.base import Workload

__all__ = ["TraceRecorder", "accesses_for_run"]


def accesses_for_run(
    workload: Workload,
    system: SystemConfig,
    measure_accesses: int,
    warmup_accesses: Optional[int] = None,
) -> int:
    """Accesses a recording needs so a run can warm up *and* measure.

    Mirrors :func:`repro.experiments.common.run_workload`: the warm-up
    (``recommended_warmup`` unless overridden) rides on top of the
    measurement window.
    """
    if measure_accesses <= 0:
        raise ValueError("measure_accesses must be positive")
    if warmup_accesses is None:
        warmup_accesses = workload.recommended_warmup(system)
    if warmup_accesses < 0:
        raise ValueError("warmup_accesses must be non-negative")
    return warmup_accesses + measure_accesses


class TraceRecorder:
    """Records workload access streams to on-disk trace files."""

    def record(
        self,
        workload: Workload,
        system: SystemConfig,
        path: Union[str, Path],
        num_accesses: int,
        seed: int = 0,
        scale: Optional[int] = None,
    ) -> TraceHeader:
        """Record ``num_accesses`` accesses of ``workload`` to ``path``.

        ``scale`` is provenance only (stored in the header so replay specs
        can be reconstructed); the stream itself is fully determined by
        ``(workload, system, seed)``.  Returns the written header, whose
        ``fingerprint`` addresses the recording's exact contents.
        """
        if num_accesses <= 0:
            raise ValueError("num_accesses must be positive")
        # The length is known up front, so fill preallocated destination
        # arrays chunk by chunk: peak memory is one trace, not trace + parts.
        all_cores = np.empty(num_accesses, dtype=np.int32)
        all_addresses = np.empty(num_accesses, dtype=np.int64)
        all_writes = np.empty(num_accesses, dtype=np.bool_)
        all_instrs = np.empty(num_accesses, dtype=np.bool_)
        recorded = 0
        for cores, addresses, writes, instrs in workload.trace_chunks(system, seed=seed):
            take = min(len(cores), num_accesses - recorded)
            end = recorded + take
            all_cores[recorded:end] = np.asarray(cores[:take], dtype=np.int32)
            all_addresses[recorded:end] = np.asarray(addresses[:take], dtype=np.int64)
            all_writes[recorded:end] = np.asarray(writes[:take], dtype=np.bool_)
            all_instrs[recorded:end] = np.asarray(instrs[:take], dtype=np.bool_)
            recorded = end
            if recorded >= num_accesses:
                break
        if recorded < num_accesses:
            raise ValueError(
                f"workload {workload.name!r} produced only {recorded} accesses "
                f"({num_accesses} requested); finite traces cannot be extended"
            )
        header = TraceHeader(
            workload=workload.name,
            category=workload.category.value,
            seed=seed,
            num_cores=system.num_cores,
            block_bytes=system.block_bytes,
            num_accesses=num_accesses,
            fingerprint="",
            scale=scale,
        )
        return write_trace(path, header, all_cores, all_addresses, all_writes, all_instrs)

    def record_for_spec(
        self,
        spec: "object",
        path: Union[str, Path],
        num_accesses: Optional[int] = None,
    ) -> TraceHeader:
        """Record the trace a :class:`~repro.engine.spec.RunSpec` would replay.

        The recording length defaults to exactly what the spec's run will
        consume (warm-up + measurement window).  Imported lazily to keep
        the traces package independent of the engine at import time.
        """
        from repro.config import CacheLevel
        from repro.experiments.common import scaled_system
        from repro.workloads.suite import get_workload

        workload = get_workload(spec.workload)
        system = scaled_system(
            CacheLevel(spec.tracked_level), num_cores=spec.num_cores, scale=spec.scale
        )
        if num_accesses is None:
            num_accesses = accesses_for_run(
                workload, system, spec.measure_accesses, spec.warmup_accesses
            )
        return self.record(
            workload,
            system,
            path,
            num_accesses,
            seed=spec.seed,
            scale=spec.scale,
        )
