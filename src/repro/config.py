"""System and directory configuration objects.

This module captures Table 1 of the paper (the simulated tiled-CMP
parameters) as plain dataclasses that the rest of the library consumes.
Every quantity is expressed in the units the hardware community uses
(bytes, ways, block sizes) and every derived quantity (number of sets,
frames per cache, directory-slice capacity) is exposed as a property so
experiments never re-derive them inconsistently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

__all__ = [
    "CacheLevel",
    "CacheConfig",
    "SystemConfig",
    "DirectoryConfig",
    "SHARED_L2_16CORE",
    "PRIVATE_L2_16CORE",
    "PAPER_EVENT_MIX",
]


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class CacheLevel(str, Enum):
    """Which private-cache level the coherence directory tracks."""

    L1 = "L1"
    L2 = "L2"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a single cache.

    Parameters mirror Table 1: 64 KB 2-way split I/D L1 caches and
    1 MB-per-core 16-way L2 caches with 64-byte blocks.
    """

    size_bytes: int
    associativity: int
    block_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if not _is_power_of_two(self.block_bytes):
            raise ValueError("block size must be a power of two")
        if self.size_bytes % (self.associativity * self.block_bytes) != 0:
            raise ValueError(
                "cache size must be divisible by associativity * block size"
            )

    @property
    def num_frames(self) -> int:
        """Total number of block frames in the cache."""
        return self.size_bytes // self.block_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets (frames / associativity)."""
        return self.num_frames // self.associativity

    @property
    def block_offset_bits(self) -> int:
        return int(math.log2(self.block_bytes))

    @property
    def index_bits(self) -> int:
        return int(math.log2(self.num_sets)) if _is_power_of_two(self.num_sets) else 0

    def tag_bits(self, address_bits: int) -> int:
        """Width of a stored tag for a machine with ``address_bits`` physical bits."""
        return max(0, address_bits - self.block_offset_bits - self.index_bits)


@dataclass(frozen=True)
class SystemConfig:
    """Tiled-CMP parameters (Table 1 of the paper).

    The directory tracks the private caches named by ``tracked_level``:
    the Shared-L2 configuration tracks split I/D L1 caches (two caches per
    core), the Private-L2 configuration tracks unified private L2 caches
    (one cache per core).
    """

    num_cores: int = 16
    l1_config: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=64 * 1024, associativity=2)
    )
    l2_config: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=1024 * 1024, associativity=16)
    )
    tracked_level: CacheLevel = CacheLevel.L1
    address_bits: int = 48
    page_bytes: int = 8 * 1024

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if not _is_power_of_two(self.num_cores):
            raise ValueError("num_cores must be a power of two")
        if self.address_bits <= 0:
            raise ValueError("address_bits must be positive")

    @property
    def block_bytes(self) -> int:
        return self.l1_config.block_bytes

    @property
    def caches_per_core(self) -> int:
        """Number of tracked private caches contributed by each core."""
        return 2 if self.tracked_level is CacheLevel.L1 else 1

    @property
    def num_tracked_caches(self) -> int:
        """Total number of private caches the directory must track."""
        return self.num_cores * self.caches_per_core

    @property
    def tracked_cache_config(self) -> CacheConfig:
        return self.l1_config if self.tracked_level is CacheLevel.L1 else self.l2_config

    @property
    def num_directory_slices(self) -> int:
        """Directory slices are distributed one per core (address-interleaved)."""
        return self.num_cores

    @property
    def tracked_frames_per_slice(self) -> int:
        """Worst-case number of distinct blocks a slice must track.

        With address interleaving, each slice is responsible for 1/N of the
        address space, so at most ``total tracked frames / N`` distinct
        blocks map to it (the paper's "1x" provisioning point).
        """
        total_frames = self.num_tracked_caches * self.tracked_cache_config.num_frames
        return total_frames // self.num_directory_slices

    def with_cores(self, num_cores: int) -> "SystemConfig":
        """Return a copy of this configuration scaled to ``num_cores`` cores."""
        return SystemConfig(
            num_cores=num_cores,
            l1_config=self.l1_config,
            l2_config=self.l2_config,
            tracked_level=self.tracked_level,
            address_bits=self.address_bits,
            page_bytes=self.page_bytes,
        )


@dataclass(frozen=True)
class DirectoryConfig:
    """Geometry of a single directory slice.

    ``ways`` and ``sets`` describe the tag store; ``provisioning`` records
    the capacity relative to the worst-case number of simultaneously
    tracked blocks (the parenthesised factor in Figure 9).
    """

    ways: int
    sets: int
    provisioning: Optional[float] = None
    max_insertion_attempts: int = 32

    def __post_init__(self) -> None:
        if self.ways <= 0:
            raise ValueError("ways must be positive")
        if self.sets <= 0:
            raise ValueError("sets must be positive")
        if self.max_insertion_attempts <= 0:
            raise ValueError("max_insertion_attempts must be positive")

    @property
    def capacity(self) -> int:
        """Total number of entries the slice can hold."""
        return self.ways * self.sets

    @classmethod
    def for_provisioning(
        cls,
        system: SystemConfig,
        ways: int,
        provisioning: float,
        max_insertion_attempts: int = 32,
    ) -> "DirectoryConfig":
        """Build a slice geometry from a provisioning factor.

        The slice capacity is ``provisioning * tracked_frames_per_slice``
        rounded so that the set count is a power of two (hardware indexing).
        """
        if provisioning <= 0:
            raise ValueError("provisioning must be positive")
        target = system.tracked_frames_per_slice * provisioning
        sets = max(1, int(round(target / ways)))
        # Round to the nearest power of two, matching the paper's geometries.
        sets = 2 ** max(0, round(math.log2(sets)))
        return cls(
            ways=ways,
            sets=sets,
            provisioning=provisioning,
            max_insertion_attempts=max_insertion_attempts,
        )


#: The Shared-L2 16-core configuration of Table 1 (directory tracks L1 I+D).
SHARED_L2_16CORE = SystemConfig(num_cores=16, tracked_level=CacheLevel.L1)

#: The Private-L2 16-core configuration of Table 1 (directory tracks private L2s).
PRIVATE_L2_16CORE = SystemConfig(num_cores=16, tracked_level=CacheLevel.L2)

#: Directory event mix measured by the paper (footnote 1, Section 5.6).
#: Keys are event names, values are fractions of all directory operations.
PAPER_EVENT_MIX = {
    "insert_tag": 0.235,
    "add_sharer": 0.269,
    "remove_sharer": 0.249,
    "remove_tag": 0.235,
    "invalidate_all": 0.012,
}
