"""The Cuckoo directory: the paper's proposed coherence directory.

A directory slice whose tag store is a d-ary cuckoo hash table
(:class:`~repro.core.cuckoo_hash.CuckooHashTable`).  Lookups cost the same
as a low-associativity set-associative lookup; insertions use displacement
to avoid victimising live entries, so forced invalidations essentially
disappear without over-provisioning the capacity (Sections 4 and 5).

Statistics follow the paper's accounting rules (Section 5.2):

* a lookup always precedes an insertion; if it reveals a vacant candidate
  slot the insertion counts one attempt;
* adding a sharer to an existing entry does not count as an insertion;
* entries become free (and reusable) when the last sharer evicts the
  block;
* if the bounded insertion walk fails, the most recently displaced entry
  is discarded and reported as a forced invalidation so the private
  caches can be kept consistent.
"""

from __future__ import annotations

from typing import Optional, Type

from repro.core.cuckoo_hash import CuckooHashTable, InsertOutcome
from repro.directories.base import (
    LOOKUP_MISS,
    SHARERS_UPDATED,
    Directory,
    Invalidation,
    LookupResult,
    UpdateResult,
)
from repro.directories.sharers import FullBitVector, SharerSet
from repro.hashing.base import HashFamily

__all__ = ["CuckooDirectory"]


class CuckooDirectory(Directory):
    """Coherence-directory organization built on a d-ary cuckoo hash table.

    Parameters
    ----------
    num_caches:
        Number of tracked private caches (sharer-set width).
    num_sets:
        Entries per way; the paper's chosen designs are 4×512 (Shared-L2)
        and 3×8192 (Private-L2).
    num_ways:
        Number of ways / hash functions (3 or 4 in the paper).
    hash_family:
        Indexing functions; defaults to the Seznec–Bodin skewing family.
    sharer_cls:
        Sharer-set representation stored in each entry; any of the classes
        in :mod:`repro.directories.sharers` (the paper pairs the Cuckoo
        organization with Coarse and Hierarchical encodings at scale).
    max_insertion_attempts:
        Bound on the displacement walk (32 in the paper).
    tag_bits:
        Stored tag width, used for the bits-read/written accounting.
    """

    def __init__(
        self,
        num_caches: int,
        num_sets: int,
        num_ways: int = 4,
        hash_family: Optional[HashFamily] = None,
        sharer_cls: Type[SharerSet] = FullBitVector,
        max_insertion_attempts: int = 32,
        tag_bits: int = 36,
        **sharer_kwargs,
    ) -> None:
        super().__init__(num_caches)
        self._table = CuckooHashTable(
            num_ways=num_ways,
            num_sets=num_sets,
            hash_family=hash_family,
            max_attempts=max_insertion_attempts,
        )
        self._sharer_cls = sharer_cls
        self._sharer_kwargs = sharer_kwargs
        self._tag_bits = tag_bits
        # Entry width is fixed by the constructor arguments; computed once
        # so the per-operation bit accounting does not re-derive it.
        self._entry_bits = 1 + tag_bits + sharer_cls.storage_bits(
            num_caches, **sharer_kwargs
        )
        # Per-operation bit costs, precomputed for the hot paths, and
        # prebound table accessors (the table object is never replaced).
        self._lookup_tag_bits = num_ways * tag_bits
        self._payload_bits = self._entry_bits - tag_bits
        self._table_get = self._table.get
        self._table_get_slot = self._table.get_slot
        # UpdateResult is frozen, so the common insertion outcomes (a new
        # entry placed in N attempts with no forced invalidation) are
        # preallocated and shared; only cut-off walks build a result object.
        self._insert_results: list = [None] + [
            UpdateResult(inserted_new_entry=True, attempts=attempts)
            for attempts in range(1, max_insertion_attempts + 1)
        ]
        # Sharer sets freed when an entry's last sharer leaves are recycled
        # for the next insertion: entry turnover is the dominant allocation
        # of a warmed simulation, and a set is only pooled once it is empty,
        # so a recycled object is indistinguishable from a fresh one.
        self._sharer_pool: list = []

    # -- geometry -----------------------------------------------------------
    @property
    def num_ways(self) -> int:
        return self._table.num_ways

    @property
    def num_sets(self) -> int:
        return self._table.num_sets

    @property
    def capacity(self) -> int:
        return self._table.capacity

    @property
    def table(self) -> CuckooHashTable:
        """The underlying cuckoo hash table (exposed for analysis)."""
        return self._table

    @property
    def entry_bits(self) -> int:
        """Width of one directory entry (valid bit + tag + sharer encoding)."""
        return self._entry_bits

    def entry_count(self) -> int:
        return len(self._table)

    # -- operations -------------------------------------------------------------
    def lookup(self, address: int) -> LookupResult:
        stats = self._stats
        stats.lookups += 1
        # A lookup reads the tags of all ways in parallel plus the matching
        # entry's sharer bits — the same cost as a set-associative lookup.
        stats.bits_read += self._table.num_ways * self._tag_bits
        sharers = self._table.get(address)
        if sharers is None:
            stats.lookup_misses += 1
            return LOOKUP_MISS
        stats.lookup_hits += 1
        stats.bits_read += self._entry_bits - self._tag_bits
        return LookupResult(found=True, sharers=sharers.sharers())

    def add_sharer(self, address: int, cache_id: int) -> UpdateResult:
        self._check_cache(cache_id)
        existing = self._table.get(address)
        if existing is not None:
            existing.add(cache_id)
            stats = self._stats
            stats.sharer_additions += 1
            stats.bits_written += self._entry_bits - self._tag_bits
            return SHARERS_UPDATED
        return self._insert_new_entry(address, cache_id)

    def lookup_add(self, address: int, cache_id: int):
        """Fused lookup + add_sharer: one table probe for the read-miss path.

        Counters are bit-identical to ``lookup()`` followed by
        ``add_sharer()``; only the second candidate scan disappears.
        """
        if not 0 <= cache_id < self._num_caches:
            self._check_cache(cache_id)
        stats = self._stats
        stats.lookups += 1
        stats.bits_read += self._lookup_tag_bits
        existing = self._table_get(address)
        if existing is not None:
            payload_bits = self._payload_bits
            stats.lookup_hits += 1
            stats.bits_read += payload_bits
            prior = existing.sharers()
            existing.add(cache_id)
            stats.sharer_additions += 1
            stats.bits_written += payload_bits
            return True, prior, SHARERS_UPDATED
        stats.lookup_misses += 1
        return False, frozenset(), self._insert_new_entry(address, cache_id)

    def acquire_exclusive(self, address: int, cache_id: int) -> UpdateResult:
        """Fused write path: one table probe instead of one per sharer.

        Statistics and directory state are bit-identical to the base
        implementation (lookup, add the writer, then remove every other
        sharer), which probes the table once per removed sharer.
        """
        if not 0 <= cache_id < self._num_caches:
            self._check_cache(cache_id)
        stats = self._stats
        stats.lookups += 1
        stats.bits_read += self._lookup_tag_bits
        existing = self._table_get(address)
        if existing is None:
            stats.lookup_misses += 1
            return self._insert_new_entry(address, cache_id)
        stats.lookup_hits += 1
        entry_payload_bits = self._payload_bits
        stats.bits_read += entry_payload_bits
        prior = existing.sharers()
        existing.add(cache_id)
        stats.sharer_additions += 1
        stats.bits_written += entry_payload_bits
        to_invalidate = frozenset(c for c in prior if c != cache_id)
        if to_invalidate:
            stats.invalidate_all_operations += 1
            # The writer stays a member throughout, so the entry never
            # transiently empties and is never deallocated here.
            for other in to_invalidate:
                existing.remove(other)
                stats.sharer_removals += 1
                stats.bits_written += entry_payload_bits
            return UpdateResult(coherence_invalidations=to_invalidate)
        return SHARERS_UPDATED

    def _insert_new_entry(self, address: int, cache_id: int) -> UpdateResult:
        """Allocate a fresh entry for ``address`` with ``cache_id`` as sharer."""
        if self._sharer_pool:
            sharers = self._sharer_pool.pop()
        else:
            sharers = self._sharer_cls(self._num_caches, **self._sharer_kwargs)
        sharers.add(cache_id)
        result = self._table.insert_absent(address, sharers)
        stats = self._stats
        attempts = result.attempts
        stats.insertions += 1
        stats.insertion_attempts += attempts
        stats.attempt_histogram[attempts] += 1
        # Every placement of the walk rewrites one entry (attempts >= 1 for
        # every insert_absent outcome).
        stats.bits_written += attempts * self._entry_bits

        if result.outcome is InsertOutcome.EVICTED_VICTIM:
            evicted_sharers: SharerSet = result.evicted_value
            invalidation = Invalidation(
                address=result.evicted_key, caches=evicted_sharers.sharers()
            )
            self._record_forced_invalidation(invalidation)
            return UpdateResult(
                inserted_new_entry=True,
                attempts=attempts,
                invalidations=(invalidation,),
            )
        return self._insert_results[attempts]

    def drain_handles(self) -> Optional[tuple]:
        """Internal-state bundle for the batched drain's inlined directory ops.

        The whole-chunk kernel's miss drain (``TiledCMP._drain_batch``)
        inlines ``lookup_add``/``acquire_exclusive``/``remove_sharer`` over
        these structures, manipulating the cuckoo table's locator/way arrays
        and the sharer bit masks directly and flushing the statistics once
        per chunk — bit-identical to the method calls, minus the per-access
        call overhead.  Only the plain full-bit-vector encoding on the exact
        base class qualifies: subclasses (the stashed variant) and richer
        sharer encodings override operation semantics the inlined sequences
        do not reproduce, so they return ``None`` and keep the method-call
        path.
        """
        if type(self) is not CuckooDirectory or self._sharer_cls is not FullBitVector:
            return None
        table = self._table
        return (
            table,
            table._locator,
            table._keys,
            table._values,
            table._way_orders,
            self._sharer_pool,
            self._stats,
        )

    def remove_sharer(self, address: int, cache_id: int) -> None:
        if not 0 <= cache_id < self._num_caches:
            self._check_cache(cache_id)
        slot = self._table_get_slot(address)
        if slot is None:
            return
        way, index, sharers = slot
        sharers.remove(cache_id)
        stats = self._stats
        stats.sharer_removals += 1
        stats.bits_written += self._payload_bits
        if sharers.is_empty():
            self._table.clear_slot(way, index)
            stats.entry_removals += 1
            self._sharer_pool.append(sharers)

    # -- convenience constructors -------------------------------------------------
    @classmethod
    def paper_shared_l2_design(
        cls, num_caches: int = 32, **kwargs
    ) -> "CuckooDirectory":
        """The 4-way × 512-set slice the paper selects for the Shared-L2
        configuration (Section 5.3)."""
        return cls(num_caches=num_caches, num_sets=512, num_ways=4, **kwargs)

    @classmethod
    def paper_private_l2_design(
        cls, num_caches: int = 16, **kwargs
    ) -> "CuckooDirectory":
        """The 3-way × 8192-set slice the paper selects for the Private-L2
        configuration (Section 5.3)."""
        return cls(num_caches=num_caches, num_sets=8192, num_ways=3, **kwargs)
