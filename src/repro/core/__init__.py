"""The paper's primary contribution: the Cuckoo directory.

* :class:`~repro.core.cuckoo_hash.CuckooHashTable` — a generic d-ary
  cuckoo hash table with the displacement-based insertion procedure the
  hardware implements (Section 4.2): parallel candidate lookup, bounded
  insertion walk, round-robin start way, and eviction of the most recently
  displaced entry when the walk is cut off.
* :class:`~repro.core.cuckoo_directory.CuckooDirectory` — the coherence
  directory built on that table, implementing the same
  :class:`~repro.directories.base.Directory` interface as every baseline
  organization so it can be dropped into the coherence system and the
  experiments unchanged.
"""

from repro.core.cuckoo_hash import CuckooHashTable, InsertOutcome, InsertResult
from repro.core.cuckoo_directory import CuckooDirectory
from repro.core.stashed_cuckoo import StashedCuckooDirectory

__all__ = [
    "CuckooHashTable",
    "InsertOutcome",
    "InsertResult",
    "CuckooDirectory",
    "StashedCuckooDirectory",
]
