"""Stash-augmented Cuckoo directory (extension).

The paper's related-work section discusses Kirsch, Mitzenmacher and
Wieder's proposal of backing a cuckoo hash with a small CAM *stash* that
absorbs entries whose insertion walk is cut off, and argues that the
Cuckoo *directory* does not need one because it may simply invalidate the
rare overflow victim.  This module implements the stashed variant anyway,
as the natural extension point for studying that trade-off:

* when an insertion walk is cut off, the displaced victim is parked in a
  small fully-associative stash instead of being invalidated;
* lookups, sharer updates and removals consult the stash as well as the
  main table;
* whenever space frees up in the victim's candidate ways, stash entries
  are opportunistically re-inserted into the table;
* only when the stash itself is full does the directory fall back to a
  forced invalidation (of the oldest stash entry), so the plain Cuckoo
  directory is recovered by setting ``stash_entries=0``.

The ablation benchmark ``benchmarks/bench_ablation_stash.py`` quantifies
how much a small stash helps at aggressive (under-provisioned) sizings —
and how little it matters at the paper's chosen 1x/1.5x design points.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Type

from repro.core.cuckoo_directory import CuckooDirectory
from repro.core.cuckoo_hash import InsertOutcome
from repro.directories.base import (
    SHARERS_UPDATED,
    Directory,
    Invalidation,
    LookupResult,
    UpdateResult,
)
from repro.directories.sharers import FullBitVector, SharerSet
from repro.hashing.base import HashFamily

__all__ = ["StashedCuckooDirectory"]


class StashedCuckooDirectory(CuckooDirectory):
    """Cuckoo directory with a small fully-associative overflow stash.

    Parameters are those of :class:`CuckooDirectory` plus
    ``stash_entries``, the number of overflow entries the stash can hold
    (a handful, e.g. 4, in the hardware proposals).
    """

    def __init__(
        self,
        num_caches: int,
        num_sets: int,
        num_ways: int = 4,
        stash_entries: int = 4,
        hash_family: Optional[HashFamily] = None,
        sharer_cls: Type[SharerSet] = FullBitVector,
        max_insertion_attempts: int = 32,
        tag_bits: int = 36,
        **sharer_kwargs,
    ) -> None:
        if stash_entries < 0:
            raise ValueError("stash_entries must be non-negative")
        super().__init__(
            num_caches=num_caches,
            num_sets=num_sets,
            num_ways=num_ways,
            hash_family=hash_family,
            sharer_cls=sharer_cls,
            max_insertion_attempts=max_insertion_attempts,
            tag_bits=tag_bits,
            **sharer_kwargs,
        )
        self._stash_entries = stash_entries
        # address -> SharerSet, in insertion order (oldest first).
        self._stash: "OrderedDict[int, SharerSet]" = OrderedDict()
        self._stash_insertions = 0

    # -- geometry -----------------------------------------------------------
    @property
    def stash_size(self) -> int:
        """Configured stash capacity."""
        return self._stash_entries

    @property
    def stash_occupancy(self) -> int:
        """Entries currently parked in the stash."""
        return len(self._stash)

    @property
    def stash_insertions(self) -> int:
        """How many overflow victims the stash has absorbed."""
        return self._stash_insertions

    @property
    def capacity(self) -> int:
        return super().capacity + self._stash_entries

    def entry_count(self) -> int:
        return super().entry_count() + len(self._stash)

    # -- operations -------------------------------------------------------------
    # The stash participates through the virtual lookup/add_sharer/
    # remove_sharer methods, so the superclass's fused single-probe
    # shortcuts (which consult the main table directly) must be undone in
    # favour of the generic compositions.
    lookup_add = Directory.lookup_add
    acquire_exclusive = Directory.acquire_exclusive

    def lookup(self, address: int) -> LookupResult:
        stashed = self._stash.get(address)
        if stashed is None:
            return super().lookup(address)
        self._stats.lookups += 1
        self._stats.lookup_hits += 1
        self._stats.bits_read += self.entry_bits
        return LookupResult(found=True, sharers=stashed.sharers())

    def add_sharer(self, address: int, cache_id: int) -> UpdateResult:
        self._check_cache(cache_id)
        stashed = self._stash.get(address)
        if stashed is not None:
            stashed.add(cache_id)
            self._stats.sharer_additions += 1
            self._stats.bits_written += self.entry_bits - self._tag_bits
            return SHARERS_UPDATED

        existing = self._table.get(address)
        if existing is not None:
            return super().add_sharer(address, cache_id)

        # New entry: insert into the main table; a cut-off walk parks the
        # displaced victim in the stash instead of invalidating it.  Reuse
        # a pooled sharer set (the superclass's remove_sharer pools every
        # emptied one; without this pop the pool would only ever grow).
        if self._sharer_pool:
            sharers = self._sharer_pool.pop()
        else:
            sharers = self._sharer_cls(self._num_caches, **self._sharer_kwargs)
        sharers.add(cache_id)
        result = self._table.insert(address, sharers)
        self._stats.insertions += 1
        self._stats.record_attempts(result.attempts)
        self._stats.bits_written += max(1, result.attempts) * self.entry_bits

        invalidations = ()
        if result.outcome is InsertOutcome.EVICTED_VICTIM:
            invalidations = self._park_in_stash(
                result.evicted_key, result.evicted_value
            )
        return UpdateResult(
            inserted_new_entry=True,
            attempts=result.attempts,
            invalidations=invalidations,
        )

    def remove_sharer(self, address: int, cache_id: int) -> None:
        self._check_cache(cache_id)
        stashed = self._stash.get(address)
        if stashed is not None:
            stashed.remove(cache_id)
            self._stats.sharer_removals += 1
            self._stats.bits_written += self.entry_bits - self._tag_bits
            if stashed.is_empty():
                del self._stash[address]
                self._stats.entry_removals += 1
                self._sharer_pool.append(stashed)
            return
        super().remove_sharer(address, cache_id)
        # Space may have opened up in the table: try to drain the stash.
        self._drain_stash()

    # -- internals ------------------------------------------------------------
    def _park_in_stash(self, address: int, sharers: SharerSet):
        """Store an overflow victim; invalidate the oldest entry if full."""
        invalidations = ()
        if self._stash_entries == 0:
            invalidation = Invalidation(address=address, caches=sharers.sharers())
            self._record_forced_invalidation(invalidation)
            return (invalidation,)
        if len(self._stash) >= self._stash_entries:
            oldest_address, oldest_sharers = self._stash.popitem(last=False)
            invalidation = Invalidation(
                address=oldest_address, caches=oldest_sharers.sharers()
            )
            self._record_forced_invalidation(invalidation)
            invalidations = (invalidation,)
        self._stash[address] = sharers
        self._stash_insertions += 1
        self._stats.bits_written += self.entry_bits
        return invalidations

    def _drain_stash(self) -> None:
        """Re-insert stash entries whose candidate slots have space."""
        for address in list(self._stash):
            if not self._table.has_vacant_candidate(address):
                continue
            sharers = self._stash.pop(address)
            result = self._table.insert(address, sharers)
            self._stats.bits_written += self.entry_bits
            # With a vacant candidate the insert cannot evict, but guard the
            # invariant anyway so a future change cannot silently drop data.
            assert result.outcome is not InsertOutcome.EVICTED_VICTIM
