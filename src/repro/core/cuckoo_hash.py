"""d-ary cuckoo hash table with hardware-style displacement insertion.

This is the data structure at the heart of the Cuckoo directory
(Section 4).  It follows the d-ary generalisation of cuckoo hashing
[Fotakis et al. '03] with the specific hardware policies the paper
describes:

* **Lookup** probes all ``d`` ways in parallel (each way is a
  direct-mapped array indexed by its own hash function), exactly like a
  skewed-associative lookup.
* **Insertion** first uses the lookup to find a vacant candidate slot; if
  one exists the entry is written there and the insertion counts **one
  attempt**.  Otherwise the entry is written over one of its candidates,
  and the displaced victim is re-inserted into one of *its* alternate
  ways, iterating until some displaced entry lands in a vacant slot.
  Every placement counts as one attempt.
* **Bounded walk**: the number of attempts is capped (32 in the paper's
  evaluation).  If the cap is reached, the procedure stops and the most
  recently displaced entry is *evicted* from the table; the directory
  layer turns that into a forced invalidation.
* **Round-robin start way**: each insertion's walk starts at the way
  where the previous insertion stopped, keeping the ways uniformly
  filled (Section 4.2).

The table maps integer keys (block addresses) to arbitrary values
(sharer sets in the directory; ``None`` in the raw hash-characterisation
experiments of Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.hashing.base import HashFamily
from repro.hashing.skewing import SkewingHashFamily

__all__ = ["InsertOutcome", "InsertResult", "CuckooHashTable"]


class InsertOutcome(str, Enum):
    """How an insertion terminated."""

    INSERTED = "inserted"          #: placed without evicting anything
    UPDATED = "updated"            #: key already present, value replaced
    EVICTED_VICTIM = "evicted"     #: placed, but the walk was cut off and a
    #: previously stored entry was thrown out of the table


@dataclass(frozen=True)
class InsertResult:
    """Outcome of one insertion."""

    outcome: InsertOutcome
    attempts: int
    evicted_key: Optional[int] = None
    evicted_value: Any = None

    @property
    def success(self) -> bool:
        """True when no stored entry was lost."""
        return self.outcome is not InsertOutcome.EVICTED_VICTIM

    @property
    def evicted(self) -> bool:
        return self.outcome is InsertOutcome.EVICTED_VICTIM


class _Slot:
    __slots__ = ("key", "value")

    def __init__(self, key: int, value: Any) -> None:
        self.key = key
        self.value = value


class CuckooHashTable:
    """A d-ary cuckoo hash table over integer keys.

    Parameters
    ----------
    num_ways:
        Number of direct-mapped ways (``d``); the paper uses 3 or 4.
    num_sets:
        Entries per way; total capacity is ``num_ways * num_sets``.
    hash_family:
        One hash function per way.  Defaults to the Seznec–Bodin skewing
        family, the paper's default; pass a
        :class:`~repro.hashing.strong.StrongHashFamily` to reproduce the
        "cryptographic hash" experiments.
    max_attempts:
        Insertion-walk bound (32 in the paper's evaluation).
    """

    def __init__(
        self,
        num_ways: int,
        num_sets: int,
        hash_family: Optional[HashFamily] = None,
        max_attempts: int = 32,
    ) -> None:
        if num_ways < 2:
            raise ValueError("a cuckoo hash needs at least 2 ways")
        if num_sets <= 0:
            raise ValueError("num_sets must be positive")
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        self._num_ways = num_ways
        self._num_sets = num_sets
        self._max_attempts = max_attempts
        self._hashes = hash_family or SkewingHashFamily(num_ways, num_sets)
        if self._hashes.num_ways != num_ways or self._hashes.num_sets != num_sets:
            raise ValueError("hash family geometry does not match the table")
        self._ways: List[List[Optional[_Slot]]] = [
            [None] * num_sets for _ in range(num_ways)
        ]
        self._size = 0
        self._start_way = 0

    # -- geometry -----------------------------------------------------------
    @property
    def num_ways(self) -> int:
        return self._num_ways

    @property
    def num_sets(self) -> int:
        return self._num_sets

    @property
    def capacity(self) -> int:
        return self._num_ways * self._num_sets

    @property
    def max_attempts(self) -> int:
        return self._max_attempts

    @property
    def hash_family(self) -> HashFamily:
        return self._hashes

    def occupancy(self) -> float:
        return self._size / self.capacity if self.capacity else 0.0

    def __len__(self) -> int:
        return self._size

    # -- lookup ---------------------------------------------------------------
    def candidate_slots(self, key: int) -> List[Tuple[int, int]]:
        """The ``(way, index)`` candidates of ``key``, one per way."""
        return [(way, self._hashes.index(way, key)) for way in range(self._num_ways)]

    def find(self, key: int) -> Optional[Tuple[int, int]]:
        """Locate ``key``; returns its ``(way, index)`` or ``None``."""
        for way, index in self.candidate_slots(key):
            slot = self._ways[way][index]
            if slot is not None and slot.key == key:
                return way, index
        return None

    def get(self, key: int, default: Any = None) -> Any:
        location = self.find(key)
        if location is None:
            return default
        way, index = location
        slot = self._ways[way][index]
        assert slot is not None
        return slot.value

    def __contains__(self, key: int) -> bool:
        return self.find(key) is not None

    def items(self) -> Iterator[Tuple[int, Any]]:
        """All stored ``(key, value)`` pairs (iteration order unspecified)."""
        for way in self._ways:
            for slot in way:
                if slot is not None:
                    yield slot.key, slot.value

    def keys(self) -> Iterator[int]:
        for key, _ in self.items():
            yield key

    # -- mutation ---------------------------------------------------------------
    def insert(self, key: int, value: Any = None) -> InsertResult:
        """Insert ``key``; returns how the walk terminated and how many attempts it took.

        Inserting a key that is already present replaces its value and
        counts zero attempts (the directory's add-sharer path never reaches
        this method for existing entries, but the table stays well defined
        as a standalone container).
        """
        existing = self.find(key)
        if existing is not None:
            way, index = existing
            slot = self._ways[way][index]
            assert slot is not None
            slot.value = value
            return InsertResult(outcome=InsertOutcome.UPDATED, attempts=0)

        # The lookup that preceded the insertion has already revealed whether a
        # vacant candidate slot exists; writing into it is the single attempt.
        vacant = self._first_vacant_candidate(key)
        if vacant is not None:
            way, index = vacant
            self._ways[way][index] = _Slot(key, value)
            self._size += 1
            self._start_way = way
            return InsertResult(outcome=InsertOutcome.INSERTED, attempts=1)

        # All candidates are occupied: displacement walk.
        current = _Slot(key, value)
        way = self._start_way
        attempts = 0
        while attempts < self._max_attempts:
            attempts += 1
            index = self._hashes.index(way, current.key)
            victim = self._ways[way][index]
            self._ways[way][index] = current
            if victim is None:
                self._size += 1
                self._start_way = way
                return InsertResult(outcome=InsertOutcome.INSERTED, attempts=attempts)
            current = victim
            way = (way + 1) % self._num_ways

        # Walk cut off: the most recently displaced entry is discarded.  The
        # new key itself has been written into the table (self._size is
        # unchanged: one entry in, one entry out).
        self._start_way = way
        return InsertResult(
            outcome=InsertOutcome.EVICTED_VICTIM,
            attempts=attempts,
            evicted_key=current.key,
            evicted_value=current.value,
        )

    def remove(self, key: int) -> bool:
        """Remove ``key``; returns ``True`` if it was present."""
        location = self.find(key)
        if location is None:
            return False
        way, index = location
        self._ways[way][index] = None
        self._size -= 1
        return True

    def clear(self) -> None:
        for way in self._ways:
            for index in range(self._num_sets):
                way[index] = None
        self._size = 0
        self._start_way = 0

    # -- diagnostics ---------------------------------------------------------
    def way_occupancies(self) -> List[float]:
        """Per-way fill fraction (the round-robin start keeps these balanced)."""
        return [
            sum(1 for slot in way if slot is not None) / self._num_sets
            for way in self._ways
        ]

    def has_vacant_candidate(self, key: int) -> bool:
        return self._first_vacant_candidate(key) is not None

    # -- internals ------------------------------------------------------------
    def _first_vacant_candidate(self, key: int) -> Optional[Tuple[int, int]]:
        """Scan the candidate slots starting at the round-robin way."""
        for offset in range(self._num_ways):
            way = (self._start_way + offset) % self._num_ways
            index = self._hashes.index(way, key)
            if self._ways[way][index] is None:
                return way, index
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CuckooHashTable(ways={self._num_ways}, sets={self._num_sets}, "
            f"size={self._size}, occupancy={self.occupancy():.2f})"
        )
