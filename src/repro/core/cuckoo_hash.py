"""d-ary cuckoo hash table with hardware-style displacement insertion.

This is the data structure at the heart of the Cuckoo directory
(Section 4).  It follows the d-ary generalisation of cuckoo hashing
[Fotakis et al. '03] with the specific hardware policies the paper
describes:

* **Lookup** probes all ``d`` ways in parallel (each way is a
  direct-mapped array indexed by its own hash function), exactly like a
  skewed-associative lookup.
* **Insertion** first uses the lookup to find a vacant candidate slot; if
  one exists the entry is written there and the insertion counts **one
  attempt**.  Otherwise the entry is written over one of its candidates,
  and the displaced victim is re-inserted into one of *its* alternate
  ways, iterating until some displaced entry lands in a vacant slot.
  Every placement counts as one attempt.
* **Bounded walk**: the number of attempts is capped (32 in the paper's
  evaluation).  If the cap is reached, the procedure stops and the most
  recently displaced entry is *evicted* from the table; the directory
  layer turns that into a forced invalidation.
* **Round-robin start way**: each insertion's walk starts at the way
  where the previous insertion stopped, keeping the ways uniformly
  filled (Section 4.2).

The table maps non-negative integer keys (block addresses) to arbitrary
values (sharer sets in the directory; ``None`` in the raw
hash-characterisation experiments of Figure 7).

Storage layout
--------------
Each way is a flat parallel pair of arrays — ``keys[way][index]`` and
``values[way][index]`` — with ``_EMPTY`` (-1) as the vacant-slot sentinel
in the key array.  The displacement walk therefore swaps plain list
elements and allocates nothing; there is no per-slot wrapper object to
create, chase or collect.  The per-way hash functions are hoisted into a
local tuple of closures (:meth:`~repro.hashing.base.HashFamily.
way_functions`) so the walk does no way dispatch either.

Alongside the way arrays the table maintains a *locator* dict mapping each
stored key to its current ``(way, index)`` slot.  The way arrays stay the
ground truth (occupancy scans, iteration and the displacement walk read
them directly); the locator is a derived index kept in lockstep by every
placement, displacement and removal, and it turns the read-side methods —
``get``/``find``/``get_slot``/``__contains__`` and ``insert``'s presence
check — into a single dict probe instead of a d-way candidate scan.  This
mirrors what the hardware gets for free: the d probes happen in parallel
in silicon, while a software model pays them serially unless it shortcuts
the search.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.hashing.base import HashFamily
from repro.hashing.skewing import SkewingHashFamily

__all__ = ["InsertOutcome", "InsertResult", "CuckooHashTable"]

#: Vacant-slot sentinel in the flat key arrays (keys are non-negative).
_EMPTY = -1

#: Bound on the per-table key -> candidate-indices cache.  Hash functions
#: are pure, so entries never go stale; the limit exists only to bound
#: memory on footprints far larger than any directory working set.  At the
#: bound the *oldest* entry is evicted (FIFO over insertion order — dicts
#: iterate in insertion order), so a steady-state working set keeps its hot
#: keys cached instead of being dumped wholesale and re-hashed from scratch.
_INDICES_CACHE_LIMIT = 1 << 15


class InsertOutcome(str, Enum):
    """How an insertion terminated."""

    INSERTED = "inserted"          #: placed without evicting anything
    UPDATED = "updated"            #: key already present, value replaced
    EVICTED_VICTIM = "evicted"     #: placed, but the walk was cut off and a
    #: previously stored entry was thrown out of the table


@dataclass(frozen=True)
class InsertResult:
    """Outcome of one insertion."""

    outcome: InsertOutcome
    attempts: int
    evicted_key: Optional[int] = None
    evicted_value: Any = None

    @property
    def success(self) -> bool:
        """True when no stored entry was lost."""
        return self.outcome is not InsertOutcome.EVICTED_VICTIM

    @property
    def evicted(self) -> bool:
        return self.outcome is InsertOutcome.EVICTED_VICTIM


class CuckooHashTable:
    """A d-ary cuckoo hash table over non-negative integer keys.

    Parameters
    ----------
    num_ways:
        Number of direct-mapped ways (``d``); the paper uses 3 or 4.
    num_sets:
        Entries per way; total capacity is ``num_ways * num_sets``.
    hash_family:
        One hash function per way.  Defaults to the Seznec–Bodin skewing
        family, the paper's default; pass a
        :class:`~repro.hashing.strong.StrongHashFamily` to reproduce the
        "cryptographic hash" experiments.
    max_attempts:
        Insertion-walk bound (32 in the paper's evaluation).
    """

    def __init__(
        self,
        num_ways: int,
        num_sets: int,
        hash_family: Optional[HashFamily] = None,
        max_attempts: int = 32,
    ) -> None:
        if num_ways < 2:
            raise ValueError("a cuckoo hash needs at least 2 ways")
        if num_sets <= 0:
            raise ValueError("num_sets must be positive")
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        self._num_ways = num_ways
        self._num_sets = num_sets
        self._max_attempts = max_attempts
        self._hashes = hash_family or SkewingHashFamily(num_ways, num_sets)
        if self._hashes.num_ways != num_ways or self._hashes.num_sets != num_sets:
            raise ValueError("hash family geometry does not match the table")
        self._way_fns = tuple(self._hashes.way_functions())
        self._indices_fn = self._hashes.indices_function()
        self._keys: List[List[int]] = [[_EMPTY] * num_sets for _ in range(num_ways)]
        self._values: List[List[Any]] = [[None] * num_sets for _ in range(num_ways)]
        # Derived reverse index: key -> (way, index) of its current slot.
        # Kept in lockstep with the way arrays by every placement,
        # displacement-walk step and removal (see the module docstring).
        self._locator: Dict[int, Tuple[int, int]] = {}
        self._size = 0
        self._start_way = 0
        # Round-robin probe orders: _way_orders[s] is the way sequence for
        # a walk starting at way s, so the vacant-candidate scan does no
        # modular arithmetic.
        self._way_orders = [
            tuple((start + offset) % num_ways for offset in range(num_ways))
            for start in range(num_ways)
        ]
        # Candidate-index cache: key -> per-way set indices.  Directory
        # working sets revisit the same keys constantly (every re-fetch,
        # eviction notification and displacement re-probes a key seen
        # before), and the hash functions are pure, so each distinct key is
        # hashed once and then served by a dict probe.  Bounded by
        # _INDICES_CACHE_LIMIT (see above).
        self._indices_cache: Dict[int, List[int]] = {}
        # InsertResult is frozen, so the non-evicting outcomes (UPDATED and
        # INSERTED-with-N-attempts, N <= max_attempts) are preallocated and
        # shared; only the rare cut-off walk builds a result object.
        self._updated_result = InsertResult(outcome=InsertOutcome.UPDATED, attempts=0)
        self._inserted_results: List[Optional[InsertResult]] = [None] + [
            InsertResult(outcome=InsertOutcome.INSERTED, attempts=attempts)
            for attempts in range(1, max_attempts + 1)
        ]

    # -- geometry -----------------------------------------------------------
    @property
    def num_ways(self) -> int:
        return self._num_ways

    @property
    def num_sets(self) -> int:
        return self._num_sets

    @property
    def capacity(self) -> int:
        return self._num_ways * self._num_sets

    @property
    def max_attempts(self) -> int:
        return self._max_attempts

    @property
    def hash_family(self) -> HashFamily:
        return self._hashes

    def occupancy(self) -> float:
        return self._size / self.capacity if self.capacity else 0.0

    def __len__(self) -> int:
        return self._size

    # -- lookup ---------------------------------------------------------------
    def candidate_slots(self, key: int) -> List[Tuple[int, int]]:
        """The ``(way, index)`` candidates of ``key``, one per way."""
        return [(way, fn(key)) for way, fn in enumerate(self._way_fns)]

    def _indices_of(self, key: int) -> List[int]:
        """The key's per-way set indices, cached per distinct key."""
        cache = self._indices_cache
        indices = cache.get(key)
        if indices is None:
            if len(cache) >= _INDICES_CACHE_LIMIT:
                # FIFO eviction: drop the oldest cached key (dicts iterate
                # in insertion order), keeping the cache exactly at the
                # bound instead of dumping the whole working set.
                del cache[next(iter(cache))]
            indices = self._indices_fn(key)
            cache[key] = indices
        return indices

    def find(
        self, key: int, candidate_indices: Optional[Sequence[int]] = None
    ) -> Optional[Tuple[int, int]]:
        """Locate ``key``; returns its ``(way, index)`` or ``None``.

        ``candidate_indices`` is accepted for signature compatibility with
        batched callers but no longer consulted: the locator resolves the
        slot in one probe regardless.
        """
        return self._locator.get(key)

    def get(self, key: int, default: Any = None) -> Any:
        location = self._locator.get(key)
        if location is None:
            return default
        way, index = location
        return self._values[way][index]

    def __contains__(self, key: int) -> bool:
        return key in self._locator

    def items(self) -> Iterator[Tuple[int, Any]]:
        """All stored ``(key, value)`` pairs (iteration order unspecified)."""
        for way_keys, way_values in zip(self._keys, self._values):
            for key, value in zip(way_keys, way_values):
                if key != _EMPTY:
                    yield key, value

    def keys(self) -> Iterator[int]:
        for key, _ in self.items():
            yield key

    # -- mutation ---------------------------------------------------------------
    def insert(
        self,
        key: int,
        value: Any = None,
        candidate_indices: Optional[Sequence[int]] = None,
    ) -> InsertResult:
        """Insert ``key``; returns how the walk terminated and how many attempts it took.

        Inserting a key that is already present replaces its value and
        counts zero attempts (the directory's add-sharer path never reaches
        this method for existing entries, but the table stays well defined
        as a standalone container).  ``candidate_indices`` optionally
        carries the key's precomputed per-way indices; the displacement
        walk still hashes the *displaced* keys itself.
        """
        if key < 0:
            raise ValueError("keys must be non-negative")
        location = self._locator.get(key)
        if location is not None:
            way, index = location
            self._values[way][index] = value
            return self._updated_result
        return self.insert_absent(key, value, candidate_indices)

    def insert_absent(
        self,
        key: int,
        value: Any = None,
        candidate_indices: Optional[Sequence[int]] = None,
    ) -> InsertResult:
        """Insert a key the caller knows is absent (e.g. after a failed get).

        Identical to :meth:`insert` minus the presence scan; inserting a
        key that *is* present would duplicate it, so only call this after a
        lookup of the same key came back empty.
        """
        if key < 0:
            raise ValueError("keys must be non-negative")
        keys = self._keys
        values = self._values
        way_fns = self._way_fns
        locator = self._locator
        if candidate_indices is None:
            candidate_indices = self._indices_of(key)

        # The lookup that preceded the insertion has already revealed whether a
        # vacant candidate slot exists; writing into it is the single attempt.
        num_ways = self._num_ways
        start_way = self._start_way
        for way in self._way_orders[start_way]:
            index = candidate_indices[way]
            if keys[way][index] == _EMPTY:
                keys[way][index] = key
                values[way][index] = value
                locator[key] = (way, index)
                self._size += 1
                self._start_way = way
                return self._inserted_results[1]

        # All candidates are occupied: displacement walk.  Each placement
        # updates the displaced entry's locator slot; the victim's stale
        # entry is overwritten when the walk re-places it (or popped below
        # when the cut-off walk discards it), so the locator is consistent
        # again by the time the walk returns.
        current_key = key
        current_value = value
        way = start_way
        attempts = 0
        max_attempts = self._max_attempts
        indices_cache = self._indices_cache
        while attempts < max_attempts:
            attempts += 1
            # Displaced keys were inserted earlier, so their indices are
            # almost always still cached.
            cached = indices_cache.get(current_key)
            index = cached[way] if cached is not None else way_fns[way](current_key)
            way_keys = keys[way]
            victim_key = way_keys[index]
            way_values = values[way]
            victim_value = way_values[index]
            way_keys[index] = current_key
            way_values[index] = current_value
            locator[current_key] = (way, index)
            if victim_key == _EMPTY:
                self._size += 1
                self._start_way = way
                return self._inserted_results[attempts]
            current_key = victim_key
            current_value = victim_value
            way += 1
            if way == num_ways:
                way = 0

        # Walk cut off: the most recently displaced entry is discarded.  The
        # new key itself has been written into the table (self._size is
        # unchanged: one entry in, one entry out).
        del locator[current_key]
        self._start_way = way
        return InsertResult(
            outcome=InsertOutcome.EVICTED_VICTIM,
            attempts=attempts,
            evicted_key=current_key,
            evicted_value=current_value,
        )

    def get_slot(self, key: int) -> Optional[Tuple[int, int, Any]]:
        """Locate ``key`` in one probe; returns ``(way, index, value)`` or ``None``.

        Combines :meth:`find` and :meth:`get` so callers that need both the
        stored value and the slot (to :meth:`clear_slot` it afterwards) pay
        a single candidate scan.
        """
        location = self._locator.get(key)
        if location is None:
            return None
        way, index = location
        return way, index, self._values[way][index]

    def clear_slot(self, way: int, index: int) -> None:
        """Vacate a slot previously located with :meth:`get_slot`/:meth:`find`."""
        way_keys = self._keys[way]
        del self._locator[way_keys[index]]
        way_keys[index] = _EMPTY
        self._values[way][index] = None
        self._size -= 1

    def remove(self, key: int) -> bool:
        """Remove ``key``; returns ``True`` if it was present."""
        location = self.find(key)
        if location is None:
            return False
        self.clear_slot(*location)
        return True

    def clear(self) -> None:
        for way in range(self._num_ways):
            self._keys[way] = [_EMPTY] * self._num_sets
            self._values[way] = [None] * self._num_sets
        self._locator.clear()
        self._size = 0
        self._start_way = 0

    # -- diagnostics ---------------------------------------------------------
    def way_occupancies(self) -> List[float]:
        """Per-way fill fraction (the round-robin start keeps these balanced)."""
        return [
            sum(1 for key in way_keys if key != _EMPTY) / self._num_sets
            for way_keys in self._keys
        ]

    def has_vacant_candidate(self, key: int) -> bool:
        return self._first_vacant_candidate(key) is not None

    # -- internals ------------------------------------------------------------
    def _first_vacant_candidate(self, key: int) -> Optional[Tuple[int, int]]:
        """Scan the candidate slots starting at the round-robin way."""
        num_ways = self._num_ways
        indices = self._indices_of(key)
        for offset in range(num_ways):
            way = self._start_way + offset
            if way >= num_ways:
                way -= num_ways
            if self._keys[way][indices[way]] == _EMPTY:
                return way, indices[way]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CuckooHashTable(ways={self._num_ways}, sets={self._num_sets}, "
            f"size={self._size}, occupancy={self.occupancy():.2f})"
        )
