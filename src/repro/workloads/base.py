"""Workload abstractions shared by every trace generator."""

from __future__ import annotations

import abc
from enum import Enum
from typing import Iterator, Optional

import numpy as np

from repro.coherence.system import MemoryAccess
from repro.config import SystemConfig

__all__ = ["WorkloadCategory", "Workload", "ZipfSampler", "AddressSpaceLayout"]


class WorkloadCategory(str, Enum):
    """Table 2 groups (plus the multi-programmed mixes this repo adds)."""

    OLTP = "OLTP"
    DSS = "DSS"
    WEB = "Web"
    SCIENTIFIC = "Sci"
    SYNTHETIC = "Synthetic"
    MIX = "Mix"


class ZipfSampler:
    """Bounded Zipf(α) sampler over ``[0, population)``.

    ``alpha == 0`` degenerates to a uniform distribution.  Sampling is
    vectorised (inverse-CDF via ``searchsorted``) so generators can draw
    large batches cheaply.
    """

    def __init__(self, population: int, alpha: float, rng: np.random.Generator) -> None:
        if population <= 0:
            raise ValueError("population must be positive")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self._population = population
        self._alpha = alpha
        self._rng = rng
        if alpha == 0.0:
            self._cdf: Optional[np.ndarray] = None
        else:
            ranks = np.arange(1, population + 1, dtype=np.float64)
            weights = ranks ** (-alpha)
            self._cdf = np.cumsum(weights)
            self._cdf /= self._cdf[-1]

    @property
    def population(self) -> int:
        return self._population

    @property
    def alpha(self) -> float:
        return self._alpha

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` indices in ``[0, population)``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.empty(0, dtype=np.int64)
        if self._cdf is None:
            return self._rng.integers(0, self._population, size=count, dtype=np.int64)
        uniforms = self._rng.random(count)
        return np.searchsorted(self._cdf, uniforms, side="left").astype(np.int64)


class AddressSpaceLayout:
    """Carves the physical address space into non-overlapping regions.

    Every workload places its footprints (shared instructions, shared
    data, per-core private data, …) in disjoint regions so that an address
    unambiguously identifies the kind of block it is, which makes the
    generated sharing behaviour auditable in tests.
    """

    def __init__(self, block_bytes: int, base_address: int = 0x1000_0000) -> None:
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        self._block_bytes = block_bytes
        self._next_base = base_address

    def allocate(self, num_blocks: int) -> int:
        """Reserve a region of ``num_blocks`` blocks; returns its base address."""
        if num_blocks < 0:
            raise ValueError("num_blocks must be non-negative")
        base = self._next_base
        self._next_base += max(1, num_blocks) * self._block_bytes
        return base

    @property
    def block_bytes(self) -> int:
        return self._block_bytes


class Workload(abc.ABC):
    """A named, reproducible source of :class:`MemoryAccess` streams."""

    def __init__(self, name: str, category: WorkloadCategory) -> None:
        self._name = name
        self._category = category

    @property
    def name(self) -> str:
        return self._name

    @property
    def category(self) -> WorkloadCategory:
        return self._category

    @abc.abstractmethod
    def trace(self, system: SystemConfig, seed: int = 0) -> Iterator[MemoryAccess]:
        """Yield an unbounded stream of accesses for ``system``.

        The stream must be deterministic for a given ``(system, seed)``.
        Callers bound it with the simulator's ``max_accesses``.
        """

    def trace_chunks(
        self, system: SystemConfig, seed: int = 0, chunk_size: int = 4096
    ) -> Iterator[tuple]:
        """Yield the same stream as :meth:`trace` in chunked form.

        Each chunk is a tuple of parallel sequences ``(cores, addresses,
        is_writes, is_instructions)`` consumed by
        :meth:`~repro.coherence.simulator.TraceSimulator.run_chunks` via
        the batched front-end (:meth:`~repro.coherence.system.TiledCMP.
        access_batch`), which accepts numpy arrays and plain lists alike.
        The default implementation batches :meth:`trace` into lists;
        generators with a vectorisable structure (the synthetic
        workloads, trace replays, mixes) override it to hand over whole
        numpy chunks without building per-access objects.  The flattened
        chunk stream is always access-for-access identical to
        :meth:`trace` for the same ``(system, seed)``.
        """
        cores: list = []
        addresses: list = []
        writes: list = []
        instrs: list = []
        for access in self.trace(system, seed):
            cores.append(access.core)
            addresses.append(access.address)
            writes.append(access.is_write)
            instrs.append(access.is_instruction)
            if len(cores) >= chunk_size:
                yield cores, addresses, writes, instrs
                cores, addresses, writes, instrs = [], [], [], []
        if cores:  # finite traces (tests) flush their tail chunk
            yield cores, addresses, writes, instrs

    def _trace_via_chunks(
        self, system: SystemConfig, seed: int = 0
    ) -> Iterator[MemoryAccess]:
        """Adapt :meth:`trace_chunks` back into a per-access stream.

        The inverse of the default :meth:`trace_chunks`: chunk-native
        workloads (the vectorised generators, trace replays, mixes)
        implement ``trace`` by delegating here.  Chunk fields may be numpy
        arrays; the int()/bool() coercions keep the yielded
        :class:`MemoryAccess` objects on plain Python scalars.
        """
        for cores, addresses, writes, instrs in self.trace_chunks(system, seed=seed):
            for core, address, is_write, is_instruction in zip(
                cores, addresses, writes, instrs
            ):
                yield MemoryAccess(
                    core=int(core),
                    address=int(address),
                    is_write=bool(is_write),
                    is_instruction=bool(is_instruction),
                )

    def recommended_warmup(self, system: SystemConfig) -> int:
        """Accesses needed to warm the tracked caches before measuring.

        Heuristic: a few times the aggregate tracked-cache capacity, which
        is enough for LRU state and directory contents to reach steady
        state for these generators.
        """
        frames = (
            system.num_tracked_caches * system.tracked_cache_config.num_frames
        )
        return 3 * frames

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self._name!r}, {self._category.value})"
