"""Parameterised synthetic server-workload generator.

The generator models the structure that commercial server workloads show
at the memory system level (and which the paper's Figure 8 exposes):

* an **instruction footprint** executed by every core — OLTP and web
  servers have megabyte-scale code paths shared by all cores, which is the
  main reason the Shared-L2 directory occupancy stays well below 100 %;
* a **shared data footprint** (buffer pools, lock tables, session state)
  accessed by every core with a Zipf-skewed popularity distribution;
* a **private data footprint per core** (thread stacks, scan buffers,
  sort areas) accessed only by its owner, apart from a small
  thread-migration fraction;
* a read/write mix per data class (shared-data writes are what exercise
  the invalidation machinery).

Footprint sizes are expressed relative to the system's cache sizes — the
instruction footprint in units of one L1 cache, the data footprints in
units of one (private-L2-sized) cache — so the same workload definition
drives full-size and scaled-down systems with the same *relative*
behaviour.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.coherence.system import MemoryAccess
from repro.config import SystemConfig
from repro.workloads.base import (
    AddressSpaceLayout,
    Workload,
    WorkloadCategory,
    ZipfSampler,
)

__all__ = ["SyntheticWorkload", "UniformRandomWorkload"]

_BATCH = 4096


@dataclass(frozen=True)
class _Regions:
    """Resolved footprint regions for one (workload, system) pair."""

    instr_base: int
    instr_blocks: int
    shared_base: int
    shared_blocks: int
    private_bases: List[int]
    private_blocks: int
    block_bytes: int


class SyntheticWorkload(Workload):
    """Generic OLTP/DSS/Web-style synthetic workload.

    Parameters
    ----------
    name, category:
        Identification (Table 2 row).
    instr_fraction:
        Fraction of all accesses that are instruction fetches.
    instr_footprint_l1x:
        Instruction footprint in units of one L1 cache capacity.
    shared_data_footprint_l2x:
        Shared-data footprint in units of one private-L2 capacity.
    private_footprint_l2x:
        Per-core private-data footprint in units of one private-L2
        capacity (values ≥ 1 keep the private caches full of distinct
        blocks, the DSS/scientific regime of Figure 8).
    shared_data_fraction:
        Fraction of data accesses that target the shared region.
    shared_write_fraction, private_write_fraction:
        Write probability for shared / private data accesses.
    zipf_alpha:
        Popularity skew within each region (0 = uniform).
    migration_fraction:
        Probability that a private-data access targets *another* core's
        private region (thread migration / work stealing), which creates
        the low-degree data sharing server workloads exhibit.
    """

    def __init__(
        self,
        name: str,
        category: WorkloadCategory,
        instr_fraction: float = 0.30,
        instr_footprint_l1x: float = 4.0,
        shared_data_footprint_l2x: float = 2.0,
        private_footprint_l2x: float = 0.5,
        shared_data_fraction: float = 0.4,
        shared_write_fraction: float = 0.15,
        private_write_fraction: float = 0.30,
        zipf_alpha: float = 0.6,
        migration_fraction: float = 0.02,
    ) -> None:
        super().__init__(name, category)
        for label, value in (
            ("instr_fraction", instr_fraction),
            ("shared_data_fraction", shared_data_fraction),
            ("shared_write_fraction", shared_write_fraction),
            ("private_write_fraction", private_write_fraction),
            ("migration_fraction", migration_fraction),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {value}")
        for label, value in (
            ("instr_footprint_l1x", instr_footprint_l1x),
            ("shared_data_footprint_l2x", shared_data_footprint_l2x),
            ("private_footprint_l2x", private_footprint_l2x),
        ):
            if value < 0:
                raise ValueError(f"{label} must be non-negative, got {value}")
        if zipf_alpha < 0:
            raise ValueError("zipf_alpha must be non-negative")
        self.instr_fraction = instr_fraction
        self.instr_footprint_l1x = instr_footprint_l1x
        self.shared_data_footprint_l2x = shared_data_footprint_l2x
        self.private_footprint_l2x = private_footprint_l2x
        self.shared_data_fraction = shared_data_fraction
        self.shared_write_fraction = shared_write_fraction
        self.private_write_fraction = private_write_fraction
        self.zipf_alpha = zipf_alpha
        self.migration_fraction = migration_fraction

    # -- region resolution -----------------------------------------------------
    def _resolve_regions(self, system: SystemConfig) -> _Regions:
        block_bytes = system.block_bytes
        layout = AddressSpaceLayout(block_bytes)
        instr_blocks = max(1, int(self.instr_footprint_l1x * system.l1_config.num_frames))
        shared_blocks = max(
            1, int(self.shared_data_footprint_l2x * system.l2_config.num_frames)
        )
        private_blocks = max(
            1, int(self.private_footprint_l2x * system.l2_config.num_frames)
        )
        instr_base = layout.allocate(instr_blocks)
        shared_base = layout.allocate(shared_blocks)
        private_bases = [
            layout.allocate(private_blocks) for _ in range(system.num_cores)
        ]
        return _Regions(
            instr_base=instr_base,
            instr_blocks=instr_blocks,
            shared_base=shared_base,
            shared_blocks=shared_blocks,
            private_bases=private_bases,
            private_blocks=private_blocks,
            block_bytes=block_bytes,
        )

    # -- trace generation ---------------------------------------------------------
    def trace_chunks(
        self, system: SystemConfig, seed: int = 0, chunk_size: int = _BATCH
    ) -> Iterator[tuple]:
        """Pregenerate whole access chunks with vectorized numpy selection.

        The RNG draw order is exactly that of the original per-access
        generator (one batch of each draw kind per chunk), so the flattened
        stream is bit-identical to what :meth:`trace` has always produced;
        only the per-access Python branching and object construction are
        gone.  ``chunk_size`` is fixed at the generator's historical batch
        size to keep the draw boundaries — and therefore the stream —
        stable.
        """
        del chunk_size  # draw-order stability requires the historical batch
        # Derive the stream seed from the workload name with a *stable* hash
        # (Python's built-in hash() is salted per process, which would make
        # traces irreproducible across runs).
        rng = np.random.default_rng(seed ^ zlib.crc32(self.name.encode()))
        regions = self._resolve_regions(system)
        instr_sampler = ZipfSampler(regions.instr_blocks, self.zipf_alpha, rng)
        shared_sampler = ZipfSampler(regions.shared_blocks, self.zipf_alpha, rng)
        private_sampler = ZipfSampler(regions.private_blocks, self.zipf_alpha, rng)
        num_cores = system.num_cores
        block_bytes = regions.block_bytes
        private_bases = np.asarray(regions.private_bases, dtype=np.int64)

        while True:
            cores = rng.integers(0, num_cores, size=_BATCH)
            kind_draw = rng.random(_BATCH)
            shared_draw = rng.random(_BATCH)
            write_draw = rng.random(_BATCH)
            migrate_draw = rng.random(_BATCH)
            migrate_target = rng.integers(0, num_cores, size=_BATCH)
            instr_offsets = instr_sampler.sample(_BATCH)
            shared_offsets = shared_sampler.sample(_BATCH)
            private_offsets = private_sampler.sample(_BATCH)

            is_instr = kind_draw < self.instr_fraction
            is_shared = ~is_instr & (shared_draw < self.shared_data_fraction)
            is_private = ~is_instr & ~is_shared
            owners = np.where(
                migrate_draw < self.migration_fraction, migrate_target, cores
            )
            addresses = np.where(
                is_instr,
                regions.instr_base + instr_offsets * block_bytes,
                np.where(
                    is_shared,
                    regions.shared_base + shared_offsets * block_bytes,
                    private_bases[owners] + private_offsets * block_bytes,
                ),
            )
            writes = (is_shared & (write_draw < self.shared_write_fraction)) | (
                is_private & (write_draw < self.private_write_fraction)
            )
            yield (cores, addresses, writes, is_instr)

    def trace(self, system: SystemConfig, seed: int = 0) -> Iterator[MemoryAccess]:
        return self._trace_via_chunks(system, seed)


class UniformRandomWorkload(Workload):
    """Uniform random accesses over a fixed footprint (stress/diagnostic).

    Every core draws blocks uniformly from one common region, so sharing is
    accidental and the access stream has no locality — the hardest case for
    any directory organization and a useful stress generator for tests.
    """

    def __init__(
        self,
        name: str = "uniform",
        footprint_blocks: int = 1 << 16,
        write_fraction: float = 0.3,
    ) -> None:
        super().__init__(name, WorkloadCategory.SYNTHETIC)
        if footprint_blocks <= 0:
            raise ValueError("footprint_blocks must be positive")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        self.footprint_blocks = footprint_blocks
        self.write_fraction = write_fraction

    def trace_chunks(
        self, system: SystemConfig, seed: int = 0, chunk_size: int = _BATCH
    ) -> Iterator[tuple]:
        del chunk_size  # draw-order stability requires the historical batch
        rng = np.random.default_rng(seed)
        block_bytes = system.block_bytes
        base = 0x4000_0000
        num_cores = system.num_cores
        no_instrs = np.zeros(_BATCH, dtype=np.bool_)  # shared by every chunk
        no_instrs.setflags(write=False)  # enforce, not just assert, read-only
        while True:
            cores = rng.integers(0, num_cores, size=_BATCH)
            offsets = rng.integers(0, self.footprint_blocks, size=_BATCH)
            writes = rng.random(_BATCH) < self.write_fraction
            yield (cores, base + offsets * block_bytes, writes, no_instrs)

    def trace(self, system: SystemConfig, seed: int = 0) -> Iterator[MemoryAccess]:
        return self._trace_via_chunks(system, seed)
