"""Scientific workloads: em3d and ocean.

Unlike the server workloads, the two scientific kernels in Table 2 have
well-defined algorithmic structure, so their generators walk actual data
structures rather than sampling from popularity distributions:

* **em3d** propagates electromagnetic values through a bipartite graph of
  E-nodes and H-nodes.  Nodes are partitioned across cores; updating a node
  reads its neighbours, a configurable fraction of which live on a remote
  core (Table 2: 768 K nodes, degree 2, 15 % remote).  The remote fraction
  produces low-degree producer/consumer sharing; the bulk of the footprint
  is private.

* **ocean** performs red-black Gauss–Seidel style relaxation sweeps over a
  2-D grid partitioned into horizontal bands, one per core.  A core's
  sweep touches only its own band except at the band boundaries, where the
  stencil reads the neighbouring core's edge rows.  The footprint is
  therefore almost entirely private and — with a grid sized beyond the
  aggregate cache capacity — keeps the private caches full of distinct
  blocks, which is exactly the "nearly 100 % unique private blocks"
  behaviour the paper highlights for ocean (Sections 5.2 and 5.4).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.coherence.system import MemoryAccess
from repro.config import SystemConfig
from repro.workloads.base import AddressSpaceLayout, Workload, WorkloadCategory

__all__ = ["Em3dWorkload", "OceanWorkload"]


class Em3dWorkload(Workload):
    """Bipartite-graph propagation kernel (em3d).

    Parameters
    ----------
    nodes_per_core_l2x:
        Number of graph nodes owned by each core, in units of one
        private-L2 capacity (in blocks).  Values near 1 keep each private
        cache full of its own partition.
    degree:
        Neighbours read per node update (Table 2 uses degree 2).
    remote_fraction:
        Probability that a neighbour lives on another core (15 % in
        Table 2).
    values_per_block:
        Graph node values packed per cache block; 8 models 8-byte values
        in 64-byte blocks.
    """

    def __init__(
        self,
        name: str = "em3d",
        nodes_per_core_l2x: float = 1.2,
        degree: int = 2,
        remote_fraction: float = 0.15,
        values_per_block: int = 8,
    ) -> None:
        super().__init__(name, WorkloadCategory.SCIENTIFIC)
        if nodes_per_core_l2x <= 0:
            raise ValueError("nodes_per_core_l2x must be positive")
        if degree <= 0:
            raise ValueError("degree must be positive")
        if not 0.0 <= remote_fraction <= 1.0:
            raise ValueError("remote_fraction must be in [0, 1]")
        if values_per_block <= 0:
            raise ValueError("values_per_block must be positive")
        self.nodes_per_core_l2x = nodes_per_core_l2x
        self.degree = degree
        self.remote_fraction = remote_fraction
        self.values_per_block = values_per_block

    def trace(self, system: SystemConfig, seed: int = 0) -> Iterator[MemoryAccess]:
        rng = np.random.default_rng(seed)
        block_bytes = system.block_bytes
        # Each core owns a contiguous partition of node blocks.
        blocks_per_core = max(
            1,
            int(self.nodes_per_core_l2x * system.l2_config.num_frames),
        )
        nodes_per_core = blocks_per_core * self.values_per_block
        layout = AddressSpaceLayout(block_bytes)
        partition_bases = [
            layout.allocate(blocks_per_core) for _ in range(system.num_cores)
        ]
        num_cores = system.num_cores

        def node_address(core: int, node_index: int) -> int:
            block = node_index // self.values_per_block
            return partition_bases[core] + block * block_bytes

        batch = 1024
        while True:
            cores = rng.integers(0, num_cores, size=batch)
            nodes = rng.integers(0, nodes_per_core, size=batch)
            remote_draws = rng.random((batch, self.degree))
            remote_cores = rng.integers(0, num_cores, size=(batch, self.degree))
            neighbour_nodes = rng.integers(0, nodes_per_core, size=(batch, self.degree))
            for i in range(batch):
                core = int(cores[i])
                # Read the neighbours feeding this node.
                for d in range(self.degree):
                    owner = core
                    if remote_draws[i, d] < self.remote_fraction:
                        owner = int(remote_cores[i, d])
                    yield MemoryAccess(
                        core=core,
                        address=node_address(owner, int(neighbour_nodes[i, d])),
                        is_write=False,
                    )
                # Write the updated node value (always local).
                yield MemoryAccess(
                    core=core,
                    address=node_address(core, int(nodes[i])),
                    is_write=True,
                )


class OceanWorkload(Workload):
    """Partitioned 2-D grid relaxation (ocean).

    The grid is split into horizontal bands, one per core.  Each sweep
    visits the band row by row; updating a point reads its four-point
    stencil, so the first and last rows of a band also read one row owned
    by the neighbouring core.  ``grid_l2x`` sizes the *per-core band* in
    units of one private-L2 capacity so the aggregate footprint exceeds
    the aggregate cache capacity, as the 1026×1026 double-precision grid
    of Table 2 does relative to the paper's 16 MB of L2.
    """

    def __init__(
        self,
        name: str = "ocean",
        grid_l2x: float = 1.5,
        points_per_block: int = 8,
        write_back_every_point: bool = True,
    ) -> None:
        super().__init__(name, WorkloadCategory.SCIENTIFIC)
        if grid_l2x <= 0:
            raise ValueError("grid_l2x must be positive")
        if points_per_block <= 0:
            raise ValueError("points_per_block must be positive")
        self.grid_l2x = grid_l2x
        self.points_per_block = points_per_block
        self.write_back_every_point = write_back_every_point

    def trace(self, system: SystemConfig, seed: int = 0) -> Iterator[MemoryAccess]:
        block_bytes = system.block_bytes
        blocks_per_band = max(
            2, int(self.grid_l2x * system.l2_config.num_frames)
        )
        # Arrange each band as rows of blocks; a square-ish aspect ratio keeps
        # boundary rows a small fraction of the band, like a real 2-D grid.
        rows_per_band = max(2, int(np.sqrt(blocks_per_band)))
        blocks_per_row = max(1, blocks_per_band // rows_per_band)
        layout = AddressSpaceLayout(block_bytes)
        band_bases = [
            layout.allocate(rows_per_band * blocks_per_row)
            for _ in range(system.num_cores)
        ]
        num_cores = system.num_cores

        def block_address(core: int, row: int, column: int) -> int:
            return band_bases[core] + (row * blocks_per_row + column) * block_bytes

        while True:
            # One full relaxation sweep: every core walks its band in lockstep
            # (interleaved here row by row so the directory sees concurrent
            # activity from all tiles, as it would in the parallel run).
            for row in range(rows_per_band):
                for column in range(blocks_per_row):
                    for core in range(num_cores):
                        # North neighbour: previous row, possibly owned by core-1.
                        if row > 0:
                            yield MemoryAccess(
                                core=core,
                                address=block_address(core, row - 1, column),
                                is_write=False,
                            )
                        elif core > 0:
                            yield MemoryAccess(
                                core=core,
                                address=block_address(
                                    core - 1, rows_per_band - 1, column
                                ),
                                is_write=False,
                            )
                        # South neighbour: next row, possibly owned by core+1.
                        if row < rows_per_band - 1:
                            yield MemoryAccess(
                                core=core,
                                address=block_address(core, row + 1, column),
                                is_write=False,
                            )
                        elif core < num_cores - 1:
                            yield MemoryAccess(
                                core=core,
                                address=block_address(core + 1, 0, column),
                                is_write=False,
                            )
                        # The point itself: read-modify-write.
                        address = block_address(core, row, column)
                        yield MemoryAccess(core=core, address=address, is_write=False)
                        if self.write_back_every_point:
                            yield MemoryAccess(
                                core=core, address=address, is_write=True
                            )
