"""Synthetic workload generators standing in for the paper's Table 2 suite.

The paper drives its evaluation with full-system traces of commercial
server workloads (TPC-C on DB2 and Oracle, TPC-H queries 2/16/17, SPECweb
on Apache and Zeus) and two scientific kernels (em3d, ocean).  Those
software stacks cannot be run here, but the directory-level metrics the
paper reports depend only on the *shape* of the access stream: how large
the per-core footprints are, how much of the footprint is shared (and by
how many cores), how skewed the accesses are, and the read/write mix.

This package provides generators parameterised by exactly those knobs:

* :class:`~repro.workloads.synthetic.SyntheticWorkload` — a generic
  server-workload generator (shared instructions + shared data + private
  data, Zipf-skewed);
* :class:`~repro.workloads.scientific.Em3dWorkload` — a bipartite-graph
  propagation kernel with a configurable remote-neighbour fraction,
  mirroring the em3d parameters in Table 2;
* :class:`~repro.workloads.scientific.OceanWorkload` — a partitioned 2-D
  grid stencil sweep whose footprint is almost entirely private,
  mirroring ocean;
* :mod:`~repro.workloads.suite` — the nine named workloads of Table 2 with
  parameters calibrated so the relative behaviour in Figure 8 (which
  workloads have mostly-shared vs. mostly-private footprints) holds.

Footprints are expressed relative to the tracked private cache size so the
same workload definitions drive both the Shared-L2 (64 KB L1) and
Private-L2 (1 MB L2) configurations, as well as the scaled-down systems
used by the fast test/benchmark paths.
"""

from repro.workloads.base import Workload, WorkloadCategory, ZipfSampler
from repro.workloads.scientific import Em3dWorkload, OceanWorkload
from repro.workloads.suite import (
    WORKLOAD_NAMES,
    get_workload,
    iter_workloads,
    workload_table,
)
from repro.workloads.synthetic import SyntheticWorkload, UniformRandomWorkload

__all__ = [
    "Workload",
    "WorkloadCategory",
    "ZipfSampler",
    "SyntheticWorkload",
    "UniformRandomWorkload",
    "Em3dWorkload",
    "OceanWorkload",
    "WORKLOAD_NAMES",
    "get_workload",
    "iter_workloads",
    "workload_table",
]
