"""The Table 2 workload suite.

Nine named workloads mirroring the paper's suite, grouped as in Table 2:

========  ==========  ==================================================
Name      Category    Behaviour the parameters encode
========  ==========  ==================================================
DB2       OLTP        Large shared code path, hot shared buffer pool,
Oracle    OLTP        modest per-thread private state, skewed accesses.
Qry2      DSS         Sequential scan/join queries: small code, little
Qry16     DSS         sharing, per-core scan buffers larger than the
Qry17     DSS         private caches, near-uniform access within scans.
Apache    Web         Web servers: the largest shared instruction
Zeus      Web         footprints, hot shared session/data structures.
em3d      Scientific  Bipartite-graph propagation, 15 % remote
                      neighbours, mostly-private footprint.
ocean     Scientific  Banded 2-D grid relaxation, ~100 % unique private
                      blocks (the paper's worst case for occupancy).
========  ==========  ==================================================

The absolute footprints of the real applications (10 GB TPC-C databases,
1 GB TPC-H database, 16 K-connection web servers) vastly exceed any cache;
what matters to the directory is how the *cache-resident* portion divides
into shared instructions, shared data and private data.  The parameters
below were chosen so that the qualitative behaviour of Figure 8 holds:
server workloads show substantial instruction/data sharing (well-below-1x
occupancy in the Shared-L2 configuration), DSS and scientific workloads
are dominated by private footprints in the Private-L2 configuration, and
ocean is the extreme case with essentially all blocks unique to one cache.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.workloads.base import Workload, WorkloadCategory
from repro.workloads.scientific import Em3dWorkload, OceanWorkload
from repro.workloads.synthetic import SyntheticWorkload

__all__ = ["WORKLOAD_NAMES", "get_workload", "iter_workloads", "workload_table"]


def _build_suite() -> Dict[str, Workload]:
    suite: Dict[str, Workload] = {}

    # -- OLTP: TPC-C on DB2 and Oracle --------------------------------------
    suite["DB2"] = SyntheticWorkload(
        name="DB2",
        category=WorkloadCategory.OLTP,
        instr_fraction=0.35,
        instr_footprint_l1x=6.0,
        shared_data_footprint_l2x=2.0,
        private_footprint_l2x=0.45,
        shared_data_fraction=0.50,
        shared_write_fraction=0.18,
        private_write_fraction=0.30,
        zipf_alpha=0.80,
        migration_fraction=0.03,
    )
    suite["Oracle"] = SyntheticWorkload(
        name="Oracle",
        category=WorkloadCategory.OLTP,
        instr_fraction=0.33,
        instr_footprint_l1x=8.0,
        shared_data_footprint_l2x=1.5,
        private_footprint_l2x=0.55,
        shared_data_fraction=0.45,
        shared_write_fraction=0.20,
        private_write_fraction=0.32,
        zipf_alpha=0.75,
        migration_fraction=0.04,
    )

    # -- DSS: TPC-H queries 2, 16, 17 ----------------------------------------
    suite["Qry2"] = SyntheticWorkload(
        name="Qry2",
        category=WorkloadCategory.DSS,
        instr_fraction=0.15,
        instr_footprint_l1x=2.0,
        shared_data_footprint_l2x=0.6,
        private_footprint_l2x=1.10,
        shared_data_fraction=0.18,
        shared_write_fraction=0.05,
        private_write_fraction=0.10,
        zipf_alpha=0.25,
        migration_fraction=0.01,
    )
    suite["Qry16"] = SyntheticWorkload(
        name="Qry16",
        category=WorkloadCategory.DSS,
        instr_fraction=0.16,
        instr_footprint_l1x=2.5,
        shared_data_footprint_l2x=0.8,
        private_footprint_l2x=0.95,
        shared_data_fraction=0.22,
        shared_write_fraction=0.05,
        private_write_fraction=0.12,
        zipf_alpha=0.30,
        migration_fraction=0.01,
    )
    suite["Qry17"] = SyntheticWorkload(
        name="Qry17",
        category=WorkloadCategory.DSS,
        instr_fraction=0.14,
        instr_footprint_l1x=2.0,
        shared_data_footprint_l2x=0.5,
        private_footprint_l2x=1.25,
        shared_data_fraction=0.15,
        shared_write_fraction=0.04,
        private_write_fraction=0.10,
        zipf_alpha=0.20,
        migration_fraction=0.01,
    )

    # -- Web: SPECweb99 on Apache and Zeus ------------------------------------
    suite["Apache"] = SyntheticWorkload(
        name="Apache",
        category=WorkloadCategory.WEB,
        instr_fraction=0.40,
        instr_footprint_l1x=7.0,
        shared_data_footprint_l2x=1.2,
        private_footprint_l2x=0.35,
        shared_data_fraction=0.40,
        shared_write_fraction=0.12,
        private_write_fraction=0.25,
        zipf_alpha=0.90,
        migration_fraction=0.05,
    )
    suite["Zeus"] = SyntheticWorkload(
        name="Zeus",
        category=WorkloadCategory.WEB,
        instr_fraction=0.38,
        instr_footprint_l1x=5.5,
        shared_data_footprint_l2x=1.0,
        private_footprint_l2x=0.40,
        shared_data_fraction=0.38,
        shared_write_fraction=0.12,
        private_write_fraction=0.25,
        zipf_alpha=0.85,
        migration_fraction=0.04,
    )

    # -- Scientific ------------------------------------------------------------
    suite["em3d"] = Em3dWorkload(
        name="em3d",
        nodes_per_core_l2x=1.2,
        degree=2,
        remote_fraction=0.15,
    )
    suite["ocean"] = OceanWorkload(
        name="ocean",
        grid_l2x=1.5,
    )
    return suite


_SUITE = _build_suite()

#: Workload names in the order the paper's figures present them.
WORKLOAD_NAMES: List[str] = [
    "DB2",
    "Oracle",
    "Qry2",
    "Qry16",
    "Qry17",
    "Apache",
    "Zeus",
    "em3d",
    "ocean",
]


def get_workload(name: str) -> Workload:
    """Return the named Table 2 workload.

    Raises ``KeyError`` with the list of valid names if the name is unknown.
    """
    try:
        return _SUITE[name]
    except KeyError:
        valid = ", ".join(WORKLOAD_NAMES)
        raise KeyError(f"unknown workload {name!r}; expected one of: {valid}")


def iter_workloads() -> Iterator[Workload]:
    """Iterate over the suite in the paper's presentation order."""
    for name in WORKLOAD_NAMES:
        yield _SUITE[name]


def workload_table() -> List[Dict[str, str]]:
    """Table 2 as data: one row per workload (name, category, description)."""
    descriptions = {
        "DB2": "IBM DB2 v8 ESE, TPC-C, 100 warehouses, 64 clients",
        "Oracle": "Oracle 10g, TPC-C, 100 warehouses, 16 clients",
        "Qry2": "IBM DB2 v8 ESE, TPC-H query 2, 1 GB database",
        "Qry16": "IBM DB2 v8 ESE, TPC-H query 16, 1 GB database",
        "Qry17": "IBM DB2 v8 ESE, TPC-H query 17, 1 GB database",
        "Apache": "Apache HTTP Server v2.0, SPECweb99, 16 K connections",
        "Zeus": "Zeus Web Server v4.3, SPECweb99, 16 K connections",
        "em3d": "768 K nodes, degree 2, 15 % remote",
        "ocean": "1026x1026 grid, 9600 s relaxations",
    }
    return [
        {
            "name": name,
            "category": _SUITE[name].category.value,
            "description": descriptions[name],
        }
        for name in WORKLOAD_NAMES
    ]
