"""First-order SRAM/CAM energy and area primitives.

The paper's scaling comparison does not depend on absolute joules or
square millimetres — every curve is normalised to the energy of a 1 MB
16-way L2 tag lookup (Figures 4/13 top) or to the area of a 1 MB L2 data
array (Figures 4/13 bottom).  What the comparison *does* depend on is how
the number of bits an operation activates, and the number of bits a
structure stores, scale with core count.

The primitives here therefore use a deliberately simple, auditable model:

* dynamic read/write energy is proportional to the number of bits
  activated by the access (a CACTI-style constant per bit, with writes
  slightly more expensive than reads);
* CAM/associative search energy is proportional to the number of bits
  *searched*, with a higher per-bit constant because every searched bit
  drives a match line;
* area is proportional to the number of bits stored, with CAM bits
  costing roughly twice the area of SRAM bits (the standard 9T-vs-6T
  overhead plus match lines).

All constants are collected in :class:`SramParameters` so sensitivity
studies can tweak them; the defaults keep the ratios the architecture
community commonly quotes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CacheConfig

__all__ = [
    "SramParameters",
    "sram_read_energy",
    "sram_write_energy",
    "cam_search_energy",
    "sram_area",
    "cam_area",
    "l2_tag_lookup_energy",
    "l2_data_array_area",
]


@dataclass(frozen=True)
class SramParameters:
    """Per-bit energy and area constants (arbitrary but consistent units)."""

    read_energy_per_bit: float = 1.0
    write_energy_per_bit: float = 1.2
    cam_search_energy_per_bit: float = 2.0
    sram_area_per_bit: float = 1.0
    cam_area_per_bit: float = 2.0
    #: Fixed per-access overhead (decoder + wordline) expressed as an
    #: equivalent number of bit-reads; keeps tiny accesses from looking free.
    access_overhead_bits: float = 16.0


DEFAULT_PARAMETERS = SramParameters()


def sram_read_energy(bits_activated: float, params: SramParameters = DEFAULT_PARAMETERS) -> float:
    """Energy of reading ``bits_activated`` bits from an SRAM array."""
    if bits_activated < 0:
        raise ValueError("bits_activated must be non-negative")
    return params.read_energy_per_bit * (bits_activated + params.access_overhead_bits)


def sram_write_energy(bits_activated: float, params: SramParameters = DEFAULT_PARAMETERS) -> float:
    """Energy of writing ``bits_activated`` bits into an SRAM array."""
    if bits_activated < 0:
        raise ValueError("bits_activated must be non-negative")
    return params.write_energy_per_bit * (bits_activated + params.access_overhead_bits)


def cam_search_energy(bits_searched: float, params: SramParameters = DEFAULT_PARAMETERS) -> float:
    """Energy of an associative search over ``bits_searched`` bits."""
    if bits_searched < 0:
        raise ValueError("bits_searched must be non-negative")
    return params.cam_search_energy_per_bit * (
        bits_searched + params.access_overhead_bits
    )


def sram_area(bits_stored: float, params: SramParameters = DEFAULT_PARAMETERS) -> float:
    """Area of an SRAM array storing ``bits_stored`` bits."""
    if bits_stored < 0:
        raise ValueError("bits_stored must be non-negative")
    return params.sram_area_per_bit * bits_stored


def cam_area(bits_stored: float, params: SramParameters = DEFAULT_PARAMETERS) -> float:
    """Area of a CAM array storing ``bits_stored`` searchable bits."""
    if bits_stored < 0:
        raise ValueError("bits_stored must be non-negative")
    return params.cam_area_per_bit * bits_stored


def l2_tag_lookup_energy(
    l2_config: CacheConfig,
    address_bits: int = 48,
    params: SramParameters = DEFAULT_PARAMETERS,
) -> float:
    """Energy of one lookup in the reference 1 MB 16-way L2 tag array.

    A set-associative tag lookup activates the tags (plus a couple of
    state bits) of every way of the indexed set.
    """
    tag_bits = l2_config.tag_bits(address_bits) + 2
    return sram_read_energy(l2_config.associativity * tag_bits, params)


def l2_data_array_area(
    l2_config: CacheConfig, params: SramParameters = DEFAULT_PARAMETERS
) -> float:
    """Area of the reference 1 MB L2 data array."""
    return sram_area(l2_config.size_bytes * 8, params)
