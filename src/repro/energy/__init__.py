"""Analytical energy and area model for coherence directories.

Figures 4 and 13 of the paper are analytical projections: for each
directory organization they plot, per core and per directory slice, the
energy of an average directory operation (relative to a 1 MB 16-way L2
tag lookup) and the storage area (relative to a 1 MB L2 data array) as
the core count grows from 16 to 1024.

This package reproduces those projections.  :mod:`repro.energy.sram`
provides first-order SRAM/CAM access-energy and area primitives plus the
two normalisation references; :mod:`repro.energy.model` encodes, for every
organization, how many bits each operation activates and how many bits the
slice stores, as a function of the core count — which is all the paper's
scaling argument depends on.
"""

from repro.energy.model import (
    DirectoryEnergyAreaModel,
    ScalingScenario,
    ORGANIZATIONS,
    organization_names,
    relative_area,
    relative_energy,
    scaling_table,
)
from repro.energy.sram import (
    SramParameters,
    cam_area,
    cam_search_energy,
    l2_data_array_area,
    l2_tag_lookup_energy,
    sram_area,
    sram_read_energy,
    sram_write_energy,
)

__all__ = [
    "DirectoryEnergyAreaModel",
    "ScalingScenario",
    "ORGANIZATIONS",
    "organization_names",
    "relative_energy",
    "relative_area",
    "scaling_table",
    "SramParameters",
    "sram_read_energy",
    "sram_write_energy",
    "cam_search_energy",
    "sram_area",
    "cam_area",
    "l2_tag_lookup_energy",
    "l2_data_array_area",
]
