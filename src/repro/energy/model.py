"""Per-organization energy and area scaling models (Figures 4 and 13).

Each model answers two questions as a function of the core count:

* how many bits does one directory slice store? (area)
* how many bits does each kind of directory operation activate? (energy)

The per-core quantities plotted by the paper then follow directly, because
with one address-interleaved slice per core the per-core directory cost
*is* the per-slice cost:

* the number of blocks a slice must track is constant
  (``caches_per_core × frames per tracked cache``) regardless of the core
  count;
* what changes with core count is (a) the width of sharer encodings
  (linear for full vectors, logarithmic for coarse vectors, ~square-root
  for hierarchical), and (b) the associativity of Duplicate-Tag-like
  lookups and the width of Tagless filter rows (both linear in the number
  of caches).

Operation energies are weighted with the paper's measured event mix
(footnote 1: insert 23.5 %, add sharer 26.9 %, remove sharer 24.9 %,
remove tag 23.5 %, invalidate-all 1.2 %).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Mapping, Sequence

from repro.config import PAPER_EVENT_MIX, CacheConfig
from repro.energy.sram import (
    DEFAULT_PARAMETERS,
    SramParameters,
    cam_area,
    cam_search_energy,
    l2_data_array_area,
    l2_tag_lookup_energy,
    sram_area,
    sram_read_energy,
    sram_write_energy,
)

__all__ = [
    "ScalingScenario",
    "DirectoryEnergyAreaModel",
    "DuplicateTagModel",
    "TaglessModel",
    "SparseModel",
    "InCacheModel",
    "CuckooModel",
    "ORGANIZATIONS",
    "organization_names",
    "relative_energy",
    "relative_area",
    "scaling_table",
]


# --------------------------------------------------------------------------- #
# Scenario
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScalingScenario:
    """Everything the scaling formulas need besides the core count.

    ``tracked_cache`` is the private cache the directory tracks (64 KB
    2-way L1 in the Shared-L2 configuration, 1 MB 16-way L2 in the
    Private-L2 configuration); ``caches_per_core`` is 2 for split I/D L1s
    and 1 for unified private L2s; ``l2_config`` provides the two
    normalisation references (tag-lookup energy and data-array area).
    """

    tracked_cache: CacheConfig
    caches_per_core: int
    l2_config: CacheConfig
    is_shared_l2: bool
    address_bits: int = 48
    event_mix: Mapping[str, float] = field(default_factory=lambda: dict(PAPER_EVENT_MIX))
    params: SramParameters = DEFAULT_PARAMETERS

    @classmethod
    def shared_l2(cls) -> "ScalingScenario":
        """The paper's Shared-L2 scenario: 2 × 64 KB 2-way L1 caches per core."""
        return cls(
            tracked_cache=CacheConfig(size_bytes=64 * 1024, associativity=2),
            caches_per_core=2,
            l2_config=CacheConfig(size_bytes=1024 * 1024, associativity=16),
            is_shared_l2=True,
        )

    @classmethod
    def private_l2(cls) -> "ScalingScenario":
        """The paper's Private-L2 scenario: one 1 MB 16-way L2 per core."""
        return cls(
            tracked_cache=CacheConfig(size_bytes=1024 * 1024, associativity=16),
            caches_per_core=1,
            l2_config=CacheConfig(size_bytes=1024 * 1024, associativity=16),
            is_shared_l2=False,
        )

    # -- derived quantities ------------------------------------------------
    def num_caches(self, cores: int) -> int:
        """Total number of tracked private caches at ``cores`` cores."""
        return cores * self.caches_per_core

    def frames_per_slice(self) -> int:
        """Blocks one slice must be able to track (constant in core count)."""
        return self.caches_per_core * self.tracked_cache.num_frames

    def tag_bits(self) -> int:
        """Stored tag width (block address bits; index bits are kept for
        simplicity, a small constant offset that cancels in the ratios)."""
        return self.address_bits - self.tracked_cache.block_offset_bits

    def reference_energy(self) -> float:
        return l2_tag_lookup_energy(self.l2_config, self.address_bits, self.params)

    def reference_area(self) -> float:
        return l2_data_array_area(self.l2_config, self.params)


@lru_cache(maxsize=None)
def _sharer_bits(encoding: str, num_caches: int) -> float:
    """Per-entry sharer-encoding width for ``num_caches`` caches.

    Memoized (together with :func:`repro.directories.sharers._ceil_log2`
    and :func:`~repro.directories.sharers.sharer_format`) so the Figure 13
    sweep — which costs every organization at every core count — resolves
    each (encoding, cache-count) width once instead of recomputing
    ``math.log2`` per entry."""
    if num_caches <= 0:
        raise ValueError("num_caches must be positive")
    log_caches = max(1.0, math.ceil(math.log2(num_caches)))
    if encoding == "full":
        return float(num_caches)
    if encoding == "coarse":
        # The paper's Sparse Coarse budget: 2*log2(#caches) bits per entry.
        return 2.0 * log_caches
    if encoding == "hierarchical":
        # First-level group vector + one second-level sub-vector, both of
        # width ~sqrt(#caches) (Wallach '92 / Guo et al. '10 organization).
        return 2.0 * math.ceil(math.sqrt(num_caches))
    raise ValueError(f"unknown sharer encoding {encoding!r}")


# --------------------------------------------------------------------------- #
# Model base class
# --------------------------------------------------------------------------- #
class DirectoryEnergyAreaModel(abc.ABC):
    """Area and per-operation energy of one directory organization."""

    def __init__(self, name: str) -> None:
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def applicable(self, scenario: ScalingScenario) -> bool:
        """Whether the organization exists in this scenario (e.g. the
        in-cache directory requires an inclusive shared L2)."""
        return True

    @abc.abstractmethod
    def storage_bits(self, scenario: ScalingScenario, cores: int) -> float:
        """Bits stored by one directory slice."""

    @abc.abstractmethod
    def area(self, scenario: ScalingScenario, cores: int) -> float:
        """Area of one directory slice (per-core area)."""

    @abc.abstractmethod
    def operation_energies(
        self, scenario: ScalingScenario, cores: int
    ) -> Dict[str, float]:
        """Energy of each directory event type (keys of ``PAPER_EVENT_MIX``)."""

    def energy_per_operation(self, scenario: ScalingScenario, cores: int) -> float:
        """Event-mix-weighted average energy of one directory operation."""
        energies = self.operation_energies(scenario, cores)
        mix = scenario.event_mix
        total_weight = sum(mix.values())
        return sum(energies[event] * weight for event, weight in mix.items()) / total_weight

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self._name!r})"


# --------------------------------------------------------------------------- #
# Duplicate-Tag
# --------------------------------------------------------------------------- #
class DuplicateTagModel(DirectoryEnergyAreaModel):
    """Duplicate-Tag directory: mirrors every tracked cache's tag array.

    Storage per slice is one tag per tracked frame (constant per core),
    but every lookup searches ``cache associativity × number of caches``
    tags associatively, so lookup energy grows linearly with the core
    count — the quadratic aggregate growth of Section 3.1.
    """

    def __init__(self, name: str = "Duplicate-Tag") -> None:
        super().__init__(name)

    def storage_bits(self, scenario: ScalingScenario, cores: int) -> float:
        return scenario.frames_per_slice() * (scenario.tag_bits() + 1)

    def area(self, scenario: ScalingScenario, cores: int) -> float:
        # The wide associative search requires CAM-style cells.
        return cam_area(self.storage_bits(scenario, cores), scenario.params)

    def operation_energies(
        self, scenario: ScalingScenario, cores: int
    ) -> Dict[str, float]:
        params = scenario.params
        tag = scenario.tag_bits()
        searched = scenario.tracked_cache.associativity * scenario.num_caches(cores) * tag
        lookup = cam_search_energy(searched, params)
        write_entry = sram_write_energy(tag + 1, params)
        return {
            "insert_tag": lookup + write_entry,
            "add_sharer": lookup + write_entry,
            "remove_sharer": lookup + write_entry,
            "remove_tag": lookup + write_entry,
            "invalidate_all": lookup,
        }


# --------------------------------------------------------------------------- #
# Tagless
# --------------------------------------------------------------------------- #
class TaglessModel(DirectoryEnergyAreaModel):
    """Tagless directory (Zebchuk et al.): grid of Bloom filters.

    The organization stores no tags — only a few filter bits per tracked
    frame — which makes its area tiny and essentially constant per core.
    Every lookup, however, must test (and every update must read-modify-
    write) a sharer-vector-wide row per probed filter position, so the
    bits touched per operation grow linearly with the number of caches:
    the same energy-scaling slope as the Duplicate-Tag organization, just
    offset by a constant factor (Section 3.3).
    """

    def __init__(
        self,
        name: str = "Tagless",
        bits_per_frame: float = 3.0,
        num_probes: int = 2,
    ) -> None:
        super().__init__(name)
        if bits_per_frame <= 0:
            raise ValueError("bits_per_frame must be positive")
        if num_probes <= 0:
            raise ValueError("num_probes must be positive")
        self._bits_per_frame = bits_per_frame
        self._num_probes = num_probes

    def storage_bits(self, scenario: ScalingScenario, cores: int) -> float:
        return scenario.frames_per_slice() * self._bits_per_frame

    def area(self, scenario: ScalingScenario, cores: int) -> float:
        return sram_area(self.storage_bits(scenario, cores), scenario.params)

    def operation_energies(
        self, scenario: ScalingScenario, cores: int
    ) -> Dict[str, float]:
        params = scenario.params
        row_bits = scenario.num_caches(cores)
        lookup = sram_read_energy(self._num_probes * row_bits, params)
        update = lookup + sram_write_energy(self._num_probes * row_bits, params)
        return {
            "insert_tag": update,
            "add_sharer": update,
            "remove_sharer": update,
            "remove_tag": update,
            "invalidate_all": lookup,
        }


# --------------------------------------------------------------------------- #
# Sparse (set-associative) family
# --------------------------------------------------------------------------- #
class SparseModel(DirectoryEnergyAreaModel):
    """Set-associative Sparse directory with a configurable sharer encoding.

    The capacity must be over-provisioned (8x in the paper's scalable
    variants) to keep set-conflict invalidations rare, which is exactly
    the area cost the Cuckoo directory removes.
    """

    def __init__(
        self,
        name: str,
        provisioning: float = 8.0,
        ways: int = 8,
        encoding: str = "coarse",
        area_overhead: float = 1.0,
    ) -> None:
        super().__init__(name)
        if provisioning <= 0:
            raise ValueError("provisioning must be positive")
        if ways <= 0:
            raise ValueError("ways must be positive")
        if area_overhead < 1.0:
            raise ValueError("area_overhead must be >= 1")
        self._provisioning = provisioning
        self._ways = ways
        self._encoding = encoding
        self._area_overhead = area_overhead

    @property
    def provisioning(self) -> float:
        return self._provisioning

    @property
    def ways(self) -> int:
        return self._ways

    @property
    def encoding(self) -> str:
        return self._encoding

    def entries(self, scenario: ScalingScenario) -> float:
        return self._provisioning * scenario.frames_per_slice()

    def entry_bits(self, scenario: ScalingScenario, cores: int) -> float:
        return (
            1
            + scenario.tag_bits()
            + _sharer_bits(self._encoding, scenario.num_caches(cores))
        )

    def storage_bits(self, scenario: ScalingScenario, cores: int) -> float:
        return self.entries(scenario) * self.entry_bits(scenario, cores)

    def area(self, scenario: ScalingScenario, cores: int) -> float:
        return self._area_overhead * sram_area(
            self.storage_bits(scenario, cores), scenario.params
        )

    def operation_energies(
        self, scenario: ScalingScenario, cores: int
    ) -> Dict[str, float]:
        params = scenario.params
        tag = scenario.tag_bits()
        sharer_bits = _sharer_bits(self._encoding, scenario.num_caches(cores))
        lookup = sram_read_energy(self._ways * tag + sharer_bits, params)
        write_entry = sram_write_energy(tag + sharer_bits + 1, params)
        write_sharers = sram_write_energy(sharer_bits, params)
        return {
            "insert_tag": lookup + write_entry,
            "add_sharer": lookup + write_sharers,
            "remove_sharer": lookup + write_sharers,
            "remove_tag": lookup + write_sharers,
            "invalidate_all": lookup,
        }


class InCacheModel(DirectoryEnergyAreaModel):
    """In-cache directory: sharer vectors embedded in the shared-L2 tags.

    Tag storage and tag-lookup energy come for free with the L2 access,
    but there is one (full) sharer vector per L2 frame, so both area and
    the bits touched per operation grow linearly with the core count —
    the organization stops being attractive beyond ~128 cores
    (Section 5.6).  Only meaningful for the Shared-L2 configuration.
    """

    def __init__(self, name: str = "Sparse 8x In-Cache", encoding: str = "full") -> None:
        super().__init__(name)
        self._encoding = encoding

    def applicable(self, scenario: ScalingScenario) -> bool:
        return scenario.is_shared_l2

    def storage_bits(self, scenario: ScalingScenario, cores: int) -> float:
        vector_bits = _sharer_bits(self._encoding, scenario.num_caches(cores))
        return scenario.l2_config.num_frames * vector_bits

    def area(self, scenario: ScalingScenario, cores: int) -> float:
        return sram_area(self.storage_bits(scenario, cores), scenario.params)

    def operation_energies(
        self, scenario: ScalingScenario, cores: int
    ) -> Dict[str, float]:
        params = scenario.params
        vector_bits = _sharer_bits(self._encoding, scenario.num_caches(cores))
        read_vector = sram_read_energy(vector_bits, params)
        write_vector = sram_write_energy(vector_bits, params)
        return {
            "insert_tag": read_vector + write_vector,
            "add_sharer": read_vector + write_vector,
            "remove_sharer": read_vector + write_vector,
            "remove_tag": read_vector + write_vector,
            "invalidate_all": read_vector,
        }


# --------------------------------------------------------------------------- #
# Cuckoo
# --------------------------------------------------------------------------- #
class CuckooModel(DirectoryEnergyAreaModel):
    """Cuckoo directory: low associativity, no capacity over-provisioning.

    Lookup cost equals a ``ways``-way set-associative lookup; insertions
    additionally rewrite ``average_attempts`` entries (measured at well
    under 2 for the paper's chosen designs, Section 5.3).  Because set
    conflicts are resolved by displacement instead of over-provisioning,
    the slice needs only ~1x–1.5x the worst-case entry count.
    """

    def __init__(
        self,
        name: str,
        provisioning: float = 1.0,
        ways: int = 4,
        encoding: str = "coarse",
        average_attempts: float = 1.2,
        area_overhead: float = 1.0,
    ) -> None:
        super().__init__(name)
        if provisioning <= 0:
            raise ValueError("provisioning must be positive")
        if ways < 2:
            raise ValueError("a cuckoo directory needs at least 2 ways")
        if average_attempts < 1.0:
            raise ValueError("average_attempts must be >= 1")
        if area_overhead < 1.0:
            raise ValueError("area_overhead must be >= 1")
        self._provisioning = provisioning
        self._ways = ways
        self._encoding = encoding
        self._average_attempts = average_attempts
        self._area_overhead = area_overhead

    @property
    def provisioning(self) -> float:
        return self._provisioning

    @property
    def ways(self) -> int:
        return self._ways

    @property
    def encoding(self) -> str:
        return self._encoding

    def entries(self, scenario: ScalingScenario) -> float:
        return self._provisioning * scenario.frames_per_slice()

    def entry_bits(self, scenario: ScalingScenario, cores: int) -> float:
        return (
            1
            + scenario.tag_bits()
            + _sharer_bits(self._encoding, scenario.num_caches(cores))
        )

    def storage_bits(self, scenario: ScalingScenario, cores: int) -> float:
        return self.entries(scenario) * self.entry_bits(scenario, cores)

    def area(self, scenario: ScalingScenario, cores: int) -> float:
        return self._area_overhead * sram_area(
            self.storage_bits(scenario, cores), scenario.params
        )

    def operation_energies(
        self, scenario: ScalingScenario, cores: int
    ) -> Dict[str, float]:
        params = scenario.params
        tag = scenario.tag_bits()
        sharer_bits = _sharer_bits(self._encoding, scenario.num_caches(cores))
        entry_bits = tag + sharer_bits + 1
        lookup = sram_read_energy(self._ways * tag + sharer_bits, params)
        write_sharers = sram_write_energy(sharer_bits, params)
        insert = lookup + self._average_attempts * sram_write_energy(entry_bits, params)
        return {
            "insert_tag": insert,
            "add_sharer": lookup + write_sharers,
            "remove_sharer": lookup + write_sharers,
            "remove_tag": lookup + write_sharers,
            "invalidate_all": lookup,
        }


# --------------------------------------------------------------------------- #
# Registry and convenience functions
# --------------------------------------------------------------------------- #
def _build_registry() -> Dict[str, DirectoryEnergyAreaModel]:
    models: List[DirectoryEnergyAreaModel] = [
        DuplicateTagModel(),
        TaglessModel(),
        InCacheModel(name="Sparse 8x In-Cache"),
        SparseModel(name="Sparse 8x Hierarchical", encoding="hierarchical", area_overhead=1.3),
        SparseModel(name="Sparse 8x Coarse", encoding="coarse"),
        SparseModel(name="Sparse 8x Full", encoding="full"),
        CuckooModel(name="Cuckoo Hierarchical", provisioning=1.5, ways=4,
                    encoding="hierarchical", area_overhead=1.3),
        CuckooModel(name="Cuckoo Coarse", provisioning=1.5, ways=4, encoding="coarse"),
    ]
    return {model.name: model for model in models}


#: Every organization the paper plots (Figures 4 and 13), by legend name.
ORGANIZATIONS: Dict[str, DirectoryEnergyAreaModel] = _build_registry()

#: The organizations in Figure 4 (baselines only).
FIGURE4_ORGANIZATIONS = [
    "Duplicate-Tag",
    "Tagless",
    "Sparse 8x In-Cache",
    "Sparse 8x Hierarchical",
    "Sparse 8x Coarse",
]

#: The organizations in Figure 13 (baselines + Cuckoo variants).
FIGURE13_ORGANIZATIONS = FIGURE4_ORGANIZATIONS + [
    "Cuckoo Hierarchical",
    "Cuckoo Coarse",
]


def organization_names() -> List[str]:
    """Names of every modelled organization."""
    return list(ORGANIZATIONS)


def relative_energy(
    organization: str, scenario: ScalingScenario, cores: int
) -> float:
    """Average directory-operation energy relative to a 1 MB L2 tag lookup."""
    model = ORGANIZATIONS[organization]
    return model.energy_per_operation(scenario, cores) / scenario.reference_energy()


def relative_area(organization: str, scenario: ScalingScenario, cores: int) -> float:
    """Per-core directory area relative to a 1 MB L2 data array."""
    model = ORGANIZATIONS[organization]
    return model.area(scenario, cores) / scenario.reference_area()


def scaling_table(
    organizations: Sequence[str],
    scenario: ScalingScenario,
    core_counts: Sequence[int] = (16, 32, 64, 128, 256, 512, 1024),
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Energy/area scaling series for a set of organizations.

    Returns ``{organization: {cores: {"energy": e, "area": a}}}`` with both
    values normalised as in the paper; organizations not applicable to the
    scenario (e.g. in-cache in Private-L2) are omitted.
    """
    table: Dict[str, Dict[int, Dict[str, float]]] = {}
    for name in organizations:
        model = ORGANIZATIONS[name]
        if not model.applicable(scenario):
            continue
        table[name] = {
            cores: {
                "energy": relative_energy(name, scenario, cores),
                "area": relative_area(name, scenario, cores),
            }
            for cores in core_counts
        }
    return table
