"""Exporting telemetry snapshots: JSON dumps and Prometheus text format.

The JSON shape (schema ``repro-obs/1``) is what ``--metrics-out`` writes
and what EXPERIMENTS.md's dump-diffing workflow consumes::

    {
      "schema": "repro-obs/1",
      "meta": {...},                # run id, argv, anything the caller adds
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
      "phases": {"batch_kernel": {"count": ..., "total_seconds": ...,
                                   "self_seconds": ...}, ...}
    }

The Prometheus rendering follows the text exposition format (``# HELP`` /
``# TYPE`` headers, ``_bucket{le=...}``/``_sum``/``_count`` series for
histograms, cumulative ``le`` buckets) so a dump can be pushed to a
gateway or scraped from a file without translation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    REGISTRY,
    format_bound,
)
from repro.obs.tracing import TRACER, Tracer

__all__ = [
    "SCHEMA",
    "snapshot",
    "write_snapshot",
    "to_prometheus_text",
]

SCHEMA = "repro-obs/1"


def snapshot(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """One JSON-serializable document covering metrics and phase timings."""
    registry = registry if registry is not None else REGISTRY
    tracer = tracer if tracer is not None else TRACER
    document: Dict[str, object] = {"schema": SCHEMA}
    if meta:
        document["meta"] = dict(meta)
    document["metrics"] = registry.snapshot()
    document["phases"] = tracer.totals()
    return document


def write_snapshot(
    path: Union[str, Path],
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Path:
    """Write :func:`snapshot` to ``path`` as indented JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = snapshot(registry=registry, tracer=tracer, meta=meta)
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path


def _prom_name(name: str) -> str:
    """Dotted metric name to a Prometheus-legal one: ``sim.batch.chunks``
    becomes ``repro_sim_batch_chunks``."""
    cleaned = "".join(
        ch if (ch.isalnum() or ch == "_") else "_" for ch in name.replace(".", "_")
    )
    return f"repro_{cleaned}"


def _prom_value(value: float) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus_text(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> str:
    """Render the registry (and phase timings) in Prometheus text format."""
    registry = registry if registry is not None else REGISTRY
    tracer = tracer if tracer is not None else TRACER
    lines = []
    for instrument in registry.instruments():
        name = _prom_name(instrument.name)
        if instrument.help:
            lines.append(f"# HELP {name} {instrument.help}")
        if isinstance(instrument, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_prom_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_value(instrument.value)}")
        else:
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(
                instrument.buckets + (float("inf"),), instrument.counts
            ):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{le="{format_bound(bound)}"}} {cumulative}'
                )
            lines.append(f"{name}_sum {_prom_value(instrument.sum)}")
            lines.append(f"{name}_count {instrument.count}")
    phases = tracer.totals()
    if phases:
        base = "repro_phase_seconds"
        lines.append(f"# HELP {base} Cumulative time per traced phase.")
        lines.append(f"# TYPE {base} counter")
        for phase, entry in phases.items():
            lines.append(
                f'{base}{{phase="{phase}"}} {_prom_value(entry["total_seconds"])}'
            )
        lines.append(f"# TYPE {base.replace('seconds', 'count')} counter")
        for phase, entry in phases.items():
            lines.append(
                f'{base.replace("seconds", "count")}{{phase="{phase}"}} '
                f'{_prom_value(entry["count"])}'
            )
    return "\n".join(lines) + ("\n" if lines else "")
