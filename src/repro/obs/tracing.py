"""Nestable phase-span timers producing per-run phase breakdowns.

A *span* wraps one phase of work in a ``with`` block::

    from repro.obs import TRACER

    with TRACER.span("batch_kernel"):
        ...

Spans nest: a run's ``run_chunks`` span contains ``translate`` and
``batch_kernel`` children, and the tracer keeps both the *total* time of
each phase and its *self* time (total minus time spent in child spans),
so the breakdown columns add up instead of double-counting.

Like :mod:`repro.obs.metrics`, the disabled path costs one no-op call:
``TRACER.span`` is an instance attribute rebound between a null factory
(returning one shared inert span) and the real factory.  Span granularity
is phases and chunks — hundreds of spans per simulation, never one per
memory access (see DESIGN.md "Observability").

The tracer is process-local; workers ship :meth:`Tracer.snapshot` dicts
home and the parent merges them with :meth:`Tracer.absorb`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List

from repro.analysis.tables import render_table

__all__ = [
    "Tracer",
    "TRACER",
    "span",
    "render_phase_breakdown",
]


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One live timed phase; records itself into the tracer on exit."""

    __slots__ = ("_tracer", "name", "_start", "_children_seconds")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self._children_seconds = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._stack.append(self)
        self._start = perf_counter()
        return self

    def __exit__(self, *_exc) -> bool:
        elapsed = perf_counter() - self._start
        tracer = self._tracer
        stack = tracer._stack
        # Exception safety: unwind past any children that were skipped by a
        # raise inside this span, so the stack always ends consistent.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1]._children_seconds += elapsed
        entry = tracer._totals.get(self.name)
        if entry is None:
            tracer._totals[self.name] = [
                1,
                elapsed,
                elapsed - self._children_seconds,
            ]
        else:
            entry[0] += 1
            entry[1] += elapsed
            entry[2] += elapsed - self._children_seconds
        return False


def _span_null(_name: str) -> _NullSpan:
    return _NULL_SPAN


class Tracer:
    """Accumulates span timings per phase name.

    ``_totals`` maps phase name to a mutable ``[count, total_seconds,
    self_seconds]`` triple.  ``total_seconds`` includes child spans;
    ``self_seconds`` excludes them, so summing self times over all phases
    approximates wall time without double counting.
    """

    def __init__(self) -> None:
        self._totals: Dict[str, List[float]] = {}
        self._stack: List[_Span] = []
        self._enabled = False
        self.span = _span_null

    def _span_real(self, name: str) -> _Span:
        return _Span(self, name)

    # -- enablement ----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True
        self.span = self._span_real

    def disable(self) -> None:
        self._enabled = False
        self.span = _span_null

    def reset(self) -> None:
        """Drop accumulated timings (open spans, if any, are abandoned)."""
        self._totals.clear()
        self._stack.clear()

    # -- introspection -------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of currently open spans (0 when quiescent)."""
        return len(self._stack)

    def totals(self) -> Dict[str, Dict[str, float]]:
        """Per-phase ``{name: {count, total_seconds, self_seconds}}``."""
        return {
            name: {
                "count": int(entry[0]),
                "total_seconds": entry[1],
                "self_seconds": entry[2],
            }
            for name, entry in sorted(self._totals.items())
        }

    def snapshot(self) -> Dict[str, List[float]]:
        """JSON-serializable state for shipping across process boundaries."""
        return {name: list(entry) for name, entry in self._totals.items()}

    def absorb(self, snapshot: Dict[str, List[float]]) -> None:
        """Fold another process's :meth:`snapshot` into this tracer."""
        for name, incoming in snapshot.items():
            entry = self._totals.get(name)
            if entry is None:
                self._totals[name] = list(incoming)
            else:
                entry[0] += incoming[0]
                entry[1] += incoming[1]
                entry[2] += incoming[2]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self._enabled else "disabled"
        return f"Tracer({len(self._totals)} phases, {state})"


#: The process-wide tracer every subsystem times against.
TRACER = Tracer()


def span(name: str):
    """Open a span on the global tracer (module-level convenience)."""
    return TRACER.span(name)


def render_phase_breakdown(
    totals: Dict[str, Dict[str, float]], title: str = "Phase breakdown"
) -> str:
    """Render :meth:`Tracer.totals` output as an aligned ASCII table.

    Phases are sorted by descending self time — the row at the top is
    where the run actually spent its wall clock.  The ``share`` column is
    self time relative to the summed self time of all phases.
    """
    if not totals:
        return f"{title}: no spans recorded (telemetry disabled?)"
    total_self = sum(entry["self_seconds"] for entry in totals.values()) or 1.0
    rows = []
    ordered = sorted(
        totals.items(), key=lambda item: item[1]["self_seconds"], reverse=True
    )
    for name, entry in ordered:
        rows.append(
            [
                name,
                str(int(entry["count"])),
                f"{entry['total_seconds']:.3f}",
                f"{entry['self_seconds']:.3f}",
                f"{100.0 * entry['self_seconds'] / total_self:.1f}%",
            ]
        )
    return render_table(
        ["phase", "count", "total s", "self s", "share"], rows, title=title
    )
