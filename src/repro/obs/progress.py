"""Sweep progress events, worker heartbeats, and the throttled renderer.

Pool workers cannot print progress themselves (their stderr interleaves)
and the parent cannot see inside a worker that has gone quiet, so
progress flows as small picklable event tuples over a
``multiprocessing.Queue``:

``(kind, pid, timestamp, label)`` with kinds

* ``"online"``    — worker initialized (its first beat)
* ``"start"``     — worker began simulating ``label``
* ``"heartbeat"`` — periodic liveness beat while a point simulates
* ``"done"``      — worker finished ``label``

:class:`SweepMonitor` folds those events (plus the parent's own
completion bookkeeping) into per-worker last-seen ages, an overall
points-per-second rate and an ETA.  :class:`ProgressRenderer` turns a
monitor into terminal output: a single ``\\r``-rewritten bar when stderr
is a TTY, plain throttled lines when it is not (CI logs), nothing at all
under ``--quiet``.  Rendering is throttled so a 10^5-point sweep costs
dozens of lines, not 10^5.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, IO, List, Optional, Tuple

__all__ = [
    "WorkerEvent",
    "make_event",
    "SweepMonitor",
    "ProgressRenderer",
    "format_progress_line",
    "format_eta",
]

#: (kind, pid, timestamp, label)
WorkerEvent = Tuple[str, int, float, str]

EVENT_KINDS = ("online", "start", "heartbeat", "done")


def make_event(kind: str, pid: int, label: str = "") -> WorkerEvent:
    """Build a queue-ready worker event stamped with the current time."""
    if kind not in EVENT_KINDS:
        raise ValueError(f"unknown worker event kind: {kind!r}")
    return (kind, pid, time.time(), label)


class _WorkerState:
    __slots__ = ("pid", "last_seen", "beats", "current_label", "points_done")

    def __init__(self, pid: int, now: float) -> None:
        self.pid = pid
        self.last_seen = now
        self.beats = 1
        self.current_label = ""
        self.points_done = 0


class SweepMonitor:
    """Aggregated live view of one sweep: counts, rate, ETA, worker health."""

    def __init__(self, total: int = 0) -> None:
        self.total = total
        self.done = 0
        self.cached = 0
        self.simulated = 0
        self.failed = 0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._workers: Dict[int, _WorkerState] = {}

    # -- feeding -------------------------------------------------------------
    def begin(self, total: int) -> None:
        self.total = total
        self.done = 0
        self.cached = 0
        self.simulated = 0
        self.failed = 0
        self.started_at = time.time()
        self.finished_at = None
        self._workers.clear()

    def record_worker_event(self, event: WorkerEvent) -> None:
        kind, pid, timestamp, label = event
        state = self._workers.get(pid)
        if state is None:
            state = _WorkerState(pid, timestamp)
            self._workers[pid] = state
        else:
            state.last_seen = max(state.last_seen, timestamp)
            state.beats += 1
        if kind == "start":
            state.current_label = label
        elif kind == "done":
            state.current_label = ""
            state.points_done += 1

    def point_finished(self, event: str) -> None:
        """Count one completed point; ``event`` is the runner's progress
        kind (``cached`` / ``simulated`` / ``failed``)."""
        if self.started_at is None:
            self.started_at = time.time()
        self.done += 1
        if event == "cached":
            self.cached += 1
        elif event == "failed":
            self.failed += 1
        else:
            self.simulated += 1

    def finish(self) -> None:
        self.finished_at = time.time()

    # -- derived -------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        if self.started_at is None:
            return 0.0
        end = self.finished_at if self.finished_at is not None else time.time()
        return max(0.0, end - self.started_at)

    @property
    def points_per_second(self) -> float:
        elapsed = self.elapsed
        if elapsed <= 0.0:
            return 0.0
        return self.done / elapsed

    @property
    def eta_seconds(self) -> Optional[float]:
        """Seconds until completion at the current rate, if estimable."""
        rate = self.points_per_second
        if rate <= 0.0 or self.total <= 0:
            return None
        remaining = max(0, self.total - self.done)
        return remaining / rate

    def worker_count(self) -> int:
        return len(self._workers)

    def workers(self) -> List[Dict[str, object]]:
        """Per-worker health rows, oldest pid first."""
        now = time.time()
        rows = []
        for pid in sorted(self._workers):
            state = self._workers[pid]
            rows.append(
                {
                    "pid": pid,
                    "beats": state.beats,
                    "last_seen_age": max(0.0, now - state.last_seen),
                    "current": state.current_label,
                    "points_done": state.points_done,
                }
            )
        return rows

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable summary (for ``--metrics-out`` dumps)."""
        return {
            "total": self.total,
            "done": self.done,
            "cached": self.cached,
            "simulated": self.simulated,
            "failed": self.failed,
            "elapsed_seconds": self.elapsed,
            "points_per_second": self.points_per_second,
            "workers": self.workers(),
        }


def format_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--:--"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}:{(seconds % 3600) // 60:02d}:{seconds % 60:02d}"
    return f"{seconds // 60:02d}:{seconds % 60:02d}"


def format_progress_line(monitor: SweepMonitor, width: int = 28) -> str:
    """The single-line sweep progress bar (pure; testable without a TTY)."""
    total = max(monitor.total, 1)
    fraction = min(1.0, monitor.done / total)
    filled = int(round(fraction * width))
    bar = "#" * filled + "-" * (width - filled)
    parts = [
        f"[{bar}] {monitor.done}/{monitor.total}",
        f"{fraction * 100:5.1f}%",
        f"{monitor.points_per_second:.1f} pt/s",
        f"eta {format_eta(monitor.eta_seconds)}",
    ]
    if monitor.cached:
        parts.append(f"{monitor.cached} cached")
    if monitor.failed:
        parts.append(f"{monitor.failed} FAILED")
    if monitor.worker_count():
        parts.append(f"{monitor.worker_count()} workers")
    return " | ".join(parts)


class ProgressRenderer:
    """Throttled terminal rendering of a :class:`SweepMonitor`.

    On a TTY the line is rewritten in place with ``\\r`` at most every
    ``tty_interval`` seconds; on a plain stream (CI logs, redirects) a
    normal line is printed at most every ``plain_interval`` seconds so
    logs stay readable.  ``force_tty`` pins the mode for tests.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        tty_interval: float = 0.1,
        plain_interval: float = 2.0,
        force_tty: Optional[bool] = None,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        if force_tty is not None:
            self._is_tty = force_tty
        else:
            self._is_tty = bool(getattr(self._stream, "isatty", lambda: False)())
        self._interval = tty_interval if self._is_tty else plain_interval
        self._last_render = 0.0
        self._last_line_width = 0
        self.renders = 0

    @property
    def is_tty(self) -> bool:
        return self._is_tty

    def update(self, monitor: SweepMonitor, force: bool = False) -> bool:
        """Render if the throttle window has passed; returns whether it did."""
        now = time.time()
        if not force and (now - self._last_render) < self._interval:
            return False
        self._last_render = now
        line = format_progress_line(monitor)
        if self._is_tty:
            padding = " " * max(0, self._last_line_width - len(line))
            self._stream.write("\r" + line + padding)
            self._last_line_width = len(line)
        else:
            self._stream.write(line + "\n")
        self._stream.flush()
        self.renders += 1
        return True

    def finish(self, monitor: SweepMonitor) -> None:
        """Final render plus the newline that releases a TTY's rewritten line."""
        self.update(monitor, force=True)
        if self._is_tty:
            self._stream.write("\n")
            self._stream.flush()
