"""Telemetry for the reproduction: metrics, phase tracing, structured
logs, sweep progress, and exporters.

Everything here is **off by default and free when off**: instruments and
span factories are instance attributes rebound between shared no-ops and
real implementations, so disabled telemetry costs one no-op call at
chunk/phase granularity and nothing per memory access (DESIGN.md
"Observability" documents the layering and the overhead gate).

Typical use::

    from repro import obs

    obs.enable()                    # CLI does this when --metrics-out /
    ...run simulations...           # --log-level etc. are present
    obs.export.write_snapshot(path)

Worker processes replicate the parent's telemetry state through
:func:`state` / :func:`apply_state`, which ``ParallelRunner`` ships via
the pool initializer, and send their accumulated counters home with
their results (see :mod:`repro.engine.runner`).
"""

from __future__ import annotations

from typing import Dict

from repro.obs import export
from repro.obs.logging import (
    apply_logging_state,
    clear_context,
    current_context,
    get_logger,
    logging_state,
    set_context,
    setup_logging,
)
from repro.obs.metrics import REGISTRY, MetricsRegistry, counter, gauge, histogram
from repro.obs.progress import ProgressRenderer, SweepMonitor, make_event
from repro.obs.tracing import TRACER, Tracer, render_phase_breakdown, span

__all__ = [
    "REGISTRY",
    "TRACER",
    "MetricsRegistry",
    "Tracer",
    "SweepMonitor",
    "ProgressRenderer",
    "counter",
    "gauge",
    "histogram",
    "span",
    "make_event",
    "render_phase_breakdown",
    "enable",
    "disable",
    "enabled",
    "reset",
    "state",
    "apply_state",
    "export",
    "setup_logging",
    "get_logger",
    "set_context",
    "clear_context",
    "current_context",
    "logging_state",
    "apply_logging_state",
]


def enable() -> None:
    """Turn on metrics and tracing in this process."""
    REGISTRY.enable()
    TRACER.enable()


def disable() -> None:
    """Swap every instrument and span factory back to the free no-ops."""
    REGISTRY.disable()
    TRACER.disable()


def enabled() -> bool:
    return REGISTRY.enabled or TRACER.enabled


def reset() -> None:
    """Zero accumulated values without changing enablement."""
    REGISTRY.reset()
    TRACER.reset()


def state() -> Dict[str, object]:
    """Picklable enablement state for replication into pool workers."""
    return {"metrics": REGISTRY.enabled, "tracing": TRACER.enabled}


def apply_state(state: Dict[str, object]) -> None:
    """Apply a parent process's :func:`state` in this (worker) process."""
    if state.get("metrics"):
        REGISTRY.enable()
    else:
        REGISTRY.disable()
    if state.get("tracing"):
        TRACER.enable()
    else:
        TRACER.disable()
