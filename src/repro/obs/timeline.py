"""Interval-sampled counter timelines for the simulated machine.

The experiments report end-of-run aggregates, but the paper's story is
dynamic — displacement chains lengthen as occupancy climbs, forced
invalidations appear past the provisioning knee.  A :class:`Timeline` is
the simulated machine's "hardware performance counter" file: every N
*simulated* accesses the :class:`~repro.coherence.simulator.TraceSimulator`
samples a fixed set of channels (per-bank directory occupancy, cumulative
forced invalidations, displacement-attempt totals and chain-length
histogram deltas, stash size, per-level cache hit rate, interconnect
traffic) into growable numpy columns.

Two cadences share one object:

* the **occupancy channel** is always on and pinned to the simulator's
  ``occupancy_sample_interval`` — it *is* the store of what used to be the
  ad-hoc ``occupancy_samples: List[float]``, so ``average_occupancy``
  keeps its exact arithmetic;
* every **other channel** samples at ``timeline_interval`` and only
  exists when the timeline is *enabled* (``RunSpec.timeline_interval``) —
  off by default, and sampling happens at chunk-boundary sub-slice cuts
  only, so the scalar protocol path and the vectorised whole-chunk kernel
  feed the timeline identically and results stay bit-identical with the
  timeline on or off.

Storage is columnar and quantized but **lossless**: integer channels are
delta-encoded and narrowed to the smallest width that holds the deltas,
float channels drop to ``float32`` only when the round-trip is exact.
:func:`save_timeline` / :func:`load_timeline` persist the encoded columns
as an ``.npz`` sidecar next to the result store.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.obs.metrics import gauge as _obs_gauge

__all__ = [
    "ATTEMPT_CHAIN_BINS",
    "CHANNEL_NAMES",
    "ChannelSpec",
    "Timeline",
    "load_timeline",
    "save_timeline",
    "sparkline",
    "unknown_channels_message",
]

#: File-format tag written into every persisted timeline.
SCHEMA = "repro-timeline/1"

#: Chain-length histogram bins: 1, 2, 3, 4 and 5+ insertion attempts
#: (matching the paper's Figure 11 buckets).
ATTEMPT_CHAIN_BINS = 5

#: Sentinel widths resolved at :class:`Timeline` construction time.
_WIDTH_BANKS = -1


@dataclass(frozen=True)
class ChannelSpec:
    """One timeline channel: name, storage dtype, semantics and shape.

    ``kind`` drives rendering and aggregation:

    * ``"gauge"`` — a point-in-time value (occupancy, stash size);
    * ``"cumulative"`` — a monotone counter since the last statistics
      reset (forced invalidations, traffic);
    * ``"delta"`` — per-interval increments (the chain-length histogram,
      differenced against the previous sample at collection time).

    ``cadence`` is ``"timeline"`` (``timeline_interval``) for every
    channel except the always-on legacy-cadence ``occupancy`` channel.
    """

    name: str
    dtype: str
    kind: str
    width: int
    help: str
    cadence: str = "timeline"


CHANNEL_SPECS: Sequence[ChannelSpec] = (
    ChannelSpec(
        "occupancy", "f8", "gauge", 1,
        "mean directory occupancy across banks (fraction of capacity)",
        cadence="occupancy",
    ),
    ChannelSpec(
        "occupancy_banks", "f8", "gauge", _WIDTH_BANKS,
        "per-bank directory occupancy (fraction of each slice's capacity)",
    ),
    ChannelSpec(
        "forced_invalidations", "i8", "cumulative", 1,
        "forced invalidations since the measurement started",
    ),
    ChannelSpec(
        "insertions", "i8", "cumulative", 1,
        "new directory entries inserted since the measurement started",
    ),
    ChannelSpec(
        "insertion_attempts", "i8", "cumulative", 1,
        "displacement attempts spent on insertions since the measurement started",
    ),
    ChannelSpec(
        "attempt_chains", "i8", "delta", ATTEMPT_CHAIN_BINS,
        "per-interval new insertions by chain length (bins 1,2,3,4,5+)",
    ),
    ChannelSpec(
        "stash_occupancy", "i8", "gauge", 1,
        "entries parked in overflow stashes, summed over banks",
    ),
    ChannelSpec(
        "tracked_hit_rate", "f8", "gauge", 1,
        "cumulative tracked-cache hit rate since the measurement started",
    ),
    ChannelSpec(
        "shared_l2_hit_rate", "f8", "gauge", 1,
        "cumulative shared-L2 hit rate (0 in Private-L2 configurations)",
    ),
    ChannelSpec(
        "total_messages", "i8", "cumulative", 1,
        "coherence messages since the measurement started",
    ),
    ChannelSpec(
        "traffic_bytes", "i8", "cumulative", 1,
        "interconnect bytes since the measurement started",
    ),
    ChannelSpec(
        "traffic_hops", "i8", "cumulative", 1,
        "interconnect hop count since the measurement started",
    ),
)

#: Valid ``--channel`` names, in declaration (and rendering) order.
CHANNEL_NAMES = tuple(spec.name for spec in CHANNEL_SPECS)

_SPECS_BY_NAME = {spec.name: spec for spec in CHANNEL_SPECS}

#: The scalar counters :meth:`TiledCMP.timeline_counters` must report,
#: i.e. every scalar channel except the occupancy-cadence one.
COUNTER_CHANNELS = tuple(
    spec.name
    for spec in CHANNEL_SPECS
    if spec.width == 1 and spec.cadence == "timeline"
)

#: Unicode blocks for :func:`sparkline`, lowest to highest.
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def unknown_channels_message(names: Optional[Sequence[str]]) -> Optional[str]:
    """Friendly error for unknown channel names (``None`` when all valid)."""
    if not names:
        return None
    unknown = [name for name in names if name not in CHANNEL_NAMES]
    if not unknown:
        return None
    return (
        f"unknown channel(s): {', '.join(unknown)} "
        f"(expected: {', '.join(CHANNEL_NAMES)})"
    )


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """Render ``values`` as a fixed-width block-character sparkline.

    Longer series are mean-downsampled into ``width`` buckets; shorter
    ones print one block per value.  A flat series renders as the lowest
    block so "nothing happened" and "something happened" stay visually
    distinct.
    """
    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        return ""
    data = data[np.isfinite(data)]
    if data.size == 0:
        return ""
    if data.size > width:
        data = _downsample_mean(data, width)
    low = float(data.min())
    high = float(data.max())
    if high <= low:
        return _SPARK_BLOCKS[0] * data.size
    scaled = (data - low) / (high - low) * (len(_SPARK_BLOCKS) - 1)
    return "".join(_SPARK_BLOCKS[int(round(v))] for v in scaled)


def _downsample_mean(values: np.ndarray, buckets: int) -> np.ndarray:
    """Mean-reduce a 1-D series into ``buckets`` evenly split buckets."""
    edges = np.linspace(0, values.size, buckets + 1).astype(np.int64)
    return np.array(
        [
            values[start:stop].mean() if stop > start else values[min(start, values.size - 1)]
            for start, stop in zip(edges[:-1], edges[1:])
        ],
        dtype=np.float64,
    )


class _Column:
    """One growable numpy column (capacity-doubling append).

    Vector channels stay two-dimensional even at width 1 (a single-bank
    ``occupancy_banks``), so ``append`` always takes the same shape the
    system hooks produce.
    """

    __slots__ = ("spec", "width", "_buffer", "_length")

    def __init__(self, spec: ChannelSpec, width: int) -> None:
        self.spec = spec
        self.width = width
        shape = (16,) if spec.width == 1 else (16, width)
        self._buffer = np.zeros(shape, dtype=np.dtype(spec.dtype))
        self._length = 0

    def append(self, value) -> None:
        if self._length == self._buffer.shape[0]:
            self._buffer = np.concatenate([self._buffer, np.zeros_like(self._buffer)])
        self._buffer[self._length] = value
        self._length += 1

    def extend(self, values: Iterable) -> None:
        for value in values:
            self.append(value)

    def values(self) -> np.ndarray:
        """The filled prefix (a view; copy before mutating)."""
        return self._buffer[: self._length]

    def __len__(self) -> int:
        return self._length


class Timeline:
    """Interval-sampled counter columns for one simulation run.

    Parameters
    ----------
    occupancy_interval:
        Cadence (measured accesses) of the always-on occupancy channel.
    interval:
        Cadence of every other channel; ``None`` leaves the timeline
        *disabled* — only the occupancy channel collects, which is the
        default (and free) configuration.
    banks:
        Directory-slice count; the width of ``occupancy_banks``.
    mode:
        ``"interval"`` when samples land every ``interval`` accesses
        (``run``/``run_chunks``), ``"window"`` when each sample is one
        completed SMARTS measurement window (``run_sampled``, where
        statistics reset per window).
    """

    def __init__(
        self,
        occupancy_interval: int,
        interval: Optional[int] = None,
        banks: int = 1,
        mode: str = "interval",
    ) -> None:
        if occupancy_interval <= 0:
            raise ValueError("occupancy_interval must be positive")
        if interval is not None and interval <= 0:
            raise ValueError("interval must be positive")
        if banks <= 0:
            raise ValueError("banks must be positive")
        if mode not in ("interval", "window"):
            raise ValueError(f"mode must be 'interval' or 'window', got {mode!r}")
        self.occupancy_interval = int(occupancy_interval)
        self.interval = int(interval) if interval is not None else None
        self.banks = int(banks)
        self.mode = mode
        self._columns: Dict[str, _Column] = {}
        for spec in CHANNEL_SPECS:
            if spec.cadence != "occupancy" and interval is None:
                continue
            width = self.banks if spec.width == _WIDTH_BANKS else spec.width
            self._columns[spec.name] = _Column(spec, width)
        self._chain_base = [0] * ATTEMPT_CHAIN_BINS

    # -- collection (hot path; called at sub-slice boundaries only) ----------
    @property
    def enabled(self) -> bool:
        """Whether the full channel set collects (``interval`` was given)."""
        return self.interval is not None

    def record_occupancy(self, value: float) -> None:
        self._columns["occupancy"].append(value)

    def record_occupancy_many(self, values: Iterable[float]) -> None:
        self._columns["occupancy"].extend(values)

    def sample(self, system) -> None:
        """Take one full-channel sample from a live ``TiledCMP``.

        Reads only non-mutating accessors (``Directory.occupancy`` rather
        than ``sample_occupancy``), so sampling never perturbs the
        statistics the run reports.
        """
        columns = self._columns
        counters = system.timeline_counters()
        for name in COUNTER_CHANNELS:
            columns[name].append(counters[name])
        columns["occupancy_banks"].append(system.bank_occupancies())
        chains = system.attempt_chain_bins(ATTEMPT_CHAIN_BINS)
        base = self._chain_base
        columns["attempt_chains"].append(
            [current - previous for current, previous in zip(chains, base)]
        )
        self._chain_base = chains

    def mark_reset(self) -> None:
        """Note a statistics reset (SMARTS window boundary): cumulative
        counters restart from zero, so the chain-histogram baseline must
        restart with them."""
        self._chain_base = [0] * ATTEMPT_CHAIN_BINS

    # -- access --------------------------------------------------------------
    def channel_names(self) -> List[str]:
        """Active channels, in declaration order."""
        return [spec.name for spec in CHANNEL_SPECS if spec.name in self._columns]

    def channel(self, name: str) -> np.ndarray:
        """Samples of ``name`` — shape ``(n,)`` or ``(n, width)``."""
        column = self._columns.get(name)
        if column is None:
            message = unknown_channels_message([name])
            if message is not None:
                raise KeyError(message)
            raise KeyError(
                f"channel {name!r} was not collected (timeline disabled; "
                f"set timeline_interval to record it)"
            )
        return column.values()

    def channel_cadence(self, name: str) -> Optional[int]:
        """Accesses between samples of ``name`` (``None`` in window mode)."""
        if self.mode != "interval":
            return None
        if _SPECS_BY_NAME[name].cadence == "occupancy":
            return self.occupancy_interval
        return self.interval

    def occupancy_list(self) -> List[float]:
        """The occupancy channel as plain Python floats (legacy shape)."""
        return self._columns["occupancy"].values().tolist()

    def num_samples(self, name: str) -> int:
        return len(self.channel(name))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timeline):
            return NotImplemented
        if (
            self.occupancy_interval != other.occupancy_interval
            or self.interval != other.interval
            or self.banks != other.banks
            or self.mode != other.mode
            or self.channel_names() != other.channel_names()
        ):
            return False
        return all(
            np.array_equal(self.channel(name), other.channel(name))
            for name in self.channel_names()
        )

    __hash__ = None  # mutable container

    # -- transport (worker -> parent, via pickle) ----------------------------
    def to_payload(self) -> Dict[str, object]:
        """Plain-dict form that crosses process boundaries via pickle."""
        return {
            "schema": SCHEMA,
            "occupancy_interval": self.occupancy_interval,
            "interval": self.interval,
            "banks": self.banks,
            "mode": self.mode,
            "columns": {
                name: np.array(self._columns[name].values())
                for name in self.channel_names()
            },
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "Timeline":
        if payload.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported timeline payload schema {payload.get('schema')!r}"
            )
        timeline = cls(
            occupancy_interval=payload["occupancy_interval"],
            interval=payload["interval"],
            banks=payload["banks"],
            mode=payload.get("mode", "interval"),
        )
        for name, values in payload["columns"].items():
            column = timeline._columns.get(name)
            if column is None:
                continue  # tolerate channels from a newer writer
            values = np.asarray(values, dtype=column._buffer.dtype)
            if len(values):
                column._buffer = np.array(values)
                column._length = len(values)
        return timeline

    # -- gauges (Prometheus exposition) --------------------------------------
    def publish_gauges(self) -> None:
        """Set ``timeline.last.<channel>`` gauges to each scalar channel's
        final sample.  Free no-ops unless telemetry is enabled; the gauges
        then flow into ``--metrics-out`` snapshots and
        :func:`repro.obs.export.to_prometheus_text`."""
        for name in self.channel_names():
            column = self._columns[name]
            if _SPECS_BY_NAME[name].width != 1 or not len(column):
                continue
            _obs_gauge(
                f"timeline.last.{name}", help=_SPECS_BY_NAME[name].help
            ).set(float(column.values()[-1]))

    # -- rendering / export --------------------------------------------------
    def display_series(self, name: str) -> np.ndarray:
        """The 1-D series a channel renders (and aggregates) as.

        Vector channels collapse: per-bank occupancy to the bank mean,
        the chain histogram to total new insertions per interval.
        Cumulative counters render their per-interval deltas (the rate
        shape is the story; a monotone ramp is not).
        """
        values = self.channel(name).astype(np.float64)
        spec = _SPECS_BY_NAME[name]
        if values.ndim > 1:
            values = values.mean(axis=1) if spec.kind == "gauge" else values.sum(axis=1)
        # In window mode statistics reset at every window boundary, so each
        # cumulative sample is already a per-window total — differencing
        # would subtract unrelated windows.
        if spec.kind == "cumulative" and values.size and self.mode == "interval":
            values = np.diff(values, prepend=0.0)
        return values

    def render(
        self, channels: Optional[Sequence[str]] = None, width: int = 48
    ) -> str:
        """ASCII sparkline table over ``channels`` (default: all active)."""
        names = list(channels) if channels is not None else self.channel_names()
        message = unknown_channels_message(names)
        if message is not None:
            raise ValueError(message)
        rows = []
        for name in names:
            if name not in self._columns:
                rows.append((name, 0, "", "", "", "(not collected)"))
                continue
            series = self.display_series(name)
            if series.size == 0:
                rows.append((name, 0, "", "", "", "(no samples)"))
                continue
            if _SPECS_BY_NAME[name].kind == "cumulative":
                suffix = "/interval" if self.mode == "interval" else "/window"
            else:
                suffix = ""
            rows.append(
                (
                    f"{name}{suffix}",
                    series.size,
                    f"{series.min():.4g}",
                    f"{series.max():.4g}",
                    f"{series[-1]:.4g}",
                    sparkline(series, width=width),
                )
            )
        headers = ("channel", "n", "min", "max", "last", "timeline")
        widths = [
            max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows
            else len(str(headers[i]))
            for i in range(5)
        ]
        lines = [
            "  ".join(str(headers[i]).ljust(widths[i]) for i in range(5))
            + "  " + headers[5]
        ]
        for row in rows:
            lines.append(
                "  ".join(str(row[i]).ljust(widths[i]) for i in range(5))
                + "  " + row[5]
            )
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, object]:
        """Golden-pinned JSON schema of the full timeline."""
        channels: Dict[str, object] = {}
        for name in self.channel_names():
            spec = _SPECS_BY_NAME[name]
            channels[name] = {
                "kind": spec.kind,
                "interval": self.channel_cadence(name),
                "values": self.channel(name).tolist(),
            }
        return {
            "schema": SCHEMA,
            "mode": self.mode,
            "occupancy_interval": self.occupancy_interval,
            "interval": self.interval,
            "banks": self.banks,
            "channels": channels,
        }

    def to_csv(self) -> str:
        """Tidy CSV: ``channel,lane,sample,accesses,value`` (one row per
        lane per sample; ``accesses`` is empty in window mode)."""
        lines = ["channel,lane,sample,accesses,value"]
        for name in self.channel_names():
            cadence = self.channel_cadence(name)
            values = self.channel(name)
            if values.ndim == 1:
                values = values.reshape(-1, 1)
            for index, row in enumerate(values.tolist()):
                accesses = "" if cadence is None else str((index + 1) * cadence)
                for lane, value in enumerate(row):
                    lines.append(f"{name},{lane},{index},{accesses},{value!r}")
        return "\n".join(lines) + "\n"


# -- lossless quantized storage ----------------------------------------------
def _encode_column(values: np.ndarray) -> "tuple":
    """``(encoded, codec)`` for one column; decoding is exact by design.

    Integers are delta-encoded along the sample axis (cumulative counters
    become small per-interval increments) and narrowed to the smallest
    signed width that holds every delta.  Floats narrow to ``float32``
    only when the widening round-trip reproduces every bit.
    """
    if values.dtype.kind == "f":
        if values.size and np.all(np.isfinite(values)):
            narrowed = values.astype(np.float32)
            if np.array_equal(narrowed.astype(np.float64), values):
                return narrowed, "f4"
        return values.astype(np.float64), "f8"
    deltas = np.diff(
        values, axis=0, prepend=np.zeros((1,) + values.shape[1:], dtype=values.dtype)
    )
    for dtype in (np.int8, np.int16, np.int32):
        info = np.iinfo(dtype)
        if deltas.size == 0 or (deltas.min() >= info.min and deltas.max() <= info.max):
            return deltas.astype(dtype), f"d{np.dtype(dtype).str[1:]}"
    return deltas, "di8"


def _decode_column(encoded: np.ndarray, codec: str) -> np.ndarray:
    if codec == "f8":
        return encoded.astype(np.float64)
    if codec == "f4":
        return encoded.astype(np.float64)
    if codec.startswith("d"):
        return np.cumsum(encoded.astype(np.int64), axis=0)
    raise ValueError(f"unknown timeline column codec {codec!r}")


def save_timeline(path: Union[str, Path], timeline: Timeline) -> int:
    """Persist ``timeline`` as a compressed ``.npz``; returns bytes written.

    Crash-safe: written to a sibling temp file and :func:`os.replace`\\ d
    into place, so a crash mid-write never leaves a truncated sidecar
    masquerading as a stored timeline.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "schema": SCHEMA,
        "occupancy_interval": timeline.occupancy_interval,
        "interval": timeline.interval,
        "banks": timeline.banks,
        "mode": timeline.mode,
        "columns": {},
    }
    arrays: Dict[str, np.ndarray] = {}
    for name in timeline.channel_names():
        encoded, codec = _encode_column(timeline.channel(name))
        meta["columns"][name] = codec
        arrays[f"c_{name}"] = encoded
    arrays["meta"] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("wb") as handle:
            np.savez_compressed(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return path.stat().st_size


def load_timeline(path: Union[str, Path]) -> Timeline:
    """Load a :func:`save_timeline` sidecar back into a :class:`Timeline`."""
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
        if meta.get("schema") != SCHEMA:
            raise ValueError(f"unsupported timeline schema {meta.get('schema')!r}")
        columns = {
            name: _decode_column(archive[f"c_{name}"], codec)
            for name, codec in meta["columns"].items()
        }
    return Timeline.from_payload(
        {
            "schema": SCHEMA,
            "occupancy_interval": meta["occupancy_interval"],
            "interval": meta["interval"],
            "banks": meta["banks"],
            "mode": meta.get("mode", "interval"),
            "columns": columns,
        }
    )
