"""Structured logging for simulator runs.

Builds on the stdlib :mod:`logging` machinery: :func:`setup_logging`
configures the ``repro`` logger tree with either a human-readable
formatter or JSON lines, and a filter injects *run context* — the run id,
spec hash, workload, worker pid — into every record, so a line emitted
deep inside the coherence kernel still says which sweep point produced
it.

Context is process-local module state (:func:`set_context` /
:func:`clear_context`); pool workers inherit the parent's logging
configuration through :func:`logging_state` / :func:`apply_logging_state`
which ``ParallelRunner`` ships through the pool initializer.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Dict, IO, Optional

__all__ = [
    "setup_logging",
    "get_logger",
    "set_context",
    "clear_context",
    "current_context",
    "logging_state",
    "apply_logging_state",
]

#: Root of the package's logger tree.
ROOT_LOGGER_NAME = "repro"

#: Mutable run context merged into every log record.
_CONTEXT: Dict[str, object] = {}

#: The last configuration applied, for replication into pool workers.
_STATE: Dict[str, object] = {"level": "warning", "json_lines": False}

#: Attributes of a LogRecord that are not user-supplied ``extra`` fields.
_RECORD_FIELDS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "context"}


def set_context(**fields: object) -> None:
    """Merge ``fields`` into the run context (``None`` removes a key)."""
    for key, value in fields.items():
        if value is None:
            _CONTEXT.pop(key, None)
        else:
            _CONTEXT[key] = value


def clear_context() -> None:
    _CONTEXT.clear()


def current_context() -> Dict[str, object]:
    return dict(_CONTEXT)


class _ContextFilter(logging.Filter):
    """Attach the run context to every record passing through."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.context = dict(_CONTEXT)
        return True


class HumanFormatter(logging.Formatter):
    """``HH:MM:SS level logger: message [key=value ...]``."""

    def format(self, record: logging.LogRecord) -> str:
        timestamp = time.strftime(
            "%H:%M:%S", time.localtime(record.created)
        )
        message = record.getMessage()
        context = getattr(record, "context", {})
        suffix = ""
        if context:
            pairs = " ".join(f"{k}={v}" for k, v in sorted(context.items()))
            suffix = f" [{pairs}]"
        line = (
            f"{timestamp} {record.levelname.lower():7s} "
            f"{record.name}: {message}{suffix}"
        )
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per line: ts/level/logger/msg + context + extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, object] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        payload.update(getattr(record, "context", {}))
        for key, value in record.__dict__.items():
            if key not in _RECORD_FIELDS and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, sort_keys=False)


def setup_logging(
    level: str = "info",
    json_lines: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree; idempotent.

    Returns the root ``repro`` logger.  ``stream`` defaults to stderr so
    structured output never mixes with result tables on stdout.
    """
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level: {level!r}")
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(numeric)
    logger.propagate = False
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.addFilter(_ContextFilter())
    handler.setFormatter(JsonLinesFormatter() if json_lines else HumanFormatter())
    logger.addHandler(handler)
    _STATE["level"] = level
    _STATE["json_lines"] = json_lines
    return logger


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` tree (``repro.engine``, ``repro.obs``…)."""
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def logging_state() -> Dict[str, object]:
    """The picklable configuration to replicate into a pool worker."""
    return dict(_STATE)


def apply_logging_state(state: Dict[str, object]) -> None:
    """Re-apply a parent process's :func:`logging_state` in this process."""
    setup_logging(
        level=str(state.get("level", "warning")),
        json_lines=bool(state.get("json_lines", False)),
    )
