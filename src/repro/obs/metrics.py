"""Process-local metrics registry with a free disabled path.

The simulator's hot loops must not pay for instrumentation they are not
using, so the registry is built around *implementation swapping* rather
than per-call ``if enabled`` branches: every instrument is created with
its mutating methods (``inc``/``add``/``set``/``observe``) bound to one
shared module-level no-op function.  :meth:`MetricsRegistry.enable`
rebinds them to the real implementations (and :meth:`~MetricsRegistry.
disable` swaps the no-ops back), so call sites hold the same instrument
object forever and the disabled path is a single no-op call — no branch,
no allocation, no value update.

Instrumentation attaches at **chunk/phase granularity only** (one
``access_batch`` call, one store append, one compaction); nothing in this
module is ever invoked per memory access.  See DESIGN.md "Observability".

The registry is process-local by design.  Pool workers accumulate into
their own registries and ship :meth:`~MetricsRegistry.snapshot` dicts
back with their results; the parent folds them in with
:meth:`~MetricsRegistry.absorb` (see :mod:`repro.engine.runner`).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "NOOP",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
]


def _noop(*_args, **_kwargs) -> None:
    """The shared disabled-path implementation of every instrument method."""
    return None


#: Public alias so tests can assert the disabled path is the shared no-op.
NOOP = _noop


class Counter:
    """A monotonically increasing count (events, accesses, bytes)."""

    __slots__ = ("name", "help", "value", "inc", "add")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0
        self.inc = NOOP
        self.add = NOOP

    def _inc(self) -> None:
        self.value += 1

    def _add(self, amount: Union[int, float]) -> None:
        self.value += amount

    def _enable(self) -> None:
        self.inc = self._inc
        self.add = self._add

    def _disable(self) -> None:
        self.inc = NOOP
        self.add = NOOP

    def _clear(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value (queue depth, live workers, occupancy)."""

    __slots__ = ("name", "help", "value", "set", "inc", "dec")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self.set = NOOP
        self.inc = NOOP
        self.dec = NOOP

    def _set(self, value: float) -> None:
        self.value = value

    def _inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def _dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def _enable(self) -> None:
        self.set = self._set
        self.inc = self._inc
        self.dec = self._dec

    def _disable(self) -> None:
        self.set = NOOP
        self.inc = NOOP
        self.dec = NOOP

    def _clear(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value})"


#: Default histogram bucket upper bounds (semantics-free powers of two, a
#: reasonable default for counts and sizes).
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def format_bound(bound: float) -> str:
    """Bucket-bound label: integral floats print as integers, +inf as ``+Inf``."""
    if bound == float("inf"):
        return "+Inf"
    if float(bound).is_integer():
        return str(int(bound))
    return repr(float(bound))


class Histogram:
    """A cumulative-bucket distribution (Prometheus-style ``le`` semantics).

    ``buckets`` holds the finite upper bounds; an implicit ``+Inf`` bucket
    catches everything above the last bound.  ``counts[i]`` is the number
    of observations ``<= buckets[i]`` *in that bucket alone* (per-bucket,
    not cumulative — the exporter cumulates).
    """

    __slots__ = ("name", "help", "buckets", "counts", "sum", "count", "observe")

    def __init__(
        self, name: str, buckets: Optional[Sequence[float]] = None, help: str = ""
    ) -> None:
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.help = help
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0
        self.observe = NOOP

    def _observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def _enable(self) -> None:
        self.observe = self._observe

    def _disable(self) -> None:
        self.observe = NOOP

    def _clear(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count})"


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create home of every instrument in this process."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._enabled = False

    # -- instrument factories ------------------------------------------------
    def _get_or_create(self, name: str, kind: type, **kwargs) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is not None:
            if not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument
        instrument = kind(name, **kwargs)
        if self._enabled:
            instrument._enable()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, help: str = ""
    ) -> Histogram:
        return self._get_or_create(name, Histogram, buckets=buckets, help=help)

    # -- enablement ----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        """Swap every instrument's methods to the recording implementations."""
        self._enabled = True
        for instrument in self._instruments.values():
            instrument._enable()

    def disable(self) -> None:
        """Swap every instrument's methods back to the shared no-op."""
        self._enabled = False
        for instrument in self._instruments.values():
            instrument._disable()

    def reset(self) -> None:
        """Zero every instrument's value without changing enablement."""
        for instrument in self._instruments.values():
            instrument._clear()

    # -- introspection -------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._instruments)

    def instruments(self) -> List[Instrument]:
        return [self._instruments[name] for name in self.names()]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-serializable state: ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` with names sorted for deterministic output."""
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                buckets = {
                    format_bound(bound): count
                    for bound, count in zip(
                        instrument.buckets + (float("inf"),), instrument.counts
                    )
                }
                histograms[name] = {
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "buckets": buckets,
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def absorb(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold another process's :meth:`snapshot` into this registry.

        Counters and histogram counts/sums add; gauges take the absorbed
        value (point-in-time semantics — the most recent report wins).
        Unknown instruments are created on the fly so worker-only metrics
        survive the merge.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).value = value
        for name, state in snapshot.get("histograms", {}).items():
            bounds = [
                float("inf") if label == "+Inf" else float(label)
                for label in state.get("buckets", {})
            ]
            finite = sorted(bound for bound in bounds if bound != float("inf"))
            histogram = self.histogram(name, buckets=finite or None)
            labels = [format_bound(b) for b in histogram.buckets + (float("inf"),)]
            for index, label in enumerate(labels):
                histogram.counts[index] += int(state["buckets"].get(label, 0))
            histogram.sum += state.get("sum", 0.0)
            histogram.count += int(state.get("count", 0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self._enabled else "disabled"
        return f"MetricsRegistry({len(self._instruments)} instruments, {state})"


#: The process-wide registry every subsystem registers against.
REGISTRY = MetricsRegistry()

#: Module-level conveniences (bound methods are stable; only the
#: *instrument* methods swap on enable/disable).
counter = REGISTRY.counter
gauge = REGISTRY.gauge
histogram = REGISTRY.histogram
