"""Set-associative cache model with write-back semantics and MESI states.

The model is *behavioural*: it tracks which block addresses are resident,
their coherence state, and which blocks get evicted, but not data values
or timing.  That is exactly the information the coherence directory needs.

Addresses handled here are **block addresses** (byte address divided by
the block size); the coherence layer performs the division once so every
structure in the library agrees on the address granularity.

Storage layout (array-native)
-----------------------------
Frame state lives in flat parallel arrays indexed by ``set * ways + way``:
``_tags`` (block address or ``_EMPTY``), ``_states`` (small-int MESI
codes), ``_dirty`` flags and ``_stamps`` (LRU recency).  A reverse map
``_location`` (block address -> flat frame index) finds hits in one dict
probe, and a per-set occupancy count lets the fill path skip the
free-frame scan once a set is full (the steady state of every simulation).
There is no per-frame wrapper object: the hot path reads and writes plain
list slots.

The MESI states are encoded as integers on the hot path (``STATE_*``
module constants); the :class:`CoherenceState` enum remains the public
API boundary — :meth:`SetAssociativeCache.probe`, :meth:`state_of`,
:meth:`fill` and :meth:`set_state` speak enum, while the ``*_code``
methods used by the coherence controller speak integers.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.replacement import LruPolicy, ReplacementPolicy
from repro.config import CacheConfig

__all__ = [
    "CoherenceState",
    "CacheBlock",
    "AccessResult",
    "CacheStats",
    "SetAssociativeCache",
    "STATE_INVALID",
    "STATE_SHARED",
    "STATE_EXCLUSIVE",
    "STATE_MODIFIED",
    "STATE_TO_CODE",
    "CODE_TO_STATE",
]


class CoherenceState(str, Enum):
    """MESI block states as seen by a private cache."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def is_valid(self) -> bool:
        return self is not CoherenceState.INVALID

    @property
    def can_write(self) -> bool:
        return self in (CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE)


#: Integer MESI codes stored in the flat state array.  The ordering is
#: deliberate: ``code >= STATE_EXCLUSIVE`` means "owns the block (E or M)",
#: which the coherence protocol's downgrade path relies on.
STATE_INVALID = 0
STATE_SHARED = 1
STATE_EXCLUSIVE = 2
STATE_MODIFIED = 3

STATE_TO_CODE: Dict[CoherenceState, int] = {
    CoherenceState.INVALID: STATE_INVALID,
    CoherenceState.SHARED: STATE_SHARED,
    CoherenceState.EXCLUSIVE: STATE_EXCLUSIVE,
    CoherenceState.MODIFIED: STATE_MODIFIED,
}

#: Inverse of :data:`STATE_TO_CODE`, indexed by state code.
CODE_TO_STATE = (
    CoherenceState.INVALID,
    CoherenceState.SHARED,
    CoherenceState.EXCLUSIVE,
    CoherenceState.MODIFIED,
)

#: Vacant-frame sentinel in the flat tag array (block addresses are >= 0).
_EMPTY = -1


class CacheBlock:
    """A snapshot of one resident block frame.

    The flat-array cache has no per-frame objects; :meth:`SetAssociativeCache.
    probe` builds one of these on demand as a read-only view.  Mutating a
    snapshot does not write back into the cache — resident blocks change
    state through :meth:`SetAssociativeCache.set_state`, :meth:`touch` and
    :meth:`fill`.
    """

    __slots__ = ("address", "state", "dirty")

    def __init__(
        self,
        address: int,
        state: CoherenceState = CoherenceState.SHARED,
        dirty: bool = False,
    ) -> None:
        self.address = address
        self.state = state
        self.dirty = dirty

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheBlock({self.address:#x}, {self.state.value}, dirty={self.dirty})"


class AccessResult:
    """Outcome of installing or touching a block."""

    __slots__ = ("hit", "victim_address", "victim_dirty", "victim_state")

    def __init__(
        self,
        hit: bool,
        victim_address: Optional[int] = None,
        victim_dirty: bool = False,
        victim_state: Optional[CoherenceState] = None,
    ) -> None:
        self.hit = hit
        self.victim_address = victim_address
        self.victim_dirty = victim_dirty
        self.victim_state = victim_state

    @property
    def evicted(self) -> bool:
        return self.victim_address is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AccessResult(hit={self.hit}, victim={self.victim_address}, "
            f"dirty={self.victim_dirty})"
        )


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache.

    ``accesses`` is derived (every access is exactly one hit or one miss),
    so the per-access paths maintain one counter fewer.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations_received: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A set-associative, write-back cache over block addresses.

    The cache does not fetch data on its own: the coherence controller
    decides when to install a block (``fill``) and in which state, and the
    cache reports which victim, if any, had to leave.  ``probe`` answers
    hit/miss questions without side effects, ``touch`` updates recency on
    a hit, and ``invalidate`` removes a block on a remote write.

    The coherence controller's hot path uses the integer-code twins
    (:meth:`touch_code`, :meth:`fill_code`, :meth:`state_code_of`,
    :meth:`set_state_code`) which skip enum conversion and result-object
    construction entirely.
    """

    __slots__ = (
        "_config",
        "_name",
        "_num_sets",
        "_num_ways",
        "_policy",
        "_lru_inline",
        "_tags",
        "_states",
        "_dirty",
        "_stamps",
        "_clock",
        "_set_counts",
        "_location",
        "_stats",
        "_all_ways",
        "victim_dirty",
        "_victim_state_code",
    )

    def __init__(
        self,
        config: CacheConfig,
        name: str = "cache",
        policy: Optional[ReplacementPolicy] = None,
    ) -> None:
        self._config = config
        self._name = name
        self._num_sets = config.num_sets
        self._num_ways = config.associativity
        self._policy = policy or LruPolicy(self._num_sets, self._num_ways)
        if self._policy.num_sets != self._num_sets or self._policy.num_ways != self._num_ways:
            raise ValueError("replacement policy geometry does not match the cache")
        num_frames = self._num_sets * self._num_ways
        # Flat parallel frame arrays, indexed by set * ways + way.
        self._tags: List[int] = [_EMPTY] * num_frames
        self._states: List[int] = [STATE_INVALID] * num_frames
        self._dirty: List[bool] = [False] * num_frames
        # Reverse map: block address -> flat frame index.
        self._location: Dict[int, int] = {}
        # Occupied frames per set: lets the fill path skip the free-frame
        # scan once a set is full (the steady state of a warmed simulation).
        self._set_counts: List[int] = [0] * self._num_sets
        self._stats = CacheStats()
        # Shared "every way occupied" list handed to select_victim so the
        # generic-policy fill path does not rebuild range(num_ways).
        self._all_ways = list(range(self._num_ways))
        # When the policy is exactly LruPolicy, recency is kept in the
        # cache's own flat stamp array (bump a clock, stamp a slot, pick
        # the min-stamp frame) and the policy object is never consulted.
        # Any other policy (or LruPolicy subclass) gets the generic
        # per-(set, way) calls.
        self._lru_inline = type(self._policy) is LruPolicy
        self._stamps: List[int] = [0] * num_frames
        self._clock = 0
        # Victim side-channel for fill_code (valid after it returns >= 0).
        self.victim_dirty = False
        self._victim_state_code = STATE_INVALID

    # -- geometry ---------------------------------------------------------
    @property
    def config(self) -> CacheConfig:
        return self._config

    @property
    def name(self) -> str:
        return self._name

    @property
    def num_sets(self) -> int:
        return self._num_sets

    @property
    def num_ways(self) -> int:
        return self._num_ways

    @property
    def num_frames(self) -> int:
        return self._num_sets * self._num_ways

    @property
    def stats(self) -> CacheStats:
        return self._stats

    def reset_stats(self) -> None:
        """Clear hit/miss/eviction counters (end of warm-up)."""
        self._stats = CacheStats()

    def set_index(self, address: int) -> int:
        """Set index of a block address (modulo indexing)."""
        return address % self._num_sets

    # -- queries ------------------------------------------------------------
    def probe(self, address: int) -> Optional[CacheBlock]:
        """Return a :class:`CacheBlock` snapshot for ``address`` or ``None``.

        No side effects; the snapshot is a copy of the frame's fields, not
        live storage (see :class:`CacheBlock`).
        """
        index = self._location.get(address)
        if index is None:
            return None
        return CacheBlock(
            address=address,
            state=CODE_TO_STATE[self._states[index]],
            dirty=self._dirty[index],
        )

    def contains(self, address: int) -> bool:
        return address in self._location

    def state_of(self, address: int) -> CoherenceState:
        index = self._location.get(address)
        if index is None:
            return CoherenceState.INVALID
        return CODE_TO_STATE[self._states[index]]

    def state_code_of(self, address: int) -> int:
        """Integer MESI code of ``address`` (``STATE_INVALID`` if absent)."""
        index = self._location.get(address)
        if index is None:
            return STATE_INVALID
        return self._states[index]

    def resident_addresses(self) -> Iterator[int]:
        """All block addresses currently resident (iteration order unspecified)."""
        return iter(self._location.keys())

    def occupancy(self) -> float:
        return len(self._location) / self.num_frames if self.num_frames else 0.0

    def __len__(self) -> int:
        return len(self._location)

    # -- mutations ------------------------------------------------------------
    def touch(self, address: int, write: bool = False) -> bool:
        """Record an access to a resident block; returns False on miss.

        On a write hit the block is marked dirty; state transitions are the
        coherence controller's job (via :meth:`set_state`).
        """
        return self.touch_code(address, write) >= 0

    def touch_code(self, address: int, write: bool = False) -> int:
        """Like :meth:`touch` but returns the block's state code, -1 on miss."""
        index = self._location.get(address)
        if index is None:
            self._stats.misses += 1
            return -1
        self._stats.hits += 1
        if write:
            self._dirty[index] = True
        if self._lru_inline:
            self._clock += 1
            self._stamps[index] = self._clock
        else:
            way = index % self._num_ways
            self._policy.on_access(index // self._num_ways, way)
        return self._states[index]

    def touch_repeats(self, address: int, count: int) -> None:
        """Fold ``count`` repeated hits to a resident block into one update.

        The caller guarantees every folded access is an unconditional hit
        that changes neither state nor dirtiness (a read in any valid
        state, or a write while already MODIFIED — M implies dirty).  The
        effect on statistics and recency is exactly that of ``count``
        consecutive :meth:`touch` calls: counters advance by ``count`` and
        the frame ends up stamped with the final clock value.
        """
        index = self._location[address]
        self._stats.hits += count
        if self._lru_inline:
            self._clock += count
            self._stamps[index] = self._clock
        else:
            set_index = index // self._num_ways
            way = index % self._num_ways
            for _ in range(count):
                self._policy.on_access(set_index, way)

    # -- batched primitives (whole-chunk kernel support) ---------------------
    #
    # The batch front-end in ``repro.coherence.system`` resolves a whole
    # trace chunk against the flat arrays at once.  These primitives are the
    # cache-side half of that contract: a side-effect-free vectorised probe
    # (`lookup_batch`), a bulk hit retirement with *explicit* LRU stamps
    # (`touch_batch`), and an explicit clock advance (`advance_clock`).
    # Explicit stamps work because every access — hit or miss — advances the
    # inline-LRU clock by exactly one, so the stamp any access would have
    # written is ``clock_at_chunk_start + its rank among this cache's chunk
    # accesses``, computable for the whole chunk up front.  The front-end
    # also reads the flat arrays (`_tags``/``_states``/``_dirty``/
    # ``_stamps``/``_set_counts``/``_location``) directly on its scalar
    # drain; keep the storage layout and these primitives in sync.

    @property
    def lru_inline(self) -> bool:
        """True when recency lives in the flat stamp array (plain LRU).

        The batched kernel requires inline stamps; any custom replacement
        policy drops the front-end back to the scalar path.
        """
        return self._lru_inline

    @property
    def clock(self) -> int:
        """Current LRU clock (meaningful only when :attr:`lru_inline`)."""
        return self._clock

    def advance_clock(self, count: int) -> None:
        """Advance the LRU clock by ``count`` accesses retired out-of-band.

        The batch front-end writes precomputed stamps directly (via
        :meth:`touch_batch` and its inlined drain) and settles the clock
        once per chunk instead of once per access.
        """
        self._clock += count

    def lookup_batch(self, addresses: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised, side-effect-free probe of many block addresses.

        Returns ``(frames, states)``: the flat frame index holding each
        address (-1 where absent) and its state code (``STATE_INVALID``
        where absent).  No statistics, recency or residency change; this is
        the chunk-kernel's classification read, the batched sibling of
        :meth:`probe`.
        """
        address_array = np.asarray(addresses, dtype=np.int64)
        tags = np.asarray(self._tags, dtype=np.int64)
        states = np.asarray(self._states, dtype=np.int64)
        base = (address_array % self._num_sets) * self._num_ways
        frames = np.full(address_array.shape, -1, dtype=np.int64)
        for way in range(self._num_ways):
            candidate = base + way
            np.copyto(frames, candidate, where=(tags[candidate] == address_array))
        found = frames >= 0
        state_codes = np.where(found, states[np.where(found, frames, 0)], STATE_INVALID)
        return frames, state_codes

    def touch_batch(self, frames: Sequence[int], stamps: Sequence[int]) -> List[int]:
        """Retire a batch of hits with explicit stamps; returns prior stamps.

        ``frames`` are flat frame indices the caller already resolved (via
        :meth:`lookup_batch`), in trace order; ``stamps`` carries the exact
        stamp value each access would have written had it run through
        :meth:`touch_code` in sequence.  Like :meth:`touch_repeats`, the
        caller guarantees every access is a hit that changes neither state
        nor dirtiness (a read in any valid state, or a write while already
        MODIFIED).  The clock is *not* advanced here — the caller settles
        it with :meth:`advance_clock` once the whole chunk is retired.
        The returned prior-stamp list lets the caller undo individual
        retirements (forced-invalidation hazards) exactly.
        """
        stamp_array = self._stamps
        old = [0] * len(frames)
        for position, index in enumerate(frames):
            old[position] = stamp_array[index]
            stamp_array[index] = stamps[position]
        self._stats.hits += len(frames)
        return old

    def fill(
        self,
        address: int,
        state: CoherenceState = CoherenceState.SHARED,
        dirty: bool = False,
    ) -> AccessResult:
        """Install ``address``; evicts a victim if the set is full.

        Filling an already-resident block refreshes its recency and state
        without an eviction (hit-path fill), which keeps the model robust
        against redundant controller fills.
        """
        hit = address in self._location
        victim = self.fill_code(address, STATE_TO_CODE[state], dirty)
        if victim < 0:
            return AccessResult(hit=hit)
        return AccessResult(
            hit=False,
            victim_address=victim,
            victim_dirty=self.victim_dirty,
            victim_state=CODE_TO_STATE[self._victim_state_code],
        )

    def fill_code(
        self, address: int, state_code: int = STATE_SHARED, dirty: bool = False
    ) -> int:
        """Like :meth:`fill` but takes a state code and returns the victim.

        Returns the evicted block address, or -1 when nothing was evicted
        (vacant frame, or ``address`` was already resident).  When a victim
        is returned, ``self.victim_dirty`` holds its dirtiness.
        """
        location = self._location
        index = location.get(address)
        if index is not None:
            # Redundant controller fill: refresh state and recency in place.
            self._states[index] = state_code
            if dirty:
                self._dirty[index] = True
            if self._lru_inline:
                self._clock += 1
                self._stamps[index] = self._clock
            else:
                self._policy.on_access(index // self._num_ways, index % self._num_ways)
            return -1
        return self.fill_miss_code(address, state_code, dirty)

    def fill_miss_code(
        self, address: int, state_code: int = STATE_SHARED, dirty: bool = False
    ) -> int:
        """:meth:`fill_code` for a block the caller knows is absent.

        The coherence controller only fills after a probe missed (and
        nothing on the miss path can install the block), so the hot path
        skips the residency re-check.
        """
        location = self._location
        num_ways = self._num_ways
        set_index = address % self._num_sets
        base = set_index * num_ways
        tags = self._tags

        if self._set_counts[set_index] < num_ways:
            # A vacant frame exists: take the first one in way order.
            index = tags.index(_EMPTY, base, base + num_ways)
            tags[index] = address
            self._states[index] = state_code
            self._dirty[index] = dirty
            location[address] = index
            self._set_counts[set_index] += 1
            if self._lru_inline:
                self._clock += 1
                self._stamps[index] = self._clock
            else:
                self._policy.on_fill(set_index, index - base)
            return -1

        # Full set: evict the replacement victim and recycle its frame.
        if self._lru_inline:
            stamps = self._stamps
            if num_ways == 2:
                # Two-way sets (the tracked L1s): a single comparison, with
                # the same way-order tie-break as index(min(row)).
                index = base if stamps[base] <= stamps[base + 1] else base + 1
            else:
                row = stamps[base : base + num_ways]
                index = base + row.index(min(row))
        else:
            # Copy: a policy may legally mutate its occupied_ways arg.
            index = base + self._policy.select_victim(set_index, list(self._all_ways))
        victim_address = tags[index]
        victim_dirty = self._dirty[index]
        stats = self._stats
        stats.evictions += 1
        if victim_dirty:
            stats.dirty_evictions += 1
        self.victim_dirty = victim_dirty
        self._victim_state_code = self._states[index]
        del location[victim_address]
        tags[index] = address
        self._states[index] = state_code
        self._dirty[index] = dirty
        location[address] = index
        if self._lru_inline:
            self._clock += 1
            self._stamps[index] = self._clock
        else:
            self._policy.on_fill(set_index, index - base)
        return victim_address

    def invalidate(self, address: int) -> bool:
        """Remove ``address`` (remote write or forced directory eviction)."""
        index = self._location.pop(address, None)
        if index is None:
            return False
        if self._lru_inline:
            self._stamps[index] = 0
        else:
            self._policy.on_invalidate(index // self._num_ways, index % self._num_ways)
        self._tags[index] = _EMPTY
        self._states[index] = STATE_INVALID
        self._dirty[index] = False
        self._set_counts[index // self._num_ways] -= 1
        self._stats.invalidations_received += 1
        return True

    def set_state(self, address: int, state: CoherenceState) -> None:
        """Set the MESI state of a resident block (controller-driven)."""
        if state is CoherenceState.INVALID:
            if not self.invalidate(address):
                raise KeyError(f"block {address:#x} not resident in {self._name}")
            return
        self.set_state_code(address, STATE_TO_CODE[state])

    def set_state_code(self, address: int, state_code: int) -> None:
        """Integer-code twin of :meth:`set_state` for valid states."""
        index = self._location.get(address)
        if index is None:
            raise KeyError(f"block {address:#x} not resident in {self._name}")
        self._states[index] = state_code
        if state_code == STATE_MODIFIED:
            self._dirty[index] = True

    def flush(self) -> List[int]:
        """Empty the cache, returning the addresses that were resident."""
        addresses = list(self._location.keys())
        for index in self._location.values():
            self._tags[index] = _EMPTY
            self._states[index] = STATE_INVALID
            self._dirty[index] = False
        self._location.clear()
        self._set_counts = [0] * self._num_sets
        return addresses

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache({self._name!r}, sets={self._num_sets}, "
            f"ways={self._num_ways}, resident={len(self._location)})"
        )
