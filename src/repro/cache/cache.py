"""Set-associative cache model with write-back semantics and MESI states.

The model is *behavioural*: it tracks which block addresses are resident,
their coherence state, and which blocks get evicted, but not data values
or timing.  That is exactly the information the coherence directory needs.

Addresses handled here are **block addresses** (byte address divided by
the block size); the coherence layer performs the division once so every
structure in the library agrees on the address granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional

from repro.cache.replacement import LruPolicy, ReplacementPolicy
from repro.config import CacheConfig

__all__ = ["CoherenceState", "CacheBlock", "AccessResult", "CacheStats", "SetAssociativeCache"]


class CoherenceState(str, Enum):
    """MESI block states as seen by a private cache."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def is_valid(self) -> bool:
        return self is not CoherenceState.INVALID

    @property
    def can_write(self) -> bool:
        return self in (CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE)


class CacheBlock:
    """A resident block frame.

    A plain ``__slots__`` class rather than a dataclass: one is touched or
    (re)filled on every cache access, and on eviction the victim's instance
    is recycled for the incoming block, so the steady-state fill path
    allocates no frame objects at all.
    """

    __slots__ = ("address", "state", "dirty")

    def __init__(
        self,
        address: int,
        state: CoherenceState = CoherenceState.SHARED,
        dirty: bool = False,
    ) -> None:
        self.address = address
        self.state = state
        self.dirty = dirty

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheBlock({self.address:#x}, {self.state.value}, dirty={self.dirty})"


class AccessResult:
    """Outcome of installing or touching a block."""

    __slots__ = ("hit", "victim_address", "victim_dirty", "victim_state")

    def __init__(
        self,
        hit: bool,
        victim_address: Optional[int] = None,
        victim_dirty: bool = False,
        victim_state: Optional[CoherenceState] = None,
    ) -> None:
        self.hit = hit
        self.victim_address = victim_address
        self.victim_dirty = victim_dirty
        self.victim_state = victim_state

    @property
    def evicted(self) -> bool:
        return self.victim_address is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AccessResult(hit={self.hit}, victim={self.victim_address}, "
            f"dirty={self.victim_dirty})"
        )


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations_received: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A set-associative, write-back cache over block addresses.

    The cache does not fetch data on its own: the coherence controller
    decides when to install a block (``fill``) and in which state, and the
    cache reports which victim, if any, had to leave.  ``probe`` answers
    hit/miss questions without side effects, ``touch`` updates recency on
    a hit, and ``invalidate`` removes a block on a remote write.
    """

    def __init__(
        self,
        config: CacheConfig,
        name: str = "cache",
        policy: Optional[ReplacementPolicy] = None,
    ) -> None:
        self._config = config
        self._name = name
        self._num_sets = config.num_sets
        self._num_ways = config.associativity
        self._policy = policy or LruPolicy(self._num_sets, self._num_ways)
        if self._policy.num_sets != self._num_sets or self._policy.num_ways != self._num_ways:
            raise ValueError("replacement policy geometry does not match the cache")
        # frames[set][way] -> CacheBlock or None
        self._frames: List[List[Optional[CacheBlock]]] = [
            [None] * self._num_ways for _ in range(self._num_sets)
        ]
        # Reverse map: block address -> (set, way); kept in sync with frames.
        self._location: Dict[int, tuple] = {}
        self._stats = CacheStats()
        # Shared "every way occupied" list handed to select_victim so the
        # fill hot path does not rebuild range(num_ways) per eviction.
        self._all_ways = list(range(self._num_ways))
        # The default LRU policy's bookkeeping (bump a clock, stamp a slot,
        # pick the min-stamp way) is inlined into touch/fill when the policy
        # is exactly LruPolicy — the hot loop then performs plain list and
        # attribute operations instead of three checked method calls per
        # access.  Any other policy (or subclass) uses the generic calls.
        self._lru: Optional[LruPolicy] = (
            self._policy if type(self._policy) is LruPolicy else None
        )

    # -- geometry ---------------------------------------------------------
    @property
    def config(self) -> CacheConfig:
        return self._config

    @property
    def name(self) -> str:
        return self._name

    @property
    def num_sets(self) -> int:
        return self._num_sets

    @property
    def num_ways(self) -> int:
        return self._num_ways

    @property
    def num_frames(self) -> int:
        return self._num_sets * self._num_ways

    @property
    def stats(self) -> CacheStats:
        return self._stats

    def reset_stats(self) -> None:
        """Clear hit/miss/eviction counters (end of warm-up)."""
        self._stats = CacheStats()

    def set_index(self, address: int) -> int:
        """Set index of a block address (modulo indexing)."""
        return address % self._num_sets

    # -- queries ------------------------------------------------------------
    def probe(self, address: int) -> Optional[CacheBlock]:
        """Return the resident block for ``address`` or ``None`` (no side effects)."""
        loc = self._location.get(address)
        if loc is None:
            return None
        set_index, way = loc
        return self._frames[set_index][way]

    def contains(self, address: int) -> bool:
        return address in self._location

    def state_of(self, address: int) -> CoherenceState:
        block = self.probe(address)
        return block.state if block is not None else CoherenceState.INVALID

    def resident_addresses(self) -> Iterator[int]:
        """All block addresses currently resident (iteration order unspecified)."""
        return iter(self._location.keys())

    def occupancy(self) -> float:
        return len(self._location) / self.num_frames if self.num_frames else 0.0

    def __len__(self) -> int:
        return len(self._location)

    # -- mutations ------------------------------------------------------------
    def touch(self, address: int, write: bool = False) -> bool:
        """Record an access to a resident block; returns False on miss.

        On a write hit the block is marked dirty; state transitions are the
        coherence controller's job (via :meth:`set_state`).
        """
        stats = self._stats
        stats.accesses += 1
        loc = self._location.get(address)
        if loc is None:
            stats.misses += 1
            return False
        set_index, way = loc
        block = self._frames[set_index][way]
        assert block is not None
        if write:
            block.dirty = True
        lru = self._lru
        if lru is not None:
            lru._clock += 1
            lru._stamps[set_index][way] = lru._clock
        else:
            self._policy.on_access(set_index, way)
        stats.hits += 1
        return True

    def fill(
        self,
        address: int,
        state: CoherenceState = CoherenceState.SHARED,
        dirty: bool = False,
    ) -> AccessResult:
        """Install ``address``; evicts a victim if the set is full.

        Filling an already-resident block refreshes its recency and state
        without an eviction (hit-path fill), which keeps the model robust
        against redundant controller fills.
        """
        lru = self._lru
        existing = self._location.get(address)
        if existing is not None:
            set_index, way = existing
            block = self._frames[set_index][way]
            assert block is not None
            block.state = state
            block.dirty = block.dirty or dirty
            if lru is not None:
                lru._clock += 1
                lru._stamps[set_index][way] = lru._clock
            else:
                self._policy.on_access(set_index, way)
            return AccessResult(hit=True)

        set_index = address % self._num_sets
        ways = self._frames[set_index]

        free_way = None
        for way, block in enumerate(ways):
            if block is None:
                free_way = way
                break
        if free_way is None:
            if lru is not None:
                row = lru._stamps[set_index]
                victim_way = row.index(min(row))
            else:
                # Copy: a policy may legally mutate its occupied_ways arg.
                victim_way = self._policy.select_victim(
                    set_index, list(self._all_ways)
                )
            victim = ways[victim_way]
            assert victim is not None
            victim_address = victim.address
            victim_dirty = victim.dirty
            victim_state = victim.state
            stats = self._stats
            stats.evictions += 1
            if victim_dirty:
                stats.dirty_evictions += 1
            del self._location[victim_address]
            # Recycle the victim's frame object for the incoming block.
            victim.address = address
            victim.state = state
            victim.dirty = dirty
            self._location[address] = (set_index, victim_way)
            if lru is not None:
                lru._clock += 1
                lru._stamps[set_index][victim_way] = lru._clock
            else:
                self._policy.on_fill(set_index, victim_way)
            return AccessResult(
                hit=False,
                victim_address=victim_address,
                victim_dirty=victim_dirty,
                victim_state=victim_state,
            )

        ways[free_way] = CacheBlock(address=address, state=state, dirty=dirty)
        self._location[address] = (set_index, free_way)
        if lru is not None:
            lru._clock += 1
            lru._stamps[set_index][free_way] = lru._clock
        else:
            self._policy.on_fill(set_index, free_way)
        return AccessResult(hit=False)

    def invalidate(self, address: int) -> bool:
        """Remove ``address`` (remote write or forced directory eviction)."""
        loc = self._location.get(address)
        if loc is None:
            return False
        set_index, way = loc
        self._policy.on_invalidate(set_index, way)
        self._frames[set_index][way] = None
        del self._location[address]
        self._stats.invalidations_received += 1
        return True

    def set_state(self, address: int, state: CoherenceState) -> None:
        """Set the MESI state of a resident block (controller-driven)."""
        block = self.probe(address)
        if block is None:
            raise KeyError(f"block {address:#x} not resident in {self._name}")
        if state is CoherenceState.INVALID:
            self.invalidate(address)
            return
        block.state = state
        if state is CoherenceState.MODIFIED:
            block.dirty = True

    def flush(self) -> List[int]:
        """Empty the cache, returning the addresses that were resident."""
        addresses = list(self._location.keys())
        for address in addresses:
            loc = self._location[address]
            self._frames[loc[0]][loc[1]] = None
        self._location.clear()
        return addresses

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache({self._name!r}, sets={self._num_sets}, "
            f"ways={self._num_ways}, resident={len(self._location)})"
        )
