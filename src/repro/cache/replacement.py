"""Replacement policies for the set-associative cache model.

A policy is instantiated per cache and consulted per set.  The interface
is deliberately narrow — record a touch, record an insertion, pick a
victim way — so policies can be swapped without the cache knowing their
internals.  The paper's caches are LRU; FIFO and random are provided for
sensitivity studies and for tests that need a deterministic non-recency
policy.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "ReplacementPolicy",
    "LruPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "make_policy",
]


class ReplacementPolicy(abc.ABC):
    """Chooses which way of a set to victimise."""

    def __init__(self, num_sets: int, num_ways: int) -> None:
        if num_sets <= 0 or num_ways <= 0:
            raise ValueError("num_sets and num_ways must be positive")
        self._num_sets = num_sets
        self._num_ways = num_ways

    @property
    def num_sets(self) -> int:
        return self._num_sets

    @property
    def num_ways(self) -> int:
        return self._num_ways

    @abc.abstractmethod
    def on_access(self, set_index: int, way: int) -> None:
        """A resident block in ``(set_index, way)`` was accessed (hit)."""

    @abc.abstractmethod
    def on_fill(self, set_index: int, way: int) -> None:
        """A block was installed into ``(set_index, way)``."""

    @abc.abstractmethod
    def select_victim(self, set_index: int, occupied_ways: List[int]) -> int:
        """Pick the way to evict among ``occupied_ways`` (all ways full)."""

    def on_invalidate(self, set_index: int, way: int) -> None:
        """A block was invalidated; default implementations need no action."""

    def _check(self, set_index: int, way: int) -> None:
        if not 0 <= set_index < self._num_sets:
            raise IndexError(f"set {set_index} out of range")
        if not 0 <= way < self._num_ways:
            raise IndexError(f"way {way} out of range")


class LruPolicy(ReplacementPolicy):
    """Least-recently-used replacement (the paper's cache policy).

    Recency stamps live in plain nested lists: the policy is touched on
    every cache hit and fill, and scalar indexing into small Python lists
    is several times cheaper than numpy element access at this grain.
    """

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        # Per-set recency stamp per way; larger = more recent.
        self._stamps: List[List[int]] = [[0] * num_ways for _ in range(num_sets)]
        self._clock = 0

    def _touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._stamps[set_index][way] = self._clock

    def on_access(self, set_index: int, way: int) -> None:
        self._check(set_index, way)
        self._touch(set_index, way)

    def on_fill(self, set_index: int, way: int) -> None:
        self._check(set_index, way)
        self._touch(set_index, way)

    def on_invalidate(self, set_index: int, way: int) -> None:
        self._check(set_index, way)
        self._stamps[set_index][way] = 0

    def select_victim(self, set_index: int, occupied_ways: List[int]) -> int:
        if not occupied_ways:
            raise ValueError("select_victim requires at least one occupied way")
        row = self._stamps[set_index]
        if len(occupied_ways) == self._num_ways:
            # Full set (the fill path): min over the raw stamp row runs at
            # C speed; index() returns the first minimum, matching the
            # subset path's tie-break on way order.
            return row.index(min(row))
        return min(occupied_ways, key=row.__getitem__)


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out replacement (insertion order, accesses ignored)."""

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        self._fill_order: List[List[int]] = [[0] * num_ways for _ in range(num_sets)]
        self._clock = 0

    def on_access(self, set_index: int, way: int) -> None:
        self._check(set_index, way)

    def on_fill(self, set_index: int, way: int) -> None:
        self._check(set_index, way)
        self._clock += 1
        self._fill_order[set_index][way] = self._clock

    def select_victim(self, set_index: int, occupied_ways: List[int]) -> int:
        if not occupied_ways:
            raise ValueError("select_victim requires at least one occupied way")
        return min(occupied_ways, key=self._fill_order[set_index].__getitem__)


class RandomPolicy(ReplacementPolicy):
    """Uniform random replacement (seeded for reproducibility)."""

    def __init__(self, num_sets: int, num_ways: int, seed: int = 0) -> None:
        super().__init__(num_sets, num_ways)
        self._rng = np.random.default_rng(seed)

    def on_access(self, set_index: int, way: int) -> None:
        self._check(set_index, way)

    def on_fill(self, set_index: int, way: int) -> None:
        self._check(set_index, way)

    def select_victim(self, set_index: int, occupied_ways: List[int]) -> int:
        if not occupied_ways:
            raise ValueError("select_victim requires at least one occupied way")
        return int(self._rng.choice(occupied_ways))


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, num_sets: int, num_ways: int, **kwargs) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (``lru``, ``fifo``, ``random``)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        valid = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown replacement policy {name!r}; expected one of {valid}")
    return cls(num_sets, num_ways, **kwargs)
