"""Set-associative cache models.

The coherence directory's behaviour is driven entirely by which blocks the
private caches hold, so the library contains a faithful (if timing-free)
cache model: set-associative arrays with pluggable replacement policies,
write-back dirty tracking, and MESI block states that the coherence layer
manages.  Evictions are surfaced to the caller because the directory must
observe them (Section 5.2: "Dirty and clean evictions from the private
caches are tracked by the directory").
"""

from repro.cache.cache import (
    CODE_TO_STATE,
    STATE_EXCLUSIVE,
    STATE_INVALID,
    STATE_MODIFIED,
    STATE_SHARED,
    STATE_TO_CODE,
    AccessResult,
    CacheBlock,
    CoherenceState,
    SetAssociativeCache,
)
from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)

__all__ = [
    "AccessResult",
    "CacheBlock",
    "CoherenceState",
    "SetAssociativeCache",
    "STATE_INVALID",
    "STATE_SHARED",
    "STATE_EXCLUSIVE",
    "STATE_MODIFIED",
    "STATE_TO_CODE",
    "CODE_TO_STATE",
    "ReplacementPolicy",
    "LruPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "make_policy",
]
