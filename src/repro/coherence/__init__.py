"""MESI coherence protocol and tiled-CMP system model.

This package is the substrate the paper's evaluation runs on: a
trace-driven model of the tiled CMP of Table 1.  Cores issue memory
accesses; private caches filter them; misses and upgrades travel to the
block's address-interleaved *home* tile, where the directory slice is
consulted and invalidations are sent to sharers.  Both system
configurations of the paper are supported:

* **Shared-L2** — the directory tracks the split I/D L1 caches (two
  tracked caches per core) in front of an address-interleaved shared L2;
* **Private-L2** — the directory tracks unified private L2 caches (one
  tracked cache per core), representative of private-L2 or three-level
  hierarchies.

The directory organization is pluggable: any
:class:`~repro.directories.base.Directory` factory can be used, which is
how the experiments swap Sparse/Skewed/Duplicate-Tag/Cuckoo organizations
over identical access streams.
"""

from repro.coherence.interconnect import MeshInterconnect
from repro.coherence.messages import MessageType, TrafficStats
from repro.coherence.paging import PageMapper
from repro.coherence.simulator import SimulationResult, TraceSimulator
from repro.coherence.system import MemoryAccess, TiledCMP

__all__ = [
    "MemoryAccess",
    "TiledCMP",
    "TraceSimulator",
    "SimulationResult",
    "MeshInterconnect",
    "MessageType",
    "TrafficStats",
    "PageMapper",
]
