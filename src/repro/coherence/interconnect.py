"""Simple 2-D mesh interconnect model.

Tiled CMPs route coherence messages over an on-chip network; only hop
counts matter for the traffic accounting in this library (no contention or
timing).  Tiles are laid out row-major on the smallest square-ish mesh
that fits the core count, and messages take dimension-ordered (X-then-Y)
routes, so the hop count between two tiles is their Manhattan distance.
"""

from __future__ import annotations

import math
from typing import Tuple

__all__ = ["MeshInterconnect"]


class MeshInterconnect:
    """Manhattan-distance hop model over a near-square 2-D mesh."""

    def __init__(self, num_tiles: int) -> None:
        if num_tiles <= 0:
            raise ValueError("num_tiles must be positive")
        self._num_tiles = num_tiles
        self._columns = max(1, int(math.ceil(math.sqrt(num_tiles))))
        self._rows = int(math.ceil(num_tiles / self._columns))

    @property
    def num_tiles(self) -> int:
        return self._num_tiles

    @property
    def dimensions(self) -> Tuple[int, int]:
        """(rows, columns) of the mesh."""
        return self._rows, self._columns

    def coordinates(self, tile: int) -> Tuple[int, int]:
        """Row-major (row, column) position of a tile."""
        self._check(tile)
        return divmod(tile, self._columns)

    def hops(self, source: int, destination: int) -> int:
        """Manhattan distance between two tiles (0 for the same tile)."""
        sr, sc = self.coordinates(source)
        dr, dc = self.coordinates(destination)
        return abs(sr - dr) + abs(sc - dc)

    def average_distance(self) -> float:
        """Mean hop count over all ordered tile pairs (diagnostic)."""
        total = 0
        for src in range(self._num_tiles):
            for dst in range(self._num_tiles):
                total += self.hops(src, dst)
        return total / (self._num_tiles * self._num_tiles)

    def _check(self, tile: int) -> None:
        if not 0 <= tile < self._num_tiles:
            raise IndexError(f"tile {tile} out of range [0, {self._num_tiles})")
