"""Tiled-CMP coherence model.

:class:`TiledCMP` wires together the private caches, the address-interleaved
directory slices, and a mesh hop model, and executes memory accesses the way
Figure 2 of the paper describes: the accessing core's private cache is tried
first; misses and write-upgrades travel to the block's *home* tile, where the
directory slice is consulted and invalidations are sent to the sharers it
reports.

Two configurations are supported, matching Section 5:

* ``CacheLevel.L1`` (**Shared-L2**): the tracked private caches are the split
  I/D L1s (two per core); an address-interleaved shared L2 sits behind them
  and is modelled for hit-rate/traffic statistics.
* ``CacheLevel.L2`` (**Private-L2**): the tracked private caches are unified
  1 MB private L2s (one per core).  The small L1s in front of them are not
  modelled: they filter repeated hits to hot blocks but do not change which
  blocks are resident in the L2s, which is the only thing the directory
  observes (this substitution is recorded in DESIGN.md).

The directory organization is supplied as a factory so identical access
streams can be replayed against Sparse, Skewed, Duplicate-Tag, Tagless or
Cuckoo organizations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.cache.cache import CoherenceState, SetAssociativeCache
from repro.config import CacheLevel, SystemConfig
from repro.coherence.interconnect import MeshInterconnect
from repro.coherence.messages import (
    MESSAGE_BYTES_BY_TYPE,
    MessageType,
    TrafficStats,
)
from repro.coherence.paging import PageMapper
from repro.directories.base import Directory, DirectoryStats, Invalidation, UpdateResult

__all__ = ["MemoryAccess", "DirectoryFactory", "TiledCMP"]


@dataclass(frozen=True)
class MemoryAccess:
    """One memory reference issued by a core.

    ``address`` is a byte address; the system converts it to a block
    address internally.  ``is_instruction`` selects the L1 instruction
    cache in the Shared-L2 configuration (ignored in Private-L2).
    """

    core: int
    address: int
    is_write: bool = False
    is_instruction: bool = False


#: Signature of a directory-slice factory: ``(num_tracked_caches, slice_id)``.
DirectoryFactory = Callable[[int, int], Directory]


class TiledCMP:
    """Trace-driven tiled CMP with a pluggable coherence directory."""

    def __init__(
        self,
        config: SystemConfig,
        directory_factory: DirectoryFactory,
        track_traffic: bool = True,
        page_mapper: Optional[PageMapper] = None,
        page_mapper_seed: int = 0,
    ) -> None:
        self._config = config
        self._track_traffic = track_traffic
        self._offset_bits = config.tracked_cache_config.block_offset_bits
        # Virtual-to-physical translation (OS first-touch allocation): see
        # repro.coherence.paging for why this matters to directory conflicts.
        self._page_mapper = page_mapper or PageMapper(
            page_bytes=config.page_bytes, seed=page_mapper_seed
        )
        num_cores = config.num_cores

        # Tracked private caches: index == tracked cache id.
        self._tracked: List[SetAssociativeCache] = []
        if config.tracked_level is CacheLevel.L1:
            for core in range(num_cores):
                self._tracked.append(
                    SetAssociativeCache(config.l1_config, name=f"l1i-{core}")
                )
                self._tracked.append(
                    SetAssociativeCache(config.l1_config, name=f"l1d-{core}")
                )
            # The shared L2 is modelled for hit-rate statistics only.
            self._l2_banks: Optional[List[SetAssociativeCache]] = [
                SetAssociativeCache(config.l2_config, name=f"l2-bank-{core}")
                for core in range(num_cores)
            ]
        else:
            for core in range(num_cores):
                self._tracked.append(
                    SetAssociativeCache(config.l2_config, name=f"l2-{core}")
                )
            self._l2_banks = None

        num_tracked = len(self._tracked)
        self._directories: List[Directory] = [
            directory_factory(num_tracked, slice_id)
            for slice_id in range(config.num_directory_slices)
        ]
        self._mesh = MeshInterconnect(num_cores)
        self._traffic = TrafficStats()
        self._accesses = 0
        # Hot-path state hoisted out of the per-access methods: the tracked
        # level as a plain bool, the slice count, and an all-pairs hop table
        # (cores² entries) so traffic recording is two list indexings.
        self._l1_tracked = config.tracked_level is CacheLevel.L1
        self._num_cores = num_cores
        self._num_slices = len(self._directories)
        self._hop_table: List[List[int]] = [
            [self._mesh.hops(source, destination) for destination in range(num_cores)]
            for source in range(num_cores)
        ]
        self._core_of: List[int] = [
            self.core_of_cache(cache_id) for cache_id in range(num_tracked)
        ]

    # -- geometry / accessors ------------------------------------------------
    @property
    def config(self) -> SystemConfig:
        return self._config

    @property
    def directories(self) -> Sequence[Directory]:
        return tuple(self._directories)

    @property
    def tracked_caches(self) -> Sequence[SetAssociativeCache]:
        return tuple(self._tracked)

    @property
    def l2_banks(self) -> Optional[Sequence[SetAssociativeCache]]:
        return tuple(self._l2_banks) if self._l2_banks is not None else None

    @property
    def traffic(self) -> TrafficStats:
        return self._traffic

    @property
    def accesses_processed(self) -> int:
        return self._accesses

    @property
    def page_mapper(self) -> PageMapper:
        return self._page_mapper

    def block_address(self, byte_address: int) -> int:
        """Physical block address of a virtual byte address."""
        return self._page_mapper.translate(byte_address) >> self._offset_bits

    def home_slice(self, block: int) -> int:
        """Home tile of a block (static address interleaving).

        NOTE: ``access_scalar`` and ``_handle_victim`` inline this rule
        (and :meth:`slice_local_address`) against ``self._num_slices``;
        change the interleaving in all three places together.
        """
        return block % self._num_slices

    def slice_local_address(self, block: int) -> int:
        """Block address as seen by its home directory slice.

        The interleaving bits select the slice and are therefore constant
        for every block a slice sees; real hardware strips them before
        indexing the slice's tag store (otherwise only ``1/num_slices`` of
        the sets would ever be used).  Directories in this model operate
        on these slice-local addresses.
        """
        return block // self._num_slices

    def global_address(self, local_block: int, slice_id: int) -> int:
        """Inverse of :meth:`slice_local_address` for a given home slice."""
        return local_block * self._num_slices + slice_id

    def tracked_cache_id(self, core: int, is_instruction: bool) -> int:
        """Tracked-cache id for an access issued by ``core``."""
        if not 0 <= core < self._config.num_cores:
            raise IndexError(f"core {core} out of range")
        if self._config.tracked_level is CacheLevel.L1:
            return core * 2 + (0 if is_instruction else 1)
        return core

    def core_of_cache(self, cache_id: int) -> int:
        """Core (tile) that owns a tracked cache."""
        if self._config.tracked_level is CacheLevel.L1:
            return cache_id // 2
        return cache_id

    # -- statistics ------------------------------------------------------------
    def directory_stats(self) -> DirectoryStats:
        """Statistics merged across all directory slices."""
        merged = DirectoryStats()
        for directory in self._directories:
            merged = merged.merge(directory.stats)
        return merged

    def sample_occupancy(self) -> float:
        """Sample every slice's occupancy; returns the mean of this sample."""
        values = [directory.sample_occupancy() for directory in self._directories]
        return sum(values) / len(values)

    def reset_stats(self) -> None:
        """Clear directory, cache and traffic statistics (end of warm-up)."""
        for directory in self._directories:
            directory.reset_stats()
        for cache in self._tracked:
            cache.reset_stats()
        if self._l2_banks is not None:
            for bank in self._l2_banks:
                bank.reset_stats()
        self._traffic = TrafficStats()

    # -- the access path ---------------------------------------------------------
    def access(self, access: MemoryAccess) -> None:
        """Execute one memory access through the coherence protocol."""
        self.access_scalar(
            access.core, access.address, access.is_write, access.is_instruction
        )

    def access_scalar(
        self, core: int, address: int, is_write: bool, is_instruction: bool
    ) -> None:
        """Execute one access given as plain scalars (the chunked hot path).

        Behaviourally identical to :meth:`access`; exists so the simulator's
        chunked loop never materialises :class:`MemoryAccess` objects.
        """
        self._accesses += 1
        block = self._page_mapper.translate(address) >> self._offset_bits
        if not 0 <= core < self._num_cores:
            raise IndexError(f"core {core} out of range")
        if self._l1_tracked:
            cache_id = core * 2 + (0 if is_instruction else 1)
        else:
            cache_id = core
        cache = self._tracked[cache_id]
        home = block % self._num_slices
        local = block // self._num_slices
        directory = self._directories[home]

        hit = cache.touch(block, write=is_write)
        if hit:
            if is_write:
                self._handle_write_hit(block, local, cache_id, cache, home, directory)
            return

        # Miss: consult the home directory (and the shared L2 bank for stats).
        if self._l2_banks is not None:
            bank = self._l2_banks[home]
            if not bank.touch(block, write=is_write):
                bank.fill(block)
        if is_write:
            self._handle_write_miss(block, local, cache_id, cache, home, directory)
        else:
            self._handle_read_miss(block, local, cache_id, cache, home, directory)

    # -- protocol actions ----------------------------------------------------------
    def _handle_write_hit(
        self,
        block: int,
        local: int,
        cache_id: int,
        cache: SetAssociativeCache,
        home: int,
        directory: Directory,
    ) -> None:
        state = cache.state_of(block)
        if state is CoherenceState.MODIFIED:
            return
        if state is CoherenceState.EXCLUSIVE:
            # Silent E -> M upgrade; no directory interaction needed.
            cache.set_state(block, CoherenceState.MODIFIED)
            return
        # S -> M upgrade: the home must invalidate the other sharers.
        self._record(MessageType.GET_MODIFIED, self._core_of[cache_id], home)
        result = directory.acquire_exclusive(local, cache_id)
        self._apply_coherence_invalidations(block, result, home, requester=cache_id)
        self._apply_forced_invalidations(result.invalidations, home)
        cache.set_state(block, CoherenceState.MODIFIED)

    def _handle_write_miss(
        self,
        block: int,
        local: int,
        cache_id: int,
        cache: SetAssociativeCache,
        home: int,
        directory: Directory,
    ) -> None:
        self._record(MessageType.GET_MODIFIED, self._core_of[cache_id], home)
        result = directory.acquire_exclusive(local, cache_id)
        self._apply_coherence_invalidations(block, result, home, requester=cache_id)
        self._apply_forced_invalidations(result.invalidations, home)
        self._record(MessageType.DATA, home, self._core_of[cache_id])
        fill = cache.fill(block, state=CoherenceState.MODIFIED, dirty=True)
        self._handle_victim(fill, cache_id)

    def _handle_read_miss(
        self,
        block: int,
        local: int,
        cache_id: int,
        cache: SetAssociativeCache,
        home: int,
        directory: Directory,
    ) -> None:
        self._record(MessageType.GET_SHARED, self._core_of[cache_id], home)
        existing = directory.lookup(local)
        if existing.found:
            self._downgrade_owner(block, existing.sharers, home, requester=cache_id)
            new_state = CoherenceState.SHARED
        else:
            new_state = CoherenceState.EXCLUSIVE
        result = directory.add_sharer(local, cache_id)
        self._apply_forced_invalidations(result.invalidations, home)
        self._record(MessageType.DATA, home, self._core_of[cache_id])
        fill = cache.fill(block, state=new_state)
        self._handle_victim(fill, cache_id)

    def _downgrade_owner(
        self, block: int, sharers, home: int, requester: int
    ) -> None:
        """On a read miss, an M/E owner must be downgraded to S."""
        for sharer in sharers:
            if sharer == requester:
                continue
            owner_cache = self._tracked[sharer]
            state = owner_cache.state_of(block)
            if state in (CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE):
                self._record(
                    MessageType.FWD_GET, home, self._core_of[sharer]
                )
                if state is CoherenceState.MODIFIED:
                    self._record(
                        MessageType.PUT_MODIFIED, self._core_of[sharer], home
                    )
                owner_cache.set_state(block, CoherenceState.SHARED)

    def _apply_coherence_invalidations(
        self, block: int, result: UpdateResult, home: int, requester: int
    ) -> None:
        """Invalidate the accessed block in every other reported sharer."""
        for sharer in result.coherence_invalidations:
            if sharer == requester:
                continue
            self._record(MessageType.INVALIDATE, home, self._core_of[sharer])
            self._tracked[sharer].invalidate(block)
            self._record(MessageType.INV_ACK, self._core_of[sharer], home)

    def _apply_forced_invalidations(
        self, invalidations: Sequence[Invalidation], home: int
    ) -> None:
        """Invalidate blocks whose directory entries were victimised.

        The directory has already dropped the entry; the private caches
        must drop their copies to preserve the inclusion property between
        the directory and the tracked caches.  Victim addresses arrive in
        slice-local form and are translated back to global block addresses
        before touching the caches.
        """
        for invalidation in invalidations:
            block = self.global_address(invalidation.address, home)
            for sharer in invalidation.caches:
                self._record(
                    MessageType.INVALIDATE, home, self._core_of[sharer]
                )
                self._tracked[sharer].invalidate(block)
                self._record(
                    MessageType.INV_ACK, self._core_of[sharer], home
                )

    def _handle_victim(self, fill_result, cache_id: int) -> None:
        """Notify the victim's home directory of a private-cache eviction."""
        victim = fill_result.victim_address
        if victim is None:
            return
        num_slices = self._num_slices
        victim_home = victim % num_slices
        message = (
            MessageType.PUT_MODIFIED if fill_result.victim_dirty else MessageType.PUT_SHARED
        )
        self._record(message, self._core_of[cache_id], victim_home)
        self._directories[victim_home].remove_sharer(
            victim // num_slices, cache_id
        )

    # -- consistency checking (used by integration tests) --------------------------
    def check_inclusion(self) -> List[str]:
        """Verify directory/cache consistency; returns a list of violations.

        Two invariants are checked:

        * every block resident in a tracked cache is reported as shared by
          that cache in its home directory slice (no silently untracked
          blocks);
        * every *exact* directory organization reports only true sharers
          (inexact encodings legitimately report supersets and are skipped).
        """
        violations: List[str] = []
        for cache_id, cache in enumerate(self._tracked):
            for block in cache.resident_addresses():
                directory = self._directories[self.home_slice(block)]
                sharers = directory.lookup(self.slice_local_address(block)).sharers
                if cache_id not in sharers:
                    violations.append(
                        f"block {block:#x} resident in cache {cache_id} "
                        f"but not tracked by its home directory"
                    )
        return violations

    # -- helpers ---------------------------------------------------------------------
    def _record(self, message_type: MessageType, source: int, destination: int) -> None:
        if not self._track_traffic:
            return
        # Inlined TrafficStats.record: this runs a few times per access and
        # the counters are plain attributes (the message dict is initialised
        # with every type, so no .get fallback is needed).
        traffic = self._traffic
        traffic.messages[message_type] += 1
        traffic.hops += self._hop_table[source][destination]
        traffic.bytes_transferred += MESSAGE_BYTES_BY_TYPE[message_type]
