"""Tiled-CMP coherence model.

:class:`TiledCMP` wires together the private caches, the address-interleaved
directory slices, and a mesh hop model, and executes memory accesses the way
Figure 2 of the paper describes: the accessing core's private cache is tried
first; misses and write-upgrades travel to the block's *home* tile, where the
directory slice is consulted and invalidations are sent to the sharers it
reports.

Two configurations are supported, matching Section 5:

* ``CacheLevel.L1`` (**Shared-L2**): the tracked private caches are the split
  I/D L1s (two per core); an address-interleaved shared L2 sits behind them
  and is modelled for hit-rate/traffic statistics.
* ``CacheLevel.L2`` (**Private-L2**): the tracked private caches are unified
  1 MB private L2s (one per core).  The small L1s in front of them are not
  modelled: they filter repeated hits to hot blocks but do not change which
  blocks are resident in the L2s, which is the only thing the directory
  observes (this substitution is recorded in DESIGN.md).

The directory organization is supplied as a factory so identical access
streams can be replayed against Sparse, Skewed, Duplicate-Tag, Tagless or
Cuckoo organizations.

Execution paths
---------------
Three entry points execute the same protocol and produce bit-identical
statistics:

* :meth:`TiledCMP.access` — one :class:`MemoryAccess` object (general API);
* :meth:`TiledCMP.access_scalar` — one access as plain scalars;
* :meth:`TiledCMP.access_batch` — a slice of a trace chunk.  All per-access
  address math (page translation, block/home/local derivation, tracked-cache
  selection) is numpy-precomputed for the whole slice, the core-range check
  is hoisted to one chunk-level validation, and consecutive accesses by the
  same cache to the same block collapse into a single probe plus counter
  bumps (the run-length fast path — common in instruction and streaming
  traces).

Internally the protocol operates on integer MESI codes
(:data:`repro.cache.cache.STATE_TO_CODE`); the :class:`~repro.cache.cache.
CoherenceState` enum appears only at the public cache API boundary.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.cache import (
    STATE_EXCLUSIVE,
    STATE_MODIFIED,
    STATE_SHARED,
    SetAssociativeCache,
)
from repro.config import CacheLevel, SystemConfig
from repro.coherence.interconnect import MeshInterconnect
from repro.coherence.messages import (
    MESSAGE_BYTES_BY_TYPE,
    MessageType,
    TrafficStats,
)
from repro.coherence.paging import PageMapper
from repro.core.cuckoo_hash import _INDICES_CACHE_LIMIT
from repro.directories.base import Directory, DirectoryStats, Invalidation, UpdateResult
from repro.directories.sharers import FullBitVector
from repro.obs.metrics import counter as _obs_counter
from repro.obs.tracing import TRACER as _TRACER

__all__ = ["MemoryAccess", "DirectoryFactory", "TiledCMP"]

# Telemetry at chunk granularity only (DESIGN.md "Observability"): one
# counter bump and two spans per access_batch call, nothing per access.
# The instruments are free no-ops until repro.obs.enable() swaps them.
_BATCH_CHUNKS = _obs_counter(
    "sim.batch.chunks", help="access_batch slices executed"
)
_BATCH_ACCESSES = _obs_counter(
    "sim.batch.accesses", help="accesses executed through access_batch"
)
_BATCH_FOLDED = _obs_counter(
    "sim.batch.folded_accesses",
    help="accesses folded by the run-length fast path",
)
_BATCH_SCALAR = _obs_counter(
    "sim.batch.scalar_fallbacks",
    help="accesses that took the scalar coherence-protocol path",
)
_BATCH_KERNEL_HITS = _obs_counter(
    "sim.batch.kernel_hits",
    help="hits retired vectorised by the whole-chunk kernel",
)
_BATCH_DRAINED = _obs_counter(
    "sim.batch.drained",
    help="accesses drained through the scalar protocol path by the kernel",
)
_BATCH_ROLLBACKS = _obs_counter(
    "sim.batch.rollbacks",
    help="kernel-retired hits rolled back and re-injected (hazards)",
)
# Drain-pipeline telemetry (DESIGN.md "The batched miss drain"): the
# vector/scalar split plus the per-class retirement counts, all bumped
# once per chunk from the drain's chunk-local accumulators.
_DRAIN_VECTOR = _obs_counter(
    "sim.drain.vector_resolved",
    help="drained accesses resolved by the vectorized drain pipeline",
)
_DRAIN_SCALAR = _obs_counter(
    "sim.drain.scalar_fallback",
    help="drained accesses resolved by the scalar fallback drain",
)
_DRAIN_CLS_HITS = _obs_counter(
    "sim.drain.class_hits",
    help="drained accesses that were cache hits dragged in by conflicts",
)
_DRAIN_CLS_UPGRADES = _obs_counter(
    "sim.drain.class_upgrades",
    help="write-hit S/E->M upgrades resolved in the drain",
)
_DRAIN_CLS_READ_DIRHIT = _obs_counter(
    "sim.drain.class_read_dirhit",
    help="read misses that hit an existing directory entry",
)
_DRAIN_CLS_READ_INSERT = _obs_counter(
    "sim.drain.class_read_insert",
    help="read misses that allocated a fresh directory entry",
)
_DRAIN_CLS_WRITE_MISS = _obs_counter(
    "sim.drain.class_write_miss",
    help="write misses resolved in the drain",
)
_DRAIN_CLS_WALKS = _obs_counter(
    "sim.drain.class_walks",
    help="insertions that needed a displacement walk (scalar by design)",
)
_DRAIN_REINJECTED = _obs_counter(
    "sim.drain.reinjected",
    help="rolled-back kernel hits replayed through the drain",
)

#: Minimum drained-access count for the vectorized drain pipeline: below
#: this the pre-pass (batch hashing, hop gathers, list materialisation)
#: costs more than the scalar fallback's per-access overhead.
_DRAIN_VECTOR_MIN = 16

#: Default chunk-kernel selection for new :class:`TiledCMP` instances.
#: ``auto`` engages the vectorised whole-chunk kernel whenever the flat
#: tag-array snapshot is small enough to amortise over the chunk (see
#: ``_AUTO_SNAPSHOT_RATIO``); ``vector``/``scalar`` force one path — used
#: by the property suites (pin the kernel) and ``bench_hot_path.py
#: --kernel`` (benchmark both).  Module-level so benchmarks can flip the
#: default without threading a parameter through every experiment helper.
DEFAULT_BATCH_KERNEL = "auto"

#: Default drain-pipeline selection, the drain-side analogue of
#: ``DEFAULT_BATCH_KERNEL``: ``auto`` engages the vectorized drain
#: pipeline whenever the directories support it (``_drain_vector_config``)
#: and the chunk drains at least ``_DRAIN_VECTOR_MIN`` accesses;
#: ``scalar`` forces the scalar fallback everywhere.  Read when the
#: support decision is first resolved (one cached check per system), so
#: flip it before the first drained chunk — ``bench_hot_path.py`` uses it
#: to time the scalar drain against the pipeline on the same build.
DEFAULT_DRAIN_PIPELINE = "auto"

#: ``auto`` uses the vector kernel when ``total tracked frames <= ratio *
#: chunk length``: the kernel's per-chunk snapshot of every tracked tag
#: array is O(frames), so tiny chunks over huge caches (the Private-L2
#: sweeps) would pay more building the snapshot than the scalar loop costs.
#: The snapshot is a handful of numpy conversions (~35ns/frame) while the
#: scalar loop costs several microseconds per access, so the break-even
#: sits near two orders of magnitude; 64 keeps a safety margin for small
#: chunks (the warm-up ramp) without letting sweep-sized caches through.
_AUTO_SNAPSHOT_RATIO = 64

# Hot-path message constants: hoisted enum members and their byte costs so
# the inlined traffic recording does no enum attribute traversal.
_GET_SHARED = MessageType.GET_SHARED
_GET_MODIFIED = MessageType.GET_MODIFIED
_PUT_SHARED = MessageType.PUT_SHARED
_PUT_MODIFIED = MessageType.PUT_MODIFIED
_DATA = MessageType.DATA
_INVALIDATE = MessageType.INVALIDATE
_INV_ACK = MessageType.INV_ACK
_FWD_GET = MessageType.FWD_GET
_GET_SHARED_BYTES = MESSAGE_BYTES_BY_TYPE[_GET_SHARED]
_GET_MODIFIED_BYTES = MESSAGE_BYTES_BY_TYPE[_GET_MODIFIED]
_PUT_SHARED_BYTES = MESSAGE_BYTES_BY_TYPE[_PUT_SHARED]
_PUT_MODIFIED_BYTES = MESSAGE_BYTES_BY_TYPE[_PUT_MODIFIED]
_DATA_BYTES = MESSAGE_BYTES_BY_TYPE[_DATA]
_INVALIDATE_BYTES = MESSAGE_BYTES_BY_TYPE[_INVALIDATE]
_INV_ACK_BYTES = MESSAGE_BYTES_BY_TYPE[_INV_ACK]
_FWD_GET_BYTES = MESSAGE_BYTES_BY_TYPE[_FWD_GET]


@dataclass(frozen=True)
class MemoryAccess:
    """One memory reference issued by a core.

    ``address`` is a byte address; the system converts it to a block
    address internally.  ``is_instruction`` selects the L1 instruction
    cache in the Shared-L2 configuration (ignored in Private-L2).
    """

    core: int
    address: int
    is_write: bool = False
    is_instruction: bool = False


#: Signature of a directory-slice factory: ``(num_tracked_caches, slice_id)``.
DirectoryFactory = Callable[[int, int], Directory]


class TiledCMP:
    """Trace-driven tiled CMP with a pluggable coherence directory."""

    def __init__(
        self,
        config: SystemConfig,
        directory_factory: DirectoryFactory,
        track_traffic: bool = True,
        page_mapper: Optional[PageMapper] = None,
        page_mapper_seed: int = 0,
        batch_kernel: Optional[str] = None,
    ) -> None:
        self._config = config
        self._track_traffic = track_traffic
        self._offset_bits = config.tracked_cache_config.block_offset_bits
        # Virtual-to-physical translation (OS first-touch allocation): see
        # repro.coherence.paging for why this matters to directory conflicts.
        self._page_mapper = page_mapper or PageMapper(
            page_bytes=config.page_bytes, seed=page_mapper_seed
        )
        num_cores = config.num_cores

        # Tracked private caches: index == tracked cache id.
        self._tracked: List[SetAssociativeCache] = []
        if config.tracked_level is CacheLevel.L1:
            for core in range(num_cores):
                self._tracked.append(
                    SetAssociativeCache(config.l1_config, name=f"l1i-{core}")
                )
                self._tracked.append(
                    SetAssociativeCache(config.l1_config, name=f"l1d-{core}")
                )
            # The shared L2 is modelled for hit-rate statistics only.
            self._l2_banks: Optional[List[SetAssociativeCache]] = [
                SetAssociativeCache(config.l2_config, name=f"l2-bank-{core}")
                for core in range(num_cores)
            ]
        else:
            for core in range(num_cores):
                self._tracked.append(
                    SetAssociativeCache(config.l2_config, name=f"l2-{core}")
                )
            self._l2_banks = None

        num_tracked = len(self._tracked)
        self._directories: List[Directory] = [
            directory_factory(num_tracked, slice_id)
            for slice_id in range(config.num_directory_slices)
        ]
        self._mesh = MeshInterconnect(num_cores)
        self._traffic = TrafficStats()
        self._accesses = 0
        # Hot-path state hoisted out of the per-access methods: the tracked
        # level as a plain bool, the slice count, and an all-pairs hop table
        # (cores² entries) so traffic recording is two list indexings.
        self._l1_tracked = config.tracked_level is CacheLevel.L1
        self._num_cores = num_cores
        self._num_slices = len(self._directories)
        self._hop_table: List[List[int]] = [
            [self._mesh.hops(source, destination) for destination in range(num_cores)]
            for source in range(num_cores)
        ]
        self._core_of: List[int] = [
            self.core_of_cache(cache_id) for cache_id in range(num_tracked)
        ]
        self._hop_matrix = np.asarray(self._hop_table, dtype=np.int64)
        # Vectorized-drain support decision, resolved lazily on the first
        # drained chunk (see _drain_vector_config): None = unresolved,
        # False = unsupported, else the shared-or-per-slice hash family
        # marker tuple.
        self._drain_vector_support: object = None
        # Whole-chunk kernel selection (see DEFAULT_BATCH_KERNEL).  The
        # vector kernel needs inline-LRU recency in every cache it stamps;
        # a custom replacement policy silently drops back to the scalar
        # loop, which goes through the policy's per-access hooks.
        kernel = batch_kernel if batch_kernel is not None else DEFAULT_BATCH_KERNEL
        if kernel not in ("auto", "vector", "scalar"):
            raise ValueError(f"unknown batch kernel {kernel!r}")
        self._batch_kernel = kernel
        self._kernel_lru_ok = all(cache.lru_inline for cache in self._tracked) and (
            self._l2_banks is None
            or all(bank.lru_inline for bank in self._l2_banks)
        )
        self._snapshot_frames = num_tracked * self._tracked[0].num_frames

    # -- geometry / accessors ------------------------------------------------
    @property
    def config(self) -> SystemConfig:
        return self._config

    @property
    def directories(self) -> Sequence[Directory]:
        return tuple(self._directories)

    @property
    def tracked_caches(self) -> Sequence[SetAssociativeCache]:
        return tuple(self._tracked)

    @property
    def l2_banks(self) -> Optional[Sequence[SetAssociativeCache]]:
        return tuple(self._l2_banks) if self._l2_banks is not None else None

    @property
    def traffic(self) -> TrafficStats:
        return self._traffic

    @property
    def accesses_processed(self) -> int:
        return self._accesses

    @property
    def page_mapper(self) -> PageMapper:
        return self._page_mapper

    def block_address(self, byte_address: int) -> int:
        """Physical block address of a virtual byte address."""
        return self._page_mapper.translate(byte_address) >> self._offset_bits

    def home_slice(self, block: int) -> int:
        """Home tile of a block (static address interleaving).

        NOTE: ``access_scalar``, ``access_batch`` and ``_evict_notify``
        compute this rule (and :meth:`slice_local_address`) directly
        against ``self._num_slices``; change the interleaving everywhere
        together.
        """
        return block % self._num_slices

    def slice_local_address(self, block: int) -> int:
        """Block address as seen by its home directory slice.

        The interleaving bits select the slice and are therefore constant
        for every block a slice sees; real hardware strips them before
        indexing the slice's tag store (otherwise only ``1/num_slices`` of
        the sets would ever be used).  Directories in this model operate
        on these slice-local addresses.
        """
        return block // self._num_slices

    def global_address(self, local_block: int, slice_id: int) -> int:
        """Inverse of :meth:`slice_local_address` for a given home slice."""
        return local_block * self._num_slices + slice_id

    def tracked_cache_id(self, core: int, is_instruction: bool) -> int:
        """Tracked-cache id for an access issued by ``core``."""
        if not 0 <= core < self._config.num_cores:
            raise IndexError(f"core {core} out of range")
        if self._config.tracked_level is CacheLevel.L1:
            return core * 2 + (0 if is_instruction else 1)
        return core

    def core_of_cache(self, cache_id: int) -> int:
        """Core (tile) that owns a tracked cache."""
        if self._config.tracked_level is CacheLevel.L1:
            return cache_id // 2
        return cache_id

    # -- statistics ------------------------------------------------------------
    def directory_stats(self) -> DirectoryStats:
        """Statistics merged across all directory slices."""
        merged = DirectoryStats()
        for directory in self._directories:
            merged = merged.merge(directory.stats)
        return merged

    def sample_occupancy(self) -> float:
        """Sample every slice's occupancy; returns the mean of this sample."""
        values = [directory.sample_occupancy() for directory in self._directories]
        return sum(values) / len(values)

    # -- timeline hooks (repro.obs.timeline) ----------------------------------
    # Read-only counter probes for interval sampling.  None of these mutate
    # statistics — ``bank_occupancies`` deliberately reads ``occupancy()``
    # rather than ``sample_occupancy()`` — so taking a timeline sample never
    # changes what the run reports.
    def timeline_counters(self) -> "dict":
        """Scalar channel values for one timeline sample."""
        stats = self.directory_stats()
        traffic = self._traffic
        hits = 0
        accesses = 0
        for cache in self._tracked:
            hits += cache.stats.hits
            accesses += cache.stats.accesses
        l2_hits = 0
        l2_accesses = 0
        if self._l2_banks is not None:
            for bank in self._l2_banks:
                l2_hits += bank.stats.hits
                l2_accesses += bank.stats.accesses
        return {
            "forced_invalidations": stats.forced_invalidations,
            "insertions": stats.insertions,
            "insertion_attempts": stats.insertion_attempts,
            "stash_occupancy": sum(
                directory.stash_occupancy for directory in self._directories
            ),
            "tracked_hit_rate": hits / accesses if accesses else 0.0,
            "shared_l2_hit_rate": l2_hits / l2_accesses if l2_accesses else 0.0,
            "total_messages": traffic.total_messages,
            "traffic_bytes": traffic.bytes_transferred,
            "traffic_hops": traffic.hops,
        }

    def bank_occupancies(self) -> "list":
        """Per-slice occupancy fractions, in slice order (non-mutating)."""
        return [directory.occupancy() for directory in self._directories]

    def attempt_chain_bins(self, bins: int) -> "list":
        """Insertion-attempt histogram folded into chain-length bins.

        Bin ``i`` counts insertions that took ``i + 1`` attempts; the last
        bin absorbs everything at or beyond ``bins`` attempts (Figure 11's
        "5+" bucket for the default five bins).
        """
        counts = [0] * bins
        for directory in self._directories:
            for attempts, count in directory.stats.attempt_histogram.items():
                counts[min(max(int(attempts), 1), bins) - 1] += count
        return counts

    def reset_stats(self) -> None:
        """Clear directory, cache and traffic statistics (end of warm-up)."""
        for directory in self._directories:
            directory.reset_stats()
        for cache in self._tracked:
            cache.reset_stats()
        if self._l2_banks is not None:
            for bank in self._l2_banks:
                bank.reset_stats()
        self._traffic = TrafficStats()

    # -- the access path ---------------------------------------------------------
    def access(self, access: MemoryAccess) -> None:
        """Execute one memory access through the coherence protocol."""
        core = access.core
        if not 0 <= core < self._num_cores:
            raise IndexError(f"core {core} out of range")
        self.access_scalar(core, access.address, access.is_write, access.is_instruction)

    def access_scalar(
        self, core: int, address: int, is_write: bool, is_instruction: bool
    ) -> None:
        """Execute one access given as plain scalars.

        Behaviourally identical to :meth:`access`, except that ``core`` is
        trusted: range validation lives in :meth:`access` and in the
        chunk-level validation of :meth:`access_batch`, not here.
        """
        self._accesses += 1
        block = self._page_mapper.translate(address) >> self._offset_bits
        if self._l1_tracked:
            cache_id = core * 2 + (0 if is_instruction else 1)
        else:
            cache_id = core
        num_slices = self._num_slices
        self._access_block(
            block, block // num_slices, block % num_slices, cache_id, is_write
        )

    def access_batch(
        self,
        cores: Sequence[int],
        addresses: Sequence[int],
        writes: Sequence[bool],
        instrs: Sequence[bool],
        start: int = 0,
        stop: Optional[int] = None,
    ) -> int:
        """Execute the ``[start, stop)`` slice of a trace chunk; returns its size.

        The chunk fields may be numpy arrays (trace replays, vectorised
        generators) or plain sequences.  Address math runs vectorised over
        the whole slice — page translation, block/home/local derivation and
        tracked-cache selection — so the per-access loop does none; the
        ``0 <= core < num_cores`` check runs once per slice instead of per
        access.  Equivalent to calling :meth:`access_scalar` per element.

        Execution then goes through one of two kernels (see
        ``DEFAULT_BATCH_KERNEL`` and DESIGN.md "The hot path"):

        * **vector** — the whole-chunk kernel: every tracked-cache lookup
          in the slice is resolved at once against the flat tag arrays,
          conflict-free hits are retired with vectorised stamp writes and
          bulk counter updates, and only the sparse remainder (misses,
          upgrades, and accesses dragged into their conflict groups) drains
          through the scalar MESI protocol in trace order.
        * **scalar** — the per-access loop with the run-length fold.

        Both kernels are bit-identical in every statistic and in all
        directory/cache state.
        """
        cores = np.asarray(cores)
        if stop is None:
            stop = len(cores)
        count = stop - start
        if count <= 0:
            return 0
        seg_cores = cores[start:stop]
        # Chunk-level validation, hoisted out of the per-access path: a
        # malformed trace fails before any of the slice executes.
        if int(seg_cores.min()) < 0 or int(seg_cores.max()) >= self._num_cores:
            raise IndexError(
                f"core out of range [0, {self._num_cores}) in trace chunk"
            )
        with _TRACER.span("translate"):
            block_array, locals_array, homes_array = self._page_mapper.translate_blocks(
                np.asarray(addresses)[start:stop],
                self._offset_bits,
                self._num_slices,
            )
            if self._l1_tracked:
                instr_segment = np.asarray(instrs)[start:stop]
                cache_id_array = (
                    seg_cores * 2 + np.where(instr_segment, 0, 1)
                ).astype(np.int64)
            else:
                cache_id_array = seg_cores.astype(np.int64)
            write_array = np.asarray(writes)[start:stop].astype(bool)
        self._accesses += count
        _BATCH_CHUNKS.inc()
        _BATCH_ACCESSES.add(count)
        kernel = self._batch_kernel
        if kernel != "scalar" and self._kernel_lru_ok and (
            kernel == "vector"
            or self._snapshot_frames <= _AUTO_SNAPSHOT_RATIO * count
        ):
            self._access_batch_vector(
                block_array, locals_array, homes_array,
                cache_id_array, write_array, count,
            )
        else:
            self._access_batch_scalar(
                block_array.tolist(), locals_array.tolist(),
                homes_array.tolist(), cache_id_array.tolist(),
                write_array.tolist(), count,
            )
        return count

    def _access_batch_scalar(
        self,
        blocks: List[int],
        locals_: List[int],
        homes: List[int],
        cache_ids: List[int],
        write_flags: List[bool],
        count: int,
    ) -> None:
        """The per-access chunk loop with the run-length fold.

        Used when the vector kernel is disabled, when a custom replacement
        policy needs its per-access hooks, or when the chunk is too small
        to amortise the kernel's tag-array snapshot (``auto`` mode).
        """
        tracked = self._tracked
        banks = self._l2_banks
        directories = self._directories
        # Pre-bound per-cache touch methods: one bind per cache per batch
        # instead of one attribute bind per access.
        touch_code_of = [cache.touch_code for cache in tracked]
        folded = 0
        with _TRACER.span("batch_kernel"):
            i = 0
            while i < count:
                block = blocks[i]
                cache_id = cache_ids[i]
                is_write = write_flags[i]
                state = touch_code_of[cache_id](block, is_write)
                if state >= 0:
                    if is_write and state != STATE_MODIFIED:
                        self._write_hit_upgrade(
                            block, locals_[i], homes[i], cache_id,
                            tracked[cache_id], state
                        )
                else:
                    home = homes[i]
                    if banks is not None:
                        # Inlined touch_or_fill: one call on a bank hit, two on
                        # a bank miss.
                        bank = banks[home]
                        if bank.touch_code(block, is_write) < 0:
                            bank.fill_miss_code(block)
                    if is_write:
                        self._handle_write_miss(
                            block, locals_[i], home, cache_id, tracked[cache_id],
                            directories[home],
                        )
                    else:
                        self._handle_read_miss(
                            block, locals_[i], home, cache_id, tracked[cache_id],
                            directories[home],
                        )
                i += 1
                if i < count and blocks[i] == block and cache_ids[i] == cache_id:
                    # Run-length fast path: the next access targets the same
                    # block from the same cache.  Repeats that cannot change
                    # any state — reads while resident, or any access while
                    # MODIFIED (M implies dirty) — fold into counter bumps.
                    cache = tracked[cache_id]
                    state = cache.state_code_of(block)
                    j = i
                    if state == STATE_MODIFIED:
                        while (
                            j < count
                            and blocks[j] == block
                            and cache_ids[j] == cache_id
                        ):
                            j += 1
                    elif state > 0:
                        while (
                            j < count
                            and blocks[j] == block
                            and cache_ids[j] == cache_id
                            and not write_flags[j]
                        ):
                            j += 1
                    if j > i:
                        cache.touch_repeats(block, j - i)
                        folded += j - i
                        i = j
        _BATCH_FOLDED.add(folded)
        _BATCH_SCALAR.add(count - folded)

    def _access_batch_vector(
        self,
        blocks_a: np.ndarray,
        locals_a: np.ndarray,
        homes_a: np.ndarray,
        caches_a: np.ndarray,
        writes_a: np.ndarray,
        count: int,
    ) -> None:
        """Whole-chunk kernel: vectorised hit retirement + scalar miss drain.

        Three phases, bit-identical to running :meth:`access_scalar` per
        element (the property suites in tests/coherence assert this on
        adversarial chunks):

        1. **Classify.**  Every access is resolved against a snapshot of
           the flat tag/state arrays taken at chunk entry: vectorised
           set-index/tag derivation, a per-way tag compare across the whole
           chunk, and a state-code gather.  Read hits and write hits in M
           are *kernel-eligible* (no protocol side effects); write upgrades
           in S/E and misses must drain.
        2. **Partition into conflict groups.**  A draining access has
           side effects the snapshot cannot see, so eligibility propagates
           restrictions: every access to a *block* that drains anywhere in
           the chunk also drains (cross-cache invalidations/downgrades
           could change its hit outcome), and every hit in a (cache, set)
           that contains a draining access drains too (fills read and
           reorder that set's LRU stamps).  One propagation round is a
           fixpoint: demoted hits add no new blocks with side effects and
           no new sets with fills.
        3. **Retire + drain.**  Surviving hits are retired in bulk with
           *exact* precomputed stamps — every access advances its cache's
           clock by exactly one, so stamp(i) = clock-at-entry + rank of i
           among that cache's chunk accesses, independent of interleaving.
           The remainder drains through the scalar MESI protocol in trace
           order (:meth:`_drain_batch`).  Forced invalidations are the one
           event the partition cannot predict (cut-off cuckoo walks victimise
           arbitrary blocks); the drain detects retired-but-now-stale kernel
           hits, rolls them back exactly and re-injects them as scalar
           accesses.
        """
        tracked = self._tracked
        num_tracked = len(tracked)
        first = tracked[0]
        num_sets = first.num_sets
        num_ways = first.num_ways
        frames_per = num_sets * num_ways

        with _TRACER.span("hit_kernel"):
            sets_a = blocks_a % num_sets
            frame_base = caches_a * frames_per + sets_a * num_ways
            flat_tags = np.array(
                [cache._tags for cache in tracked], dtype=np.int64
            ).ravel()
            flat_states = np.array(
                [cache._states for cache in tracked], dtype=np.int64
            ).ravel()
            frames = np.full(count, -1, dtype=np.int64)
            for way in range(num_ways):
                candidate = frame_base + way
                np.copyto(frames, candidate, where=(flat_tags[candidate] == blocks_a))
            found = frames >= 0
            state_snap = np.where(found, flat_states[np.where(found, frames, 0)], 0)
            eligible = found & (~writes_a | (state_snap == STATE_MODIFIED))
            drain_mask = ~eligible
            if drain_mask.any() and eligible.any():
                # Membership via scatter/gather tables: both key spaces
                # are dense integer ranges, so a boolean table beats the
                # sort-based unique/isin pair.  Block ids are only
                # bounded by the address space, so huge outliers fall
                # back to isin.
                max_block = int(blocks_a.max())
                if max_block < (1 << 22):
                    block_table = np.zeros(max_block + 1, dtype=bool)
                    block_table[blocks_a[drain_mask]] = True
                    drain_mask |= block_table[blocks_a]
                else:
                    conflict_blocks = np.unique(blocks_a[drain_mask])
                    drain_mask |= np.isin(blocks_a, conflict_blocks)
                set_keys = caches_a * num_sets + sets_a
                set_table = np.zeros(num_tracked * num_sets, dtype=bool)
                set_table[set_keys[drain_mask]] = True
                drain_mask |= set_table[set_keys]

            # Exact per-access stamps (phase 3 above), computed for the
            # whole chunk: group accesses by cache and rank within group.
            clock0 = np.fromiter(
                (cache._clock for cache in tracked),
                dtype=np.int64,
                count=num_tracked,
            )
            cache_counts = np.bincount(caches_a, minlength=num_tracked)
            order = np.argsort(caches_a, kind="stable")
            sorted_caches = caches_a[order]
            group_starts = np.concatenate(([0], np.cumsum(cache_counts)[:-1]))
            ranks = np.arange(count, dtype=np.int64) - np.repeat(
                group_starts, cache_counts
            )
            stamps_a = np.empty(count, dtype=np.int64)
            stamps_a[order] = clock0[sorted_caches] + ranks + 1

            kernel_idx = np.flatnonzero(~drain_mask)
            kernel_count = int(kernel_idx.size)
            if kernel_count:
                kern_cache = caches_a[kernel_idx]
                kern_frame = frames[kernel_idx] - kern_cache * frames_per
                kern_stamp = stamps_a[kernel_idx]
                kern_old = np.empty(kernel_count, dtype=np.int64)
                for cache_id in np.unique(kern_cache).tolist():
                    member = kern_cache == cache_id
                    kern_old[member] = tracked[cache_id].touch_batch(
                        kern_frame[member].tolist(), kern_stamp[member].tolist()
                    )
                kernel_state: Optional[Tuple[np.ndarray, ...]] = (
                    kernel_idx,
                    kern_cache,
                    kern_frame,
                    blocks_a[kernel_idx],
                    sets_a[kernel_idx],
                    writes_a[kernel_idx],
                    kern_stamp,
                    kern_old,
                    np.ones(kernel_count, dtype=bool),
                )
            else:
                kernel_state = None
        _BATCH_KERNEL_HITS.add(kernel_count)

        drain_idx = np.flatnonzero(drain_mask)
        drained = int(drain_idx.size)
        _BATCH_DRAINED.add(drained)
        if drained:
            # Drain pipeline selection: the vectorized drain needs the
            # inlined-directory fast path (every slice a plain Cuckoo
            # directory with full-bit-vector sharers) and enough drained
            # accesses to amortise its pre-pass; anything else — sparse /
            # stash / rich-sharer organizations, tiny drains — takes the
            # scalar fallback.  Both emit their own span so --profile
            # shows where drain time goes.
            vector_config = (
                self._drain_vector_config()
                if drained >= _DRAIN_VECTOR_MIN
                else None
            )
            if vector_config is not None:
                with _TRACER.span("drain_vector"):
                    self._drain_batch_vector(
                        drain_idx, blocks_a, locals_a, homes_a, caches_a,
                        writes_a, sets_a, stamps_a, kernel_state,
                        vector_config,
                    )
            else:
                with _TRACER.span("drain_scalar"):
                    self._drain_batch(
                        drain_idx, blocks_a, locals_a, homes_a, caches_a,
                        writes_a, sets_a, stamps_a, kernel_state,
                    )
        # Settle the per-cache clocks once for the whole chunk (stamps were
        # written as precomputed values, never via clock increments).
        counts_list = cache_counts.tolist()
        for cache_id in range(num_tracked):
            if counts_list[cache_id]:
                tracked[cache_id].advance_clock(counts_list[cache_id])

    def _drain_vector_config(self) -> Optional[tuple]:
        """Support decision for the vectorized drain, resolved once.

        Returns ``None`` when ``DEFAULT_DRAIN_PIPELINE`` is ``"scalar"``
        or any slice lacks the inlined-directory drain handles
        (non-cuckoo organizations, stash variants, rich sharer
        encodings), else a one-element tuple holding the hash family
        shared by every slice — or ``None`` inside the tuple when the
        slices hash differently and the pre-pass must group by home.
        The directories never change after construction, so the decision
        is cached; the per-chunk state (stats objects, table arrays) is
        re-fetched from ``drain_handles`` on every drained chunk.
        """
        support = self._drain_vector_support
        if support is None:
            support = False
            supported = DEFAULT_DRAIN_PIPELINE != "scalar"
            for directory in self._directories:
                getter = getattr(directory, "drain_handles", None)
                if getter is None or getter() is None:
                    supported = False
                    break
            if supported:
                families = [
                    directory.table.hash_family
                    for directory in self._directories
                ]
                keys = [family.batch_key() for family in families]
                shared = (
                    families[0]
                    if keys[0] is not None
                    and all(key == keys[0] for key in keys)
                    else None
                )
                support = (shared,)
            self._drain_vector_support = support
        return support or None

    def _drain_batch(
        self,
        drain_idx: np.ndarray,
        blocks_a: np.ndarray,
        locals_a: np.ndarray,
        homes_a: np.ndarray,
        caches_a: np.ndarray,
        writes_a: np.ndarray,
        sets_a: np.ndarray,
        stamps_a: np.ndarray,
        kernel_state: Optional[Tuple[np.ndarray, ...]],
    ) -> None:
        """Replay the chunk's conflicted accesses through the MESI protocol.

        This is the scalar half of the whole-chunk kernel: the protocol
        of :meth:`_access_block` and its handlers, inlined over the
        caches' flat arrays with the chunk's precomputed stamps (clock
        bumps happen once per chunk in the caller).  Statistics accumulate
        in chunk-local counters and flush once at the end.

        Two hazards connect the drain back to the already-retired kernel
        hits, both rare and both handled by *rollback + re-injection*
        (undo the retired stamp/counter exactly, then splice the access
        into the worklist at its trace position for scalar replay):

        * a **forced invalidation** (cut-off directory insertion walk)
          victimises an arbitrary block, possibly one with retired kernel
          hits at later trace positions;
        * a **re-injected access that fills** lands in a set the kernel
          already stamped "ahead of time" — its victim selection must see
          recency as of its own trace position, so later retired hits in
          that (cache, set) are rolled back (and re-injected) first.

        Every other interaction is excluded by the conflict-group
        partition (see :meth:`_access_batch_vector`).
        """
        # One worklist entry per drained access, ordered by trace position
        # (the unique first element, so re-injection can bisect on it):
        # (pos, block, local, home, cache, write, set, stamp, reinjected).
        count = len(drain_idx)
        _DRAIN_SCALAR.add(count)
        work = list(
            zip(
                drain_idx.tolist(),
                blocks_a[drain_idx].tolist(),
                locals_a[drain_idx].tolist(),
                homes_a[drain_idx].tolist(),
                caches_a[drain_idx].tolist(),
                writes_a[drain_idx].tolist(),
                sets_a[drain_idx].tolist(),
                stamps_a[drain_idx].tolist(),
                (False,) * count,
            )
        )

        tracked = self._tracked
        num_tracked = len(tracked)
        num_ways = tracked[0].num_ways
        num_slices = self._num_slices
        directories = self._directories
        core_of = self._core_of
        hop_table = self._hop_table
        track = self._track_traffic
        traffic = self._traffic
        messages = traffic.messages
        hops_acc = 0
        bytes_acc = 0
        locations = [cache._location for cache in tracked]
        tags_of = [cache._tags for cache in tracked]
        states_of = [cache._states for cache in tracked]
        dirty_of = [cache._dirty for cache in tracked]
        stamps_of = [cache._stamps for cache in tracked]
        counts_of = [cache._set_counts for cache in tracked]
        # One-subscript bundle per cache for the per-access unpack.
        cache_arrs = list(
            zip(locations, tags_of, states_of, dirty_of, stamps_of, counts_of)
        )
        hit_delta = [0] * num_tracked
        miss_delta = [0] * num_tracked
        evict_delta = [0] * num_tracked
        dirty_evict_delta = [0] * num_tracked

        banks = self._l2_banks
        if banks is not None:
            num_banks = len(banks)
            bank_sets = banks[0].num_sets
            bank_ways = banks[0].num_ways
            bank_location = [bank._location for bank in banks]
            bank_tags = [bank._tags for bank in banks]
            bank_states = [bank._states for bank in banks]
            bank_dirty = [bank._dirty for bank in banks]
            bank_stamps = [bank._stamps for bank in banks]
            bank_counts = [bank._set_counts for bank in banks]
            bank_arrs = list(
                zip(
                    bank_location, bank_tags, bank_states,
                    bank_dirty, bank_stamps, bank_counts,
                )
            )
            bank_clock = [bank.clock for bank in banks]
            bank_hit_delta = [0] * num_banks
            bank_miss_delta = [0] * num_banks
            bank_evict_delta = [0] * num_banks
            bank_dirty_evict_delta = [0] * num_banks

        # Inlined-directory fast path: when every slice is a plain Cuckoo
        # directory with full-bit-vector sharers, the drain manipulates the
        # cuckoo tables' locator/way arrays and the sharer masks directly
        # (see CuckooDirectory.drain_handles) and flushes statistics once
        # per chunk.  Any other organization keeps the method-call path.
        num_homes = len(directories)
        bundles: Optional[list] = []
        for directory in directories:
            getter = getattr(directory, "drain_handles", None)
            bundle = getter() if getter is not None else None
            if bundle is None:
                bundles = None
                break
            bundles.append(bundle)
        fast = bundles is not None
        if fast:
            first_dir = directories[0]
            dir_lookup_bits = first_dir._lookup_tag_bits
            dir_payload_bits = first_dir._payload_bits
            dir_entry_bits = first_dir._entry_bits
            dir_caches = first_dir._num_caches
            d_table = [b[0] for b in bundles]
            d_loc = [b[1] for b in bundles]
            d_keys = [b[2] for b in bundles]
            d_val = [b[3] for b in bundles]
            d_wo = [b[4] for b in bundles]
            d_pool = [b[5] for b in bundles]
            d_stats = [b[6] for b in bundles]
            d_ic = [table._indices_cache for table in d_table]
            # Chunk-local directory counters, one per slice, flushed at the
            # end: lookups / hits, single-attempt insertions, sharer
            # additions / removals, entry removals, invalidate-all
            # operations, and table-size delta.  Misses and the bit
            # read/write totals are linear in these (misses = lookups −
            # hits; every lookup reads the way tags, every hit reads and
            # every sharer add/remove writes one payload, every
            # single-attempt insertion writes one entry), so they are
            # derived at flush instead of accumulated per operation; only
            # a displacement walk writes its entry bits directly.
            a_lk = [0] * num_homes
            a_lh = [0] * num_homes
            a_i1 = [0] * num_homes
            a_sa = [0] * num_homes
            a_sr = [0] * num_homes
            a_er = [0] * num_homes
            a_io = [0] * num_homes
            a_sz = [0] * num_homes
        # Chunk-local message counters (flushed into traffic.messages once).
        n_getS = n_getM = n_data = n_inv = n_ack = 0
        n_putM = n_putS = n_fwd = 0

        if kernel_state is not None:
            (
                kern_pos, kern_cache, kern_frame, kern_block, kern_set,
                kern_write, kern_stamp, kern_old, kern_alive,
            ) = kernel_state
        else:
            kern_alive = None
        index = 0
        pos = 0
        rollback_total = 0

        def rollback(mask: np.ndarray) -> None:
            # Undo retired kernel hits made stale by an unpredictable event
            # and re-inject them into the worklist for in-order replay.
            nonlocal rollback_total
            for j in np.flatnonzero(mask).tolist():
                rollback_total += 1
                kern_alive[j] = False
                r_cache = int(kern_cache[j])
                r_frame = int(kern_frame[j])
                r_block = int(kern_block[j])
                r_pos = int(kern_pos[j])
                hit_delta[r_cache] -= 1
                # Restore the frame's stamp to its value as of the current
                # drain position: the newest still-retired stamp, or the
                # pre-chunk stamp captured at retirement.
                siblings = (
                    kern_alive & (kern_cache == r_cache) & (kern_frame == r_frame)
                )
                if siblings.any():
                    stamps_of[r_cache][r_frame] = int(kern_stamp[siblings].max())
                else:
                    family = np.flatnonzero(
                        (kern_cache == r_cache) & (kern_frame == r_frame)
                    )
                    earliest = family[np.argmin(kern_pos[family])]
                    stamps_of[r_cache][r_frame] = int(kern_old[earliest])
                insert_at = bisect_right(work, (r_pos,), index + 1)
                work.insert(
                    insert_at,
                    (
                        r_pos,
                        r_block,
                        r_block // num_slices,
                        r_block % num_slices,
                        r_cache,
                        bool(kern_write[j]),
                        int(kern_set[j]),
                        int(kern_stamp[j]),
                        True,
                    ),
                )

        record = self._record

        def apply_forced(
            invalidations: Sequence[Invalidation], victim_home: int
        ) -> None:
            # Same semantics as _apply_forced_invalidations, plus the
            # kernel-hit rollback scan per victimised (cache, block).
            for invalidation in invalidations:
                victim_block = invalidation.address * num_slices + victim_home
                for sharer in invalidation.caches:
                    record(_INVALIDATE, victim_home, core_of[sharer])
                    if kern_alive is not None:
                        mask = (
                            kern_alive
                            & (kern_cache == sharer)
                            & (kern_block == victim_block)
                            & (kern_pos > pos)
                        )
                        if mask.any():
                            rollback(mask)
                    tracked[sharer].invalidate(victim_block)
                    record(_INV_ACK, core_of[sharer], victim_home)

        def insert_new(home: int, local_addr: int, mask: int) -> None:
            # Inlined CuckooDirectory._insert_new_entry: pooled sharer set,
            # vacant-candidate placement without the insert_absent call.
            # The displacement walk (and its forced-invalidation tail)
            # stays a call — it is the rare case by construction.
            pool = d_pool[home]
            if pool:
                sharer_set = pool.pop()
            else:
                sharer_set = FullBitVector(dir_caches)
            sharer_set._mask = mask
            table = d_table[home]
            indices = d_ic[home].get(local_addr)
            if indices is None:
                indices = table._indices_of(local_addr)
            keys_h = d_keys[home]
            for way in d_wo[home][table._start_way]:
                idx = indices[way]
                if keys_h[way][idx] == -1:
                    keys_h[way][idx] = local_addr
                    d_val[home][way][idx] = sharer_set
                    d_loc[home][local_addr] = (way, idx)
                    table._start_way = way
                    a_sz[home] += 1
                    a_i1[home] += 1
                    return
            insert_walk(home, table, local_addr, sharer_set, indices)

        def insert_walk(
            home: int, table, local_addr: int, sharer_set, indices
        ) -> None:
            # Displacement walk (no vacant candidate): insert_absent plus
            # direct stats — multi-attempt insertions are too rare for the
            # chunk-local accumulators to matter, and the forced-
            # invalidation tail must see the stats up to date anyway.
            result = table.insert_absent(local_addr, sharer_set, indices)
            stats = d_stats[home]
            attempts = result.attempts
            stats.insertions += 1
            stats.insertion_attempts += attempts
            stats.attempt_histogram[attempts] += 1
            stats.bits_written += attempts * dir_entry_bits
            if result.evicted:
                invalidation = Invalidation(
                    address=result.evicted_key,
                    caches=result.evicted_value.sharers(),
                )
                stats.forced_invalidations += 1
                stats.forced_invalidation_messages += invalidation.num_messages
                apply_forced((invalidation,), home)

        def acquire_excl(
            local_addr: int, home: int, block: int, cache_id: int,
            reinjected: bool,
        ) -> None:
            # Inlined CuckooDirectory.acquire_exclusive plus the drain's
            # per-invalidated-sharer traffic/rollback handling.
            nonlocal hops_acc, bytes_acc, n_inv, n_ack
            a_lk[home] += 1
            wbit = 1 << cache_id
            loc = d_loc[home].get(local_addr)
            if loc is None:
                insert_new(home, local_addr, wbit)
                return
            a_lh[home] += 1
            way, idx = loc
            sharer_set = d_val[home][way][idx]
            prior = sharer_set._mask
            a_sa[home] += 1
            others = prior & ~wbit
            if not others:
                sharer_set._mask = prior | wbit
                return
            sharer_set._mask = wbit
            a_io[home] += 1
            a_sr[home] += bin(others).count("1")
            while others:
                low = others & -others
                others -= low
                sharer = low.bit_length() - 1
                if track:
                    sharer_core = core_of[sharer]
                    n_inv += 1
                    hops_acc += hop_table[home][sharer_core]
                    bytes_acc += _INVALIDATE_BYTES
                    n_ack += 1
                    hops_acc += hop_table[sharer_core][home]
                    bytes_acc += _INV_ACK_BYTES
                if reinjected and kern_alive is not None:
                    stale = (
                        kern_alive
                        & (kern_cache == sharer)
                        & (kern_block == block)
                        & (kern_pos > pos)
                    )
                    if stale.any():
                        rollback(stale)
                tracked[sharer].invalidate(block)

        while index < len(work):
            (
                pos, block, local_addr, home, cache_id,
                is_write, set_index, stamp, reinjected,
            ) = work[index]
            location, tags, states, dirty, stamps, counts = cache_arrs[cache_id]
            frame = location.get(block)
            if frame is not None:
                # Hit: stamp recency, then any write-upgrade protocol.
                hit_delta[cache_id] += 1
                stamps[frame] = stamp
                if is_write:
                    dirty[frame] = True
                    state = states[frame]
                    if state != STATE_MODIFIED:
                        if state == STATE_EXCLUSIVE:
                            # Silent E -> M upgrade; no directory traffic.
                            states[frame] = STATE_MODIFIED
                        else:
                            # S -> M: the home invalidates the other sharers.
                            core = core_of[cache_id]
                            if track:
                                n_getM += 1
                                hops_acc += hop_table[core][home]
                                bytes_acc += _GET_MODIFIED_BYTES
                            if fast:
                                acquire_excl(
                                    local_addr, home, block, cache_id,
                                    reinjected,
                                )
                            else:
                                result = directories[home].acquire_exclusive(
                                    local_addr, cache_id
                                )
                                for sharer in result.coherence_invalidations:
                                    if sharer == cache_id:
                                        continue
                                    sharer_core = core_of[sharer]
                                    if track:
                                        n_inv += 1
                                        hops_acc += hop_table[home][sharer_core]
                                        bytes_acc += _INVALIDATE_BYTES
                                        n_ack += 1
                                        hops_acc += hop_table[sharer_core][home]
                                        bytes_acc += _INV_ACK_BYTES
                                    if reinjected and kern_alive is not None:
                                        mask = (
                                            kern_alive
                                            & (kern_cache == sharer)
                                            & (kern_block == block)
                                            & (kern_pos > pos)
                                        )
                                        if mask.any():
                                            rollback(mask)
                                    tracked[sharer].invalidate(block)
                                if result.invalidations:
                                    apply_forced(result.invalidations, home)
                            states[frame] = STATE_MODIFIED
                index += 1
                continue

            # Miss: bank model, directory protocol, inline fill.
            miss_delta[cache_id] += 1
            if banks is not None:
                (
                    b_location, b_tags, b_states,
                    b_dirty, b_stamps, b_counts,
                ) = bank_arrs[home]
                b_clock = bank_clock[home] + 1
                bank_clock[home] = b_clock
                b_frame = b_location.get(block)
                if b_frame is not None:
                    bank_hit_delta[home] += 1
                    b_stamps[b_frame] = b_clock
                    if is_write:
                        b_dirty[b_frame] = True
                else:
                    bank_miss_delta[home] += 1
                    b_set = block % bank_sets
                    b_base = b_set * bank_ways
                    if b_counts[b_set] < bank_ways:
                        b_frame = b_tags.index(-1, b_base, b_base + bank_ways)
                        b_counts[b_set] += 1
                    else:
                        b_row = b_stamps[b_base : b_base + bank_ways]
                        b_frame = b_base + b_row.index(min(b_row))
                        bank_evict_delta[home] += 1
                        if b_dirty[b_frame]:
                            bank_dirty_evict_delta[home] += 1
                        del b_location[b_tags[b_frame]]
                    b_tags[b_frame] = block
                    b_states[b_frame] = STATE_SHARED
                    b_dirty[b_frame] = False
                    b_stamps[b_frame] = b_clock
                    b_location[block] = b_frame
            core = core_of[cache_id]
            hop_row = hop_table[core]
            if is_write:
                if track:
                    n_getM += 1
                    hops_acc += hop_row[home]
                    bytes_acc += _GET_MODIFIED_BYTES
                if fast:
                    acquire_excl(
                        local_addr, home, block, cache_id, reinjected
                    )
                else:
                    result = directories[home].acquire_exclusive(
                        local_addr, cache_id
                    )
                    for sharer in result.coherence_invalidations:
                        if sharer == cache_id:
                            continue
                        sharer_core = core_of[sharer]
                        if track:
                            n_inv += 1
                            hops_acc += hop_table[home][sharer_core]
                            bytes_acc += _INVALIDATE_BYTES
                            n_ack += 1
                            hops_acc += hop_table[sharer_core][home]
                            bytes_acc += _INV_ACK_BYTES
                        if reinjected and kern_alive is not None:
                            mask = (
                                kern_alive
                                & (kern_cache == sharer)
                                & (kern_block == block)
                                & (kern_pos > pos)
                            )
                            if mask.any():
                                rollback(mask)
                        tracked[sharer].invalidate(block)
                    if result.invalidations:
                        apply_forced(result.invalidations, home)
                new_state = STATE_MODIFIED
                fill_dirty = True
            else:
                if track:
                    n_getS += 1
                    hops_acc += hop_row[home]
                    bytes_acc += _GET_SHARED_BYTES
                if fast:
                    # Inlined CuckooDirectory.lookup_add plus the drain's
                    # M/E-owner downgrade scan over the prior-sharer mask.
                    a_lk[home] += 1
                    loc = d_loc[home].get(local_addr)
                    if loc is not None:
                        a_lh[home] += 1
                        way, idx = loc
                        sharer_set = d_val[home][way][idx]
                        prior = sharer_set._mask
                        wbit = 1 << cache_id
                        sharer_set._mask = prior | wbit
                        a_sa[home] += 1
                        remaining = prior & ~wbit
                        while remaining:
                            low = remaining & -remaining
                            remaining -= low
                            sharer = low.bit_length() - 1
                            owner_frame = locations[sharer].get(block)
                            if owner_frame is None:
                                continue
                            owner_states = states_of[sharer]
                            owner_state = owner_states[owner_frame]
                            if owner_state >= STATE_EXCLUSIVE:
                                if track:
                                    sharer_core = core_of[sharer]
                                    n_fwd += 1
                                    hops_acc += hop_table[home][sharer_core]
                                    bytes_acc += _FWD_GET_BYTES
                                    if owner_state == STATE_MODIFIED:
                                        n_putM += 1
                                        hops_acc += hop_table[sharer_core][home]
                                        bytes_acc += _PUT_MODIFIED_BYTES
                                owner_states[owner_frame] = STATE_SHARED
                        new_state = STATE_SHARED
                    else:
                        # Directory miss on a read: allocate the entry with
                        # this cache as the sole (Exclusive) sharer — the
                        # vacant-candidate placement of insert_new, inlined
                        # at the hottest insertion site.
                        pool = d_pool[home]
                        if pool:
                            sharer_set = pool.pop()
                        else:
                            sharer_set = FullBitVector(dir_caches)
                        sharer_set._mask = 1 << cache_id
                        table = d_table[home]
                        indices = d_ic[home].get(local_addr)
                        if indices is None:
                            indices = table._indices_of(local_addr)
                        keys_h = d_keys[home]
                        for way in d_wo[home][table._start_way]:
                            idx = indices[way]
                            if keys_h[way][idx] == -1:
                                keys_h[way][idx] = local_addr
                                d_val[home][way][idx] = sharer_set
                                d_loc[home][local_addr] = (way, idx)
                                table._start_way = way
                                a_sz[home] += 1
                                a_i1[home] += 1
                                break
                        else:
                            insert_walk(
                                home, table, local_addr, sharer_set, indices
                            )
                        new_state = STATE_EXCLUSIVE
                else:
                    entry_found, prior_sharers, result = directories[
                        home
                    ].lookup_add(local_addr, cache_id)
                    if entry_found:
                        # Downgrade an M/E owner among the prior sharers.
                        for sharer in prior_sharers:
                            if sharer == cache_id:
                                continue
                            owner_frame = locations[sharer].get(block)
                            if owner_frame is None:
                                continue
                            owner_states = states_of[sharer]
                            owner_state = owner_states[owner_frame]
                            if owner_state >= STATE_EXCLUSIVE:
                                if track:
                                    sharer_core = core_of[sharer]
                                    n_fwd += 1
                                    hops_acc += hop_table[home][sharer_core]
                                    bytes_acc += _FWD_GET_BYTES
                                    if owner_state == STATE_MODIFIED:
                                        n_putM += 1
                                        hops_acc += hop_table[sharer_core][home]
                                        bytes_acc += _PUT_MODIFIED_BYTES
                                owner_states[owner_frame] = STATE_SHARED
                        new_state = STATE_SHARED
                    else:
                        new_state = STATE_EXCLUSIVE
                    if result.invalidations:
                        apply_forced(result.invalidations, home)
                fill_dirty = False
            if track:
                n_data += 1
                hops_acc += hop_table[home][core]
                bytes_acc += _DATA_BYTES

            # Inline fill: the exact-stamp twin of fill_miss_code.
            if reinjected and kern_alive is not None:
                mask = (
                    kern_alive
                    & (kern_cache == cache_id)
                    & (kern_set == set_index)
                    & (kern_pos > pos)
                )
                if mask.any():
                    rollback(mask)
            base = set_index * num_ways
            if counts[set_index] < num_ways:
                frame = tags.index(-1, base, base + num_ways)
                counts[set_index] += 1
            else:
                if num_ways == 2:
                    frame = (
                        base
                        if stamps[base] <= stamps[base + 1]
                        else base + 1
                    )
                else:
                    row = stamps[base : base + num_ways]
                    frame = base + row.index(min(row))
                victim = tags[frame]
                victim_dirty = dirty[frame]
                evict_delta[cache_id] += 1
                if victim_dirty:
                    dirty_evict_delta[cache_id] += 1
                del location[victim]
                victim_home = victim % num_slices
                if track:
                    hops_acc += hop_row[victim_home]
                    if victim_dirty:
                        n_putM += 1
                        bytes_acc += _PUT_MODIFIED_BYTES
                    else:
                        n_putS += 1
                        bytes_acc += _PUT_SHARED_BYTES
                if fast:
                    # Inlined CuckooDirectory.remove_sharer (evict notify).
                    victim_local = victim // num_slices
                    loc = d_loc[victim_home].get(victim_local)
                    if loc is not None:
                        way, idx = loc
                        sharer_set = d_val[victim_home][way][idx]
                        remaining = sharer_set._mask & ~(1 << cache_id)
                        sharer_set._mask = remaining
                        a_sr[victim_home] += 1
                        if not remaining:
                            del d_loc[victim_home][victim_local]
                            d_keys[victim_home][way][idx] = -1
                            d_val[victim_home][way][idx] = None
                            a_sz[victim_home] -= 1
                            a_er[victim_home] += 1
                            d_pool[victim_home].append(sharer_set)
                else:
                    directories[victim_home].remove_sharer(
                        victim // num_slices, cache_id
                    )
            tags[frame] = block
            states[frame] = new_state
            dirty[frame] = fill_dirty
            stamps[frame] = stamp
            location[block] = frame
            index += 1

        # Flush the chunk-local counters.
        for cache_id in range(num_tracked):
            if hit_delta[cache_id] or miss_delta[cache_id] or evict_delta[cache_id]:
                stats = tracked[cache_id]._stats
                stats.hits += hit_delta[cache_id]
                stats.misses += miss_delta[cache_id]
                stats.evictions += evict_delta[cache_id]
                stats.dirty_evictions += dirty_evict_delta[cache_id]
        if banks is not None:
            for bank_id in range(num_banks):
                bank = banks[bank_id]
                bank._clock = bank_clock[bank_id]
                stats = bank._stats
                stats.hits += bank_hit_delta[bank_id]
                stats.misses += bank_miss_delta[bank_id]
                stats.evictions += bank_evict_delta[bank_id]
                stats.dirty_evictions += bank_dirty_evict_delta[bank_id]
        if fast:
            for home in range(num_homes):
                lk = a_lk[home]
                sr = a_sr[home]
                if lk or sr:
                    lh = a_lh[home]
                    sa = a_sa[home]
                    i1 = a_i1[home]
                    stats = d_stats[home]
                    stats.lookups += lk
                    stats.lookup_hits += lh
                    stats.lookup_misses += lk - lh
                    stats.sharer_additions += sa
                    stats.sharer_removals += sr
                    stats.entry_removals += a_er[home]
                    stats.invalidate_all_operations += a_io[home]
                    stats.bits_read += (
                        lk * dir_lookup_bits + lh * dir_payload_bits
                    )
                    stats.bits_written += (
                        (sa + sr) * dir_payload_bits + i1 * dir_entry_bits
                    )
                    if i1:
                        stats.insertions += i1
                        stats.insertion_attempts += i1
                        stats.attempt_histogram[1] += i1
                    if a_sz[home]:
                        d_table[home]._size += a_sz[home]
        if track:
            if n_getS:
                messages[_GET_SHARED] += n_getS
            if n_getM:
                messages[_GET_MODIFIED] += n_getM
            if n_data:
                messages[_DATA] += n_data
            if n_inv:
                messages[_INVALIDATE] += n_inv
            if n_ack:
                messages[_INV_ACK] += n_ack
            if n_putM:
                messages[_PUT_MODIFIED] += n_putM
            if n_putS:
                messages[_PUT_SHARED] += n_putS
            if n_fwd:
                messages[_FWD_GET] += n_fwd
            traffic.hops += hops_acc
            traffic.bytes_transferred += bytes_acc
        if rollback_total:
            _BATCH_ROLLBACKS.add(rollback_total)

    def _drain_batch_vector(
        self,
        drain_idx: np.ndarray,
        blocks_a: np.ndarray,
        locals_a: np.ndarray,
        homes_a: np.ndarray,
        caches_a: np.ndarray,
        writes_a: np.ndarray,
        sets_a: np.ndarray,
        stamps_a: np.ndarray,
        kernel_state: Optional[Tuple[np.ndarray, ...]],
        vector_config: tuple,
    ) -> None:
        """Vectorized drain pipeline (DESIGN.md "The batched miss drain").

        Bit-identical to :meth:`_drain_batch`, restructured around a
        numpy pre-pass so the per-access protocol loop touches no hash
        function, no hop table, no bank model and almost no traffic or
        statistics bookkeeping:

        * **Batch hashing.**  Every drained block's slice-local address is
          hashed across all directory ways in one vectorized call
          (``HashFamily.batch_indices``) — one call for the whole chunk
          when every slice shares a hash family, else one per home group.
          The insert path then reads precomputed candidate rows instead
          of probing the per-table indices cache.
        * **All-miss accounting.**  Traffic (request + response hops,
          message counts, bytes), per-home directory lookups and per-cache
          miss counts are computed vectorized under the assumption that
          every drained access misses — the common case by construction,
          since the kernel only demotes conflicted hits.  The hit branch
          then *corrects* the assumption (one subtraction per hit) instead
          of every miss paying per-access accounting.
        * **Bank decoupling.**  The shared-L2 bank model reads nothing
          from the protocol and feeds nothing back into it, so bank
          updates are recorded as ``(block, home, write)`` events in trace
          order and replayed in a dedicated pass after the protocol loop.

        Trace order is preserved throughout — conflicting accesses
        (same block, same (cache, set), same directory slot) simply
        execute in their original relative order, which makes the
        reordering-safety argument trivial — and the rollback +
        re-injection machinery for forced invalidations carries over
        unchanged: re-injected accesses are rare by construction and
        replay through the scalar ``process_one`` closure (full live
        accounting, live hashing and hop lookups) at their exact trace
        position.  Displacement walks, forced invalidations and write
        upgrades with remote sharers stay on the scalar helper paths by
        construction; stash variants and rich sharer encodings never
        reach this method (:meth:`_drain_vector_config`).
        """
        (shared_family,) = vector_config
        # Module-level protocol constants rebound as locals: the loop
        # below reads them on every access, and LOAD_FAST beats the
        # global lookup by enough to matter at this iteration count.
        state_m = STATE_MODIFIED
        state_e = STATE_EXCLUSIVE
        state_s = STATE_SHARED
        bitvec_cls = FullBitVector
        putm_bytes = _PUT_MODIFIED_BYTES
        puts_bytes = _PUT_SHARED_BYTES
        inv_bytes = _INVALIDATE_BYTES
        ack_bytes = _INV_ACK_BYTES
        fwd_bytes = _FWD_GET_BYTES
        getm_bytes = _GET_MODIFIED_BYTES
        gets_bytes = _GET_SHARED_BYTES
        data_bytes = _DATA_BYTES
        tracked = self._tracked
        num_tracked = len(tracked)
        num_ways = tracked[0].num_ways
        num_slices = self._num_slices
        directories = self._directories
        core_of = self._core_of
        hop_table = self._hop_table
        hop_rows = [hop_table[core] for core in core_of]
        track = self._track_traffic
        traffic = self._traffic
        messages = traffic.messages
        hops_acc = 0
        bytes_acc = 0
        locations = [cache._location for cache in tracked]
        tags_of = [cache._tags for cache in tracked]
        states_of = [cache._states for cache in tracked]
        dirty_of = [cache._dirty for cache in tracked]
        stamps_of = [cache._stamps for cache in tracked]
        counts_of = [cache._set_counts for cache in tracked]
        cache_arrs = list(
            zip(locations, tags_of, states_of, dirty_of, stamps_of, counts_of)
        )
        locations_get = [location.get for location in locations]
        hit_delta = [0] * num_tracked
        evict_delta = [0] * num_tracked
        dirty_evict_delta = [0] * num_tracked

        banks = self._l2_banks
        use_banks = banks is not None

        num_homes = len(directories)
        bundles = [directory.drain_handles() for directory in directories]
        first_dir = directories[0]
        dir_lookup_bits = first_dir._lookup_tag_bits
        dir_payload_bits = first_dir._payload_bits
        dir_entry_bits = first_dir._entry_bits
        dir_caches = first_dir._num_caches
        d_table = [b[0] for b in bundles]
        d_loc = [b[1] for b in bundles]
        d_keys = [b[2] for b in bundles]
        d_val = [b[3] for b in bundles]
        d_wo = [b[4] for b in bundles]
        d_pool = [b[5] for b in bundles]
        d_stats = [b[6] for b in bundles]
        d_ic = [table._indices_cache for table in d_table]
        ic_limit = _INDICES_CACHE_LIMIT
        d_loc_get = [locator.get for locator in d_loc]
        # Shadowed round-robin insertion cursor, written back at flush
        # (resynced after a displacement walk, which rotates it inside
        # the table).
        d_sw = [table._start_way for table in d_table]
        # Two counters are derived at flush instead of tracked in-loop:
        # sharer additions equal lookup hits (every drain path that finds
        # an entry adds a sharer bit), and the table-size delta equals
        # vacant-slot inserts minus entry removals (walks maintain
        # ``table._size`` themselves via ``insert_absent``).
        a_lh = [0] * num_homes
        a_i1 = [0] * num_homes
        a_sr = [0] * num_homes
        a_er = [0] * num_homes
        a_io = [0] * num_homes
        # Live traffic counters: only the unpredictable events (evictions,
        # invalidations, owner downgrades) and re-injected accesses add to
        # these in-loop; the all-miss baseline below covers the rest.
        n_getS = n_getM = n_data = n_inv = n_ack = 0
        n_putM = n_putS = n_fwd = 0
        # Per-class retirement counters (sim.drain.*): in-branch for the
        # cheap-to-count classes, derived at flush for the rest.
        n_rdh = n_walk = n_reinj = 0
        rh = cw = s_up = 0
        hops_corr = 0
        p1_hit = p1_up = p1_rm = p1_wm = 0

        # -- vectorized pre-pass -------------------------------------------
        count = int(drain_idx.size)
        d_local_a = locals_a[drain_idx]
        d_home_a = homes_a[drain_idx]
        d_cache_a = caches_a[drain_idx]
        d_write_a = writes_a[drain_idx]
        d_sets_a = sets_a[drain_idx]
        dp = drain_idx.tolist()
        db = blocks_a[drain_idx].tolist()
        dl = d_local_a.tolist()
        dh = d_home_a.tolist()
        dc = d_cache_a.tolist()
        dw = d_write_a.tolist()
        ds = d_sets_a.tolist()
        dbase = (d_sets_a * num_ways).tolist()
        dst = stamps_a[drain_idx].tolist()
        # (1) Batch-hash the drained slice-local addresses across all ways.
        if shared_family is not None:
            cand_rows: List = shared_family.batch_indices(d_local_a)
        else:
            cand_rows = [None] * count
            order = np.argsort(d_home_a, kind="stable")
            sorted_homes = d_home_a[order]
            boundaries = np.flatnonzero(np.diff(sorted_homes)) + 1
            for group in np.split(order, boundaries):
                home_g = int(d_home_a[group[0]])
                rows = directories[home_g].table.hash_family.batch_indices(
                    d_local_a[group]
                )
                for offset, member in enumerate(group.tolist()):
                    cand_rows[member] = rows[offset]
        # (2) Gather request/response hop counts for the whole chunk.
        hop_matrix = self._hop_matrix
        d_core_a = (d_cache_a >> 1) if self._l1_tracked else d_cache_a
        h_req_a = hop_matrix[d_core_a, d_home_a]
        h_rsp_a = hop_matrix[d_home_a, d_core_a]
        # One fused request+response hop column: the hit corrections always
        # need the sum; the lone S->M case recomputes its response hop.
        h_sum = (h_req_a + h_rsp_a).tolist()
        # (3) All-miss baselines, corrected per hit in the loop below.
        writes_total = int(np.count_nonzero(d_write_a))
        reads_total = count - writes_total
        if track:
            hops_base = int(h_req_a.sum()) + int(h_rsp_a.sum())
        a_lk = np.bincount(d_home_a, minlength=num_homes).tolist()
        miss_delta = np.bincount(d_cache_a, minlength=num_tracked).tolist()
        # (4) Bank events accumulate per home in trace order for the replay
        # pass — the banks are independent state machines, so each home's
        # event list replays with its bank's arrays bound once.  Events are
        # packed as ``block << 1 | is_write`` to keep the per-miss record a
        # plain int instead of a tuple allocation.
        if use_banks:
            ev_by_home: List[List[int]] = [[] for _ in banks]
            ev_app = [events.append for events in ev_by_home]

        if kernel_state is not None:
            (
                kern_pos, kern_cache, kern_frame, kern_block, kern_set,
                kern_write, kern_stamp, kern_old, kern_alive,
            ) = kernel_state
        else:
            kern_alive = None
        pos = 0
        rollback_total = 0
        pending: List[tuple] = []

        def rollback(mask: np.ndarray) -> None:
            # Undo retired kernel hits made stale by an unpredictable event
            # and re-inject them (sorted by trace position) for replay.
            nonlocal rollback_total
            for j in np.flatnonzero(mask).tolist():
                rollback_total += 1
                kern_alive[j] = False
                r_cache = int(kern_cache[j])
                r_frame = int(kern_frame[j])
                r_block = int(kern_block[j])
                r_pos = int(kern_pos[j])
                hit_delta[r_cache] -= 1
                siblings = (
                    kern_alive & (kern_cache == r_cache) & (kern_frame == r_frame)
                )
                if siblings.any():
                    stamps_of[r_cache][r_frame] = int(kern_stamp[siblings].max())
                else:
                    family = np.flatnonzero(
                        (kern_cache == r_cache) & (kern_frame == r_frame)
                    )
                    earliest = family[np.argmin(kern_pos[family])]
                    stamps_of[r_cache][r_frame] = int(kern_old[earliest])
                insort(
                    pending,
                    (
                        r_pos,
                        r_block,
                        r_block // num_slices,
                        r_block % num_slices,
                        r_cache,
                        bool(kern_write[j]),
                        int(kern_set[j]),
                        int(kern_stamp[j]),
                    ),
                )

        record = self._record

        def apply_forced(
            invalidations: Sequence[Invalidation], victim_home: int
        ) -> None:
            for invalidation in invalidations:
                victim_block = invalidation.address * num_slices + victim_home
                for sharer in invalidation.caches:
                    record(_INVALIDATE, victim_home, core_of[sharer])
                    if kern_alive is not None:
                        mask = (
                            kern_alive
                            & (kern_cache == sharer)
                            & (kern_block == victim_block)
                            & (kern_pos > pos)
                        )
                        if mask.any():
                            rollback(mask)
                    tracked[sharer].invalidate(victim_block)
                    record(_INV_ACK, core_of[sharer], victim_home)

        def insert_new(home: int, local_addr: int, mask: int, indices) -> None:
            # Vacant-candidate placement with precomputed candidate rows
            # (``indices`` is None only for re-injected accesses).
            pool = d_pool[home]
            if pool:
                sharer_set = pool.pop()
            else:
                sharer_set = bitvec_cls(dir_caches)
            sharer_set._mask = mask
            if indices is None:
                indices = d_ic[home].get(local_addr)
                if indices is None:
                    indices = d_table[home]._indices_of(local_addr)
            else:
                # Seed the table's per-key indices cache: a later
                # displacement walk that evicts this key re-hashes it
                # scalar unless the batch-computed row is cached.
                ic = d_ic[home]
                if len(ic) < ic_limit:
                    ic[local_addr] = indices
            keys_h = d_keys[home]
            for way in d_wo[home][d_sw[home]]:
                idx = indices[way]
                if keys_h[way][idx] == -1:
                    keys_h[way][idx] = local_addr
                    d_val[home][way][idx] = sharer_set
                    d_loc[home][local_addr] = (way, idx)
                    d_sw[home] = way
                    a_i1[home] += 1
                    return
            insert_walk(home, local_addr, sharer_set, indices)

        def insert_walk(home: int, local_addr: int, sharer_set, indices) -> None:
            # Displacement walk: insert_absent plus direct stats; resync
            # the start-way shadow the walk rotated inside the table.
            nonlocal n_walk
            n_walk += 1
            table = d_table[home]
            table._start_way = d_sw[home]
            result = table.insert_absent(local_addr, sharer_set, indices)
            d_sw[home] = table._start_way
            stats = d_stats[home]
            attempts = result.attempts
            stats.insertions += 1
            stats.insertion_attempts += attempts
            stats.attempt_histogram[attempts] += 1
            stats.bits_written += attempts * dir_entry_bits
            if result.evicted:
                invalidation = Invalidation(
                    address=result.evicted_key,
                    caches=result.evicted_value.sharers(),
                )
                stats.forced_invalidations += 1
                stats.forced_invalidation_messages += invalidation.num_messages
                apply_forced((invalidation,), home)

        def acquire_excl(
            local_addr: int, home: int, block: int, cache_id: int,
            reinjected: bool, indices,
        ) -> None:
            # Inlined CuckooDirectory.acquire_exclusive, *without* the
            # lookup count: the all-miss baseline (or the re-injected
            # caller) already accounts the lookup.
            nonlocal hops_acc, bytes_acc, n_inv, n_ack
            wbit = 1 << cache_id
            loc = d_loc[home].get(local_addr)
            if loc is None:
                insert_new(home, local_addr, wbit, indices)
                return
            a_lh[home] += 1
            way, idx = loc
            sharer_set = d_val[home][way][idx]
            prior = sharer_set._mask
            others = prior & ~wbit
            if not others:
                sharer_set._mask = prior | wbit
                return
            sharer_set._mask = wbit
            a_io[home] += 1
            a_sr[home] += bin(others).count("1")
            while others:
                low = others & -others
                others -= low
                sharer = low.bit_length() - 1
                if track:
                    sharer_core = core_of[sharer]
                    n_inv += 1
                    hops_acc += hop_table[home][sharer_core]
                    bytes_acc += inv_bytes
                    n_ack += 1
                    hops_acc += hop_table[sharer_core][home]
                    bytes_acc += ack_bytes
                if reinjected and kern_alive is not None:
                    stale = (
                        kern_alive
                        & (kern_cache == sharer)
                        & (kern_block == block)
                        & (kern_pos > pos)
                    )
                    if stale.any():
                        rollback(stale)
                tracked[sharer].invalidate(block)

        def process_one(entry: tuple) -> None:
            # Scalar replay of one re-injected access (full live
            # accounting — re-injections are outside the all-miss
            # baselines), the exact protocol of _drain_batch.
            nonlocal pos, hops_acc, bytes_acc, n_getS, n_getM, n_data
            nonlocal n_fwd, n_putM, n_putS
            nonlocal n_rdh, n_reinj, p1_hit, p1_up, p1_rm, p1_wm
            n_reinj += 1
            (
                pos, block, local_addr, home, cache_id,
                is_write, set_index, stamp,
            ) = entry
            location, tags, states, dirty, stamps, counts = cache_arrs[cache_id]
            frame = location.get(block)
            if frame is not None:
                hit_delta[cache_id] += 1
                stamps[frame] = stamp
                if is_write:
                    dirty[frame] = True
                    state = states[frame]
                    if state == state_m:
                        p1_hit += 1
                    elif state == state_e:
                        p1_hit += 1
                        states[frame] = state_m
                    else:
                        p1_up += 1
                        if track:
                            n_getM += 1
                            hops_acc += hop_table[core_of[cache_id]][home]
                            bytes_acc += getm_bytes
                        a_lk[home] += 1
                        acquire_excl(
                            local_addr, home, block, cache_id, True, None
                        )
                        states[frame] = state_m
                else:
                    p1_hit += 1
                return
            miss_delta[cache_id] += 1
            if use_banks:
                ev_app[home](block << 1 | is_write)
            core = core_of[cache_id]
            hop_row = hop_table[core]
            if is_write:
                p1_wm += 1
                if track:
                    n_getM += 1
                    hops_acc += hop_row[home]
                    bytes_acc += getm_bytes
                a_lk[home] += 1
                acquire_excl(local_addr, home, block, cache_id, True, None)
                new_state = state_m
                fill_dirty = True
            else:
                p1_rm += 1
                if track:
                    n_getS += 1
                    hops_acc += hop_row[home]
                    bytes_acc += gets_bytes
                a_lk[home] += 1
                loc = d_loc[home].get(local_addr)
                if loc is not None:
                    n_rdh += 1
                    a_lh[home] += 1
                    way, idx = loc
                    sharer_set = d_val[home][way][idx]
                    prior = sharer_set._mask
                    wbit = 1 << cache_id
                    sharer_set._mask = prior | wbit
                    remaining = prior & ~wbit
                    while remaining:
                        low = remaining & -remaining
                        remaining -= low
                        sharer = low.bit_length() - 1
                        owner_frame = locations[sharer].get(block)
                        if owner_frame is None:
                            continue
                        owner_states = states_of[sharer]
                        owner_state = owner_states[owner_frame]
                        if owner_state >= state_e:
                            if track:
                                sharer_core = core_of[sharer]
                                n_fwd += 1
                                hops_acc += hop_table[home][sharer_core]
                                bytes_acc += fwd_bytes
                                if owner_state == state_m:
                                    n_putM += 1
                                    hops_acc += hop_table[sharer_core][home]
                                    bytes_acc += putm_bytes
                            owner_states[owner_frame] = state_s
                    new_state = state_s
                else:
                    insert_new(home, local_addr, 1 << cache_id, None)
                    new_state = state_e
                fill_dirty = False
            if track:
                n_data += 1
                hops_acc += hop_table[home][core]
                bytes_acc += data_bytes
            if kern_alive is not None:
                mask = (
                    kern_alive
                    & (kern_cache == cache_id)
                    & (kern_set == set_index)
                    & (kern_pos > pos)
                )
                if mask.any():
                    rollback(mask)
            base = set_index * num_ways
            if counts[set_index] < num_ways:
                frame = tags.index(-1, base, base + num_ways)
                counts[set_index] += 1
            else:
                if num_ways == 2:
                    frame = (
                        base if stamps[base] <= stamps[base + 1] else base + 1
                    )
                else:
                    row = stamps[base : base + num_ways]
                    frame = base + row.index(min(row))
                victim = tags[frame]
                victim_dirty = dirty[frame]
                evict_delta[cache_id] += 1
                if victim_dirty:
                    dirty_evict_delta[cache_id] += 1
                del location[victim]
                victim_home = victim % num_slices
                if track:
                    hops_acc += hop_row[victim_home]
                    if victim_dirty:
                        n_putM += 1
                        bytes_acc += putm_bytes
                    else:
                        n_putS += 1
                        bytes_acc += puts_bytes
                victim_local = victim // num_slices
                loc = d_loc_get[victim_home](victim_local)
                if loc is not None:
                    way, idx = loc
                    sharer_set = d_val[victim_home][way][idx]
                    remaining = sharer_set._mask & ~(1 << cache_id)
                    sharer_set._mask = remaining
                    a_sr[victim_home] += 1
                    if not remaining:
                        del d_loc[victim_home][victim_local]
                        d_keys[victim_home][way][idx] = -1
                        d_val[victim_home][way][idx] = None
                        a_er[victim_home] += 1
                        d_pool[victim_home].append(sharer_set)
            tags[frame] = block
            states[frame] = new_state
            dirty[frame] = fill_dirty
            stamps[frame] = stamp
            location[block] = frame

        # -- the protocol loop (trace order; re-injections spliced in) -----
        # Direct unpacking in the for header keeps the result tuple's
        # refcount at one so zip can recycle it instead of allocating a
        # fresh 11-tuple per access.
        for (
            pos, block, local_addr, home, cache_id, is_write,
            set_index, base, stamp, hsum, indices,
        ) in zip(dp, db, dl, dh, dc, dw, ds, dbase, dst, h_sum, cand_rows):
            if pending:
                cur = pos
                while pending and pending[0][0] < cur:
                    process_one(pending.pop(0))
                pos = cur
            frame = locations_get[cache_id](block)
            if frame is None:
                # Miss (the common case): queue the bank event, run the
                # directory protocol, fill inline.  Traffic and lookup
                # counts are covered by the all-miss baseline.
                if use_banks:
                    ev_app[home](block << 1 | is_write)
                if is_write:
                    # Inlined acquire_excl (the two common cases: absent
                    # entry with a vacant candidate, or already-present
                    # sharer sets); conflicts fall back to the closure.
                    wbit = 1 << cache_id
                    loc = d_loc_get[home](local_addr)
                    if loc is None:
                        pool = d_pool[home]
                        if pool:
                            sharer_set = pool.pop()
                        else:
                            sharer_set = bitvec_cls(dir_caches)
                        sharer_set._mask = wbit
                        ic = d_ic[home]
                        if len(ic) < ic_limit:
                            ic[local_addr] = indices
                        keys_h = d_keys[home]
                        for way in d_wo[home][d_sw[home]]:
                            idx = indices[way]
                            if keys_h[way][idx] == -1:
                                keys_h[way][idx] = local_addr
                                d_val[home][way][idx] = sharer_set
                                d_loc[home][local_addr] = (way, idx)
                                d_sw[home] = way
                                a_i1[home] += 1
                                break
                        else:
                            insert_walk(home, local_addr, sharer_set, indices)
                    else:
                        a_lh[home] += 1
                        way, idx = loc
                        sharer_set = d_val[home][way][idx]
                        prior = sharer_set._mask
                        others = prior & ~wbit
                        if not others:
                            sharer_set._mask = prior | wbit
                        else:
                            sharer_set._mask = wbit
                            a_io[home] += 1
                            a_sr[home] += bin(others).count("1")
                            while others:
                                low = others & -others
                                others -= low
                                sharer = low.bit_length() - 1
                                if track:
                                    sharer_core = core_of[sharer]
                                    n_inv += 1
                                    hops_acc += hop_table[home][sharer_core]
                                    bytes_acc += inv_bytes
                                    n_ack += 1
                                    hops_acc += hop_table[sharer_core][home]
                                    bytes_acc += ack_bytes
                                tracked[sharer].invalidate(block)
                    new_state = state_m
                    fill_dirty = True
                else:
                    loc = d_loc_get[home](local_addr)
                    if loc is not None:
                        # Directory hit: add the sharer bit, downgrade any
                        # M/E owner among the prior sharers.
                        n_rdh += 1
                        a_lh[home] += 1
                        way, idx = loc
                        sharer_set = d_val[home][way][idx]
                        prior = sharer_set._mask
                        wbit = 1 << cache_id
                        sharer_set._mask = prior | wbit
                        remaining = prior & ~wbit
                        # MESI invariant: an M/E owner holds the block
                        # exclusively, so a downgrade is only possible
                        # when exactly one prior sharer remains — the
                        # multi-sharer scan would find only S copies.
                        if remaining and not (remaining & (remaining - 1)):
                            sharer = remaining.bit_length() - 1
                            owner_frame = locations_get[sharer](block)
                            if owner_frame is not None:
                                owner_states = states_of[sharer]
                                owner_state = owner_states[owner_frame]
                                if owner_state >= state_e:
                                    if track:
                                        sharer_core = core_of[sharer]
                                        n_fwd += 1
                                        hops_acc += hop_table[home][sharer_core]
                                        bytes_acc += fwd_bytes
                                        if owner_state == state_m:
                                            n_putM += 1
                                            hops_acc += hop_table[sharer_core][home]
                                            bytes_acc += putm_bytes
                                    owner_states[owner_frame] = state_s
                        new_state = state_s
                    else:
                        # Directory miss on a read: allocate the entry with
                        # this cache as the sole (Exclusive) sharer, using
                        # the pre-pass candidate row.
                        pool = d_pool[home]
                        if pool:
                            sharer_set = pool.pop()
                        else:
                            sharer_set = bitvec_cls(dir_caches)
                        sharer_set._mask = 1 << cache_id
                        ic = d_ic[home]
                        if len(ic) < ic_limit:
                            ic[local_addr] = indices
                        keys_h = d_keys[home]
                        for way in d_wo[home][d_sw[home]]:
                            idx = indices[way]
                            if keys_h[way][idx] == -1:
                                keys_h[way][idx] = local_addr
                                d_val[home][way][idx] = sharer_set
                                d_loc[home][local_addr] = (way, idx)
                                d_sw[home] = way
                                a_i1[home] += 1
                                break
                        else:
                            insert_walk(home, local_addr, sharer_set, indices)
                        new_state = state_e
                    fill_dirty = False

                # Inline fill: the exact-stamp twin of fill_miss_code.
                location, tags, states, dirty, stamps, counts = cache_arrs[
                    cache_id
                ]
                if counts[set_index] < num_ways:
                    frame = tags.index(-1, base, base + num_ways)
                    counts[set_index] += 1
                else:
                    if num_ways == 2:
                        frame = (
                            base
                            if stamps[base] <= stamps[base + 1]
                            else base + 1
                        )
                    else:
                        row = stamps[base : base + num_ways]
                        frame = base + row.index(min(row))
                    victim = tags[frame]
                    victim_dirty = dirty[frame]
                    evict_delta[cache_id] += 1
                    if victim_dirty:
                        dirty_evict_delta[cache_id] += 1
                    del location[victim]
                    victim_home = victim % num_slices
                    if track:
                        hops_acc += hop_rows[cache_id][victim_home]
                        if victim_dirty:
                            n_putM += 1
                            bytes_acc += putm_bytes
                        else:
                            n_putS += 1
                            bytes_acc += puts_bytes
                    # Inlined remove_sharer (evict notify).
                    victim_local = victim // num_slices
                    loc = d_loc_get[victim_home](victim_local)
                    if loc is not None:
                        way, idx = loc
                        sharer_set = d_val[victim_home][way][idx]
                        remaining = sharer_set._mask & ~(1 << cache_id)
                        sharer_set._mask = remaining
                        a_sr[victim_home] += 1
                        if not remaining:
                            del d_loc[victim_home][victim_local]
                            d_keys[victim_home][way][idx] = -1
                            d_val[victim_home][way][idx] = None
                            a_er[victim_home] += 1
                            d_pool[victim_home].append(sharer_set)
                tags[frame] = block
                states[frame] = new_state
                dirty[frame] = fill_dirty
                stamps[frame] = stamp
                location[block] = frame
                continue

            # Hit (dragged in by a conflict): stamp recency, correct the
            # all-miss baselines, run any write-upgrade protocol.
            hit_delta[cache_id] += 1
            miss_delta[cache_id] -= 1
            stamps_of[cache_id][frame] = stamp
            if is_write:
                dirty_of[cache_id][frame] = True
                states = states_of[cache_id]
                state = states[frame]
                if state == state_m:
                    cw += 1
                    a_lk[home] -= 1
                    hops_corr += hsum
                elif state == state_e:
                    # Silent E -> M upgrade; no directory traffic.
                    cw += 1
                    a_lk[home] -= 1
                    hops_corr += hsum
                    states[frame] = state_m
                else:
                    # S -> M: GET_M is sent (the baseline request hop
                    # stands) but no DATA comes back.
                    s_up += 1
                    hops_corr += hop_table[home][core_of[cache_id]]
                    acquire_excl(
                        local_addr, home, block, cache_id, False, indices
                    )
                    states[frame] = state_m
            else:
                rh += 1
                a_lk[home] -= 1
                hops_corr += hsum
        while pending:
            process_one(pending.pop(0))

        # -- bank replay: the decoupled shared-L2 model, one independent
        # pass per bank with its arrays bound once -------------------------
        if use_banks:
            bank_sets = banks[0].num_sets
            bank_ways = banks[0].num_ways
            for home, events in enumerate(ev_by_home):
                if not events:
                    continue
                bank = banks[home]
                b_location = bank._location
                b_get = b_location.get
                b_tags = bank._tags
                b_states = bank._states
                b_dirty = bank._dirty
                b_stamps = bank._stamps
                b_counts = bank._set_counts
                b_clock = bank._clock
                b_hits = b_misses = b_evicts = b_dirty_evicts = 0
                for event in events:
                    block = event >> 1
                    b_clock += 1
                    b_frame = b_get(block)
                    if b_frame is not None:
                        b_hits += 1
                        b_stamps[b_frame] = b_clock
                        if event & 1:
                            b_dirty[b_frame] = True
                        continue
                    b_misses += 1
                    b_set = block % bank_sets
                    b_base = b_set * bank_ways
                    if b_counts[b_set] < bank_ways:
                        b_frame = b_tags.index(-1, b_base, b_base + bank_ways)
                        b_counts[b_set] += 1
                    else:
                        b_row = b_stamps[b_base : b_base + bank_ways]
                        b_frame = b_base + b_row.index(min(b_row))
                        b_evicts += 1
                        if b_dirty[b_frame]:
                            b_dirty_evicts += 1
                        del b_location[b_tags[b_frame]]
                    b_tags[b_frame] = block
                    b_states[b_frame] = state_s
                    b_dirty[b_frame] = False
                    b_stamps[b_frame] = b_clock
                    b_location[block] = b_frame
                bank._clock = b_clock
                stats = bank._stats
                stats.hits += b_hits
                stats.misses += b_misses
                stats.evictions += b_evicts
                stats.dirty_evictions += b_dirty_evicts

        # -- flush: baselines minus corrections, plus the live counters ----
        for cache_id in range(num_tracked):
            if hit_delta[cache_id] or miss_delta[cache_id] or evict_delta[cache_id]:
                stats = tracked[cache_id]._stats
                stats.hits += hit_delta[cache_id]
                stats.misses += miss_delta[cache_id]
                stats.evictions += evict_delta[cache_id]
                stats.dirty_evictions += dirty_evict_delta[cache_id]
        for home in range(num_homes):
            table = d_table[home]
            if table._start_way != d_sw[home]:
                table._start_way = d_sw[home]
            lk = a_lk[home]
            sr = a_sr[home]
            if lk or sr:
                lh = a_lh[home]
                er = a_er[home]
                i1 = a_i1[home]
                stats = d_stats[home]
                stats.lookups += lk
                stats.lookup_hits += lh
                stats.lookup_misses += lk - lh
                stats.sharer_additions += lh
                stats.sharer_removals += sr
                stats.entry_removals += er
                stats.invalidate_all_operations += a_io[home]
                stats.bits_read += (
                    lk * dir_lookup_bits + lh * dir_payload_bits
                )
                stats.bits_written += (
                    (lh + sr) * dir_payload_bits + i1 * dir_entry_bits
                )
                if i1:
                    stats.insertions += i1
                    stats.insertion_attempts += i1
                    stats.attempt_histogram[1] += i1
                if i1 != er:
                    table._size += i1 - er
        if track:
            n_getS += reads_total - rh
            n_getM += writes_total - cw
            n_data += count - rh - cw - s_up
            hops_acc += hops_base - hops_corr
            bytes_acc += (
                (reads_total - rh) * gets_bytes
                + (writes_total - cw) * getm_bytes
                + (count - rh - cw - s_up) * data_bytes
            )
            if n_getS:
                messages[_GET_SHARED] += n_getS
            if n_getM:
                messages[_GET_MODIFIED] += n_getM
            if n_data:
                messages[_DATA] += n_data
            if n_inv:
                messages[_INVALIDATE] += n_inv
            if n_ack:
                messages[_INV_ACK] += n_ack
            if n_putM:
                messages[_PUT_MODIFIED] += n_putM
            if n_putS:
                messages[_PUT_SHARED] += n_putS
            if n_fwd:
                messages[_FWD_GET] += n_fwd
            traffic.hops += hops_acc
            traffic.bytes_transferred += bytes_acc
        if rollback_total:
            _BATCH_ROLLBACKS.add(rollback_total)
        _DRAIN_VECTOR.add(count)
        _DRAIN_CLS_HITS.add(rh + cw + p1_hit)
        _DRAIN_CLS_UPGRADES.add(s_up + p1_up)
        _DRAIN_CLS_READ_DIRHIT.add(n_rdh)
        _DRAIN_CLS_READ_INSERT.add(reads_total - rh + p1_rm - n_rdh)
        _DRAIN_CLS_WRITE_MISS.add(writes_total - cw - s_up + p1_wm)
        _DRAIN_CLS_WALKS.add(n_walk)
        if n_reinj:
            _DRAIN_REINJECTED.add(n_reinj)
    def _access_block(
        self, block: int, local: int, home: int, cache_id: int, is_write: bool
    ) -> None:
        """Execute one access whose address math is already resolved."""
        cache = self._tracked[cache_id]
        state = cache.touch_code(block, is_write)
        if state >= 0:
            if is_write and state != STATE_MODIFIED:
                self._write_hit_upgrade(block, local, home, cache_id, cache, state)
            return
        if self._l2_banks is not None:
            bank = self._l2_banks[home]
            if bank.touch_code(block, is_write) < 0:
                bank.fill_miss_code(block)
        if is_write:
            self._handle_write_miss(
                block, local, home, cache_id, cache, self._directories[home]
            )
        else:
            self._handle_read_miss(
                block, local, home, cache_id, cache, self._directories[home]
            )

    # -- protocol actions ----------------------------------------------------------
    def _write_hit_upgrade(
        self,
        block: int,
        local: int,
        home: int,
        cache_id: int,
        cache: SetAssociativeCache,
        state: int,
    ) -> None:
        """Write hit in E or S state (M write hits never reach here)."""
        if state == STATE_EXCLUSIVE:
            # Silent E -> M upgrade; no directory interaction needed.
            cache.set_state_code(block, STATE_MODIFIED)
            return
        # S -> M upgrade: the home must invalidate the other sharers.
        core = self._core_of[cache_id]
        if self._track_traffic:
            traffic = self._traffic
            traffic.messages[_GET_MODIFIED] += 1
            traffic.hops += self._hop_table[core][home]
            traffic.bytes_transferred += _GET_MODIFIED_BYTES
        result = self._directories[home].acquire_exclusive(local, cache_id)
        self._apply_coherence_invalidations(block, result, home, requester=cache_id)
        if result.invalidations:
            self._apply_forced_invalidations(result.invalidations, home)
        cache.set_state_code(block, STATE_MODIFIED)

    def _handle_write_miss(
        self,
        block: int,
        local: int,
        home: int,
        cache_id: int,
        cache: SetAssociativeCache,
        directory: Directory,
    ) -> None:
        core = self._core_of[cache_id]
        track = self._track_traffic
        if track:
            traffic = self._traffic
            hop_table = self._hop_table
            traffic.messages[_GET_MODIFIED] += 1
            traffic.hops += hop_table[core][home]
            traffic.bytes_transferred += _GET_MODIFIED_BYTES
        result = directory.acquire_exclusive(local, cache_id)
        self._apply_coherence_invalidations(block, result, home, requester=cache_id)
        if result.invalidations:
            self._apply_forced_invalidations(result.invalidations, home)
        if track:
            traffic.messages[_DATA] += 1
            traffic.hops += hop_table[home][core]
            traffic.bytes_transferred += _DATA_BYTES
        victim = cache.fill_miss_code(block, STATE_MODIFIED, True)
        if victim >= 0:
            self._evict_notify(victim, cache_id, core, cache.victim_dirty)

    def _handle_read_miss(
        self,
        block: int,
        local: int,
        home: int,
        cache_id: int,
        cache: SetAssociativeCache,
        directory: Directory,
    ) -> None:
        core = self._core_of[cache_id]
        track = self._track_traffic
        if track:
            traffic = self._traffic
            hop_table = self._hop_table
            traffic.messages[_GET_SHARED] += 1
            traffic.hops += hop_table[core][home]
            traffic.bytes_transferred += _GET_SHARED_BYTES
        found, prior_sharers, result = directory.lookup_add(local, cache_id)
        if found:
            self._downgrade_owner(block, prior_sharers, home, requester=cache_id)
            new_state = STATE_SHARED
        else:
            new_state = STATE_EXCLUSIVE
        if result.invalidations:
            self._apply_forced_invalidations(result.invalidations, home)
        if track:
            traffic.messages[_DATA] += 1
            traffic.hops += hop_table[home][core]
            traffic.bytes_transferred += _DATA_BYTES
        victim = cache.fill_miss_code(block, new_state, False)
        if victim >= 0:
            self._evict_notify(victim, cache_id, core, cache.victim_dirty)

    def _downgrade_owner(
        self, block: int, sharers, home: int, requester: int
    ) -> None:
        """On a read miss, an M/E owner must be downgraded to S."""
        for sharer in sharers:
            if sharer == requester:
                continue
            owner_cache = self._tracked[sharer]
            state = owner_cache.state_code_of(block)
            if state >= STATE_EXCLUSIVE:  # MODIFIED or EXCLUSIVE
                self._record(MessageType.FWD_GET, home, self._core_of[sharer])
                if state == STATE_MODIFIED:
                    self._record(
                        MessageType.PUT_MODIFIED, self._core_of[sharer], home
                    )
                owner_cache.set_state_code(block, STATE_SHARED)

    def _apply_coherence_invalidations(
        self, block: int, result: UpdateResult, home: int, requester: int
    ) -> None:
        """Invalidate the accessed block in every other reported sharer."""
        for sharer in result.coherence_invalidations:
            if sharer == requester:
                continue
            self._record(MessageType.INVALIDATE, home, self._core_of[sharer])
            self._tracked[sharer].invalidate(block)
            self._record(MessageType.INV_ACK, self._core_of[sharer], home)

    def _apply_forced_invalidations(
        self, invalidations: Sequence[Invalidation], home: int
    ) -> None:
        """Invalidate blocks whose directory entries were victimised.

        The directory has already dropped the entry; the private caches
        must drop their copies to preserve the inclusion property between
        the directory and the tracked caches.  Victim addresses arrive in
        slice-local form and are translated back to global block addresses
        before touching the caches.
        """
        for invalidation in invalidations:
            block = self.global_address(invalidation.address, home)
            for sharer in invalidation.caches:
                self._record(
                    MessageType.INVALIDATE, home, self._core_of[sharer]
                )
                self._tracked[sharer].invalidate(block)
                self._record(
                    MessageType.INV_ACK, self._core_of[sharer], home
                )

    def _evict_notify(
        self, victim: int, cache_id: int, core: int, victim_dirty: bool
    ) -> None:
        """Notify the victim's home directory of a private-cache eviction.

        ``core`` is the evicting cache's tile (the caller already has it);
        both miss handlers share this path so eviction traffic accounting
        cannot diverge between reads and writes.
        """
        num_slices = self._num_slices
        victim_home = victim % num_slices
        if self._track_traffic:
            traffic = self._traffic
            traffic.hops += self._hop_table[core][victim_home]
            if victim_dirty:
                traffic.messages[_PUT_MODIFIED] += 1
                traffic.bytes_transferred += _PUT_MODIFIED_BYTES
            else:
                traffic.messages[_PUT_SHARED] += 1
                traffic.bytes_transferred += _PUT_SHARED_BYTES
        self._directories[victim_home].remove_sharer(
            victim // num_slices, cache_id
        )

    # -- consistency checking (used by integration tests) --------------------------
    def check_inclusion(self) -> List[str]:
        """Verify directory/cache consistency; returns a list of violations.

        Two invariants are checked:

        * every block resident in a tracked cache is reported as shared by
          that cache in its home directory slice (no silently untracked
          blocks);
        * every *exact* directory organization reports only true sharers
          (inexact encodings legitimately report supersets and are skipped).
        """
        violations: List[str] = []
        for cache_id, cache in enumerate(self._tracked):
            for block in cache.resident_addresses():
                directory = self._directories[self.home_slice(block)]
                sharers = directory.lookup(self.slice_local_address(block)).sharers
                if cache_id not in sharers:
                    violations.append(
                        f"block {block:#x} resident in cache {cache_id} "
                        f"but not tracked by its home directory"
                    )
        return violations

    # -- helpers ---------------------------------------------------------------------
    def _record(self, message_type: MessageType, source: int, destination: int) -> None:
        if not self._track_traffic:
            return
        # Inlined TrafficStats.record: the counters are plain attributes
        # (the message dict is initialised with every type, so no .get
        # fallback is needed).  The per-miss request/data/eviction messages
        # inline this body directly at their call sites; this method serves
        # the invalidation and downgrade paths.
        traffic = self._traffic
        traffic.messages[message_type] += 1
        traffic.hops += self._hop_table[source][destination]
        traffic.bytes_transferred += MESSAGE_BYTES_BY_TYPE[message_type]
