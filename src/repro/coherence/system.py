"""Tiled-CMP coherence model.

:class:`TiledCMP` wires together the private caches, the address-interleaved
directory slices, and a mesh hop model, and executes memory accesses the way
Figure 2 of the paper describes: the accessing core's private cache is tried
first; misses and write-upgrades travel to the block's *home* tile, where the
directory slice is consulted and invalidations are sent to the sharers it
reports.

Two configurations are supported, matching Section 5:

* ``CacheLevel.L1`` (**Shared-L2**): the tracked private caches are the split
  I/D L1s (two per core); an address-interleaved shared L2 sits behind them
  and is modelled for hit-rate/traffic statistics.
* ``CacheLevel.L2`` (**Private-L2**): the tracked private caches are unified
  1 MB private L2s (one per core).  The small L1s in front of them are not
  modelled: they filter repeated hits to hot blocks but do not change which
  blocks are resident in the L2s, which is the only thing the directory
  observes (this substitution is recorded in DESIGN.md).

The directory organization is supplied as a factory so identical access
streams can be replayed against Sparse, Skewed, Duplicate-Tag, Tagless or
Cuckoo organizations.

Execution paths
---------------
Three entry points execute the same protocol and produce bit-identical
statistics:

* :meth:`TiledCMP.access` — one :class:`MemoryAccess` object (general API);
* :meth:`TiledCMP.access_scalar` — one access as plain scalars;
* :meth:`TiledCMP.access_batch` — a slice of a trace chunk.  All per-access
  address math (page translation, block/home/local derivation, tracked-cache
  selection) is numpy-precomputed for the whole slice, the core-range check
  is hoisted to one chunk-level validation, and consecutive accesses by the
  same cache to the same block collapse into a single probe plus counter
  bumps (the run-length fast path — common in instruction and streaming
  traces).

Internally the protocol operates on integer MESI codes
(:data:`repro.cache.cache.STATE_TO_CODE`); the :class:`~repro.cache.cache.
CoherenceState` enum appears only at the public cache API boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.cache.cache import (
    STATE_EXCLUSIVE,
    STATE_MODIFIED,
    STATE_SHARED,
    SetAssociativeCache,
)
from repro.config import CacheLevel, SystemConfig
from repro.coherence.interconnect import MeshInterconnect
from repro.coherence.messages import (
    MESSAGE_BYTES_BY_TYPE,
    MessageType,
    TrafficStats,
)
from repro.coherence.paging import PageMapper
from repro.directories.base import Directory, DirectoryStats, Invalidation, UpdateResult
from repro.obs.metrics import counter as _obs_counter
from repro.obs.tracing import TRACER as _TRACER

__all__ = ["MemoryAccess", "DirectoryFactory", "TiledCMP"]

# Telemetry at chunk granularity only (DESIGN.md "Observability"): one
# counter bump and two spans per access_batch call, nothing per access.
# The instruments are free no-ops until repro.obs.enable() swaps them.
_BATCH_CHUNKS = _obs_counter(
    "sim.batch.chunks", help="access_batch slices executed"
)
_BATCH_ACCESSES = _obs_counter(
    "sim.batch.accesses", help="accesses executed through access_batch"
)
_BATCH_FOLDED = _obs_counter(
    "sim.batch.folded_accesses",
    help="accesses folded by the run-length fast path",
)
_BATCH_SCALAR = _obs_counter(
    "sim.batch.scalar_fallbacks",
    help="accesses that took the scalar coherence-protocol path",
)

# Hot-path message constants: hoisted enum members and their byte costs so
# the inlined traffic recording does no enum attribute traversal.
_GET_SHARED = MessageType.GET_SHARED
_GET_MODIFIED = MessageType.GET_MODIFIED
_PUT_SHARED = MessageType.PUT_SHARED
_PUT_MODIFIED = MessageType.PUT_MODIFIED
_DATA = MessageType.DATA
_GET_SHARED_BYTES = MESSAGE_BYTES_BY_TYPE[_GET_SHARED]
_GET_MODIFIED_BYTES = MESSAGE_BYTES_BY_TYPE[_GET_MODIFIED]
_PUT_SHARED_BYTES = MESSAGE_BYTES_BY_TYPE[_PUT_SHARED]
_PUT_MODIFIED_BYTES = MESSAGE_BYTES_BY_TYPE[_PUT_MODIFIED]
_DATA_BYTES = MESSAGE_BYTES_BY_TYPE[_DATA]


@dataclass(frozen=True)
class MemoryAccess:
    """One memory reference issued by a core.

    ``address`` is a byte address; the system converts it to a block
    address internally.  ``is_instruction`` selects the L1 instruction
    cache in the Shared-L2 configuration (ignored in Private-L2).
    """

    core: int
    address: int
    is_write: bool = False
    is_instruction: bool = False


#: Signature of a directory-slice factory: ``(num_tracked_caches, slice_id)``.
DirectoryFactory = Callable[[int, int], Directory]


class TiledCMP:
    """Trace-driven tiled CMP with a pluggable coherence directory."""

    def __init__(
        self,
        config: SystemConfig,
        directory_factory: DirectoryFactory,
        track_traffic: bool = True,
        page_mapper: Optional[PageMapper] = None,
        page_mapper_seed: int = 0,
    ) -> None:
        self._config = config
        self._track_traffic = track_traffic
        self._offset_bits = config.tracked_cache_config.block_offset_bits
        # Virtual-to-physical translation (OS first-touch allocation): see
        # repro.coherence.paging for why this matters to directory conflicts.
        self._page_mapper = page_mapper or PageMapper(
            page_bytes=config.page_bytes, seed=page_mapper_seed
        )
        num_cores = config.num_cores

        # Tracked private caches: index == tracked cache id.
        self._tracked: List[SetAssociativeCache] = []
        if config.tracked_level is CacheLevel.L1:
            for core in range(num_cores):
                self._tracked.append(
                    SetAssociativeCache(config.l1_config, name=f"l1i-{core}")
                )
                self._tracked.append(
                    SetAssociativeCache(config.l1_config, name=f"l1d-{core}")
                )
            # The shared L2 is modelled for hit-rate statistics only.
            self._l2_banks: Optional[List[SetAssociativeCache]] = [
                SetAssociativeCache(config.l2_config, name=f"l2-bank-{core}")
                for core in range(num_cores)
            ]
        else:
            for core in range(num_cores):
                self._tracked.append(
                    SetAssociativeCache(config.l2_config, name=f"l2-{core}")
                )
            self._l2_banks = None

        num_tracked = len(self._tracked)
        self._directories: List[Directory] = [
            directory_factory(num_tracked, slice_id)
            for slice_id in range(config.num_directory_slices)
        ]
        self._mesh = MeshInterconnect(num_cores)
        self._traffic = TrafficStats()
        self._accesses = 0
        # Hot-path state hoisted out of the per-access methods: the tracked
        # level as a plain bool, the slice count, and an all-pairs hop table
        # (cores² entries) so traffic recording is two list indexings.
        self._l1_tracked = config.tracked_level is CacheLevel.L1
        self._num_cores = num_cores
        self._num_slices = len(self._directories)
        self._hop_table: List[List[int]] = [
            [self._mesh.hops(source, destination) for destination in range(num_cores)]
            for source in range(num_cores)
        ]
        self._core_of: List[int] = [
            self.core_of_cache(cache_id) for cache_id in range(num_tracked)
        ]

    # -- geometry / accessors ------------------------------------------------
    @property
    def config(self) -> SystemConfig:
        return self._config

    @property
    def directories(self) -> Sequence[Directory]:
        return tuple(self._directories)

    @property
    def tracked_caches(self) -> Sequence[SetAssociativeCache]:
        return tuple(self._tracked)

    @property
    def l2_banks(self) -> Optional[Sequence[SetAssociativeCache]]:
        return tuple(self._l2_banks) if self._l2_banks is not None else None

    @property
    def traffic(self) -> TrafficStats:
        return self._traffic

    @property
    def accesses_processed(self) -> int:
        return self._accesses

    @property
    def page_mapper(self) -> PageMapper:
        return self._page_mapper

    def block_address(self, byte_address: int) -> int:
        """Physical block address of a virtual byte address."""
        return self._page_mapper.translate(byte_address) >> self._offset_bits

    def home_slice(self, block: int) -> int:
        """Home tile of a block (static address interleaving).

        NOTE: ``access_scalar``, ``access_batch`` and ``_evict_notify``
        compute this rule (and :meth:`slice_local_address`) directly
        against ``self._num_slices``; change the interleaving everywhere
        together.
        """
        return block % self._num_slices

    def slice_local_address(self, block: int) -> int:
        """Block address as seen by its home directory slice.

        The interleaving bits select the slice and are therefore constant
        for every block a slice sees; real hardware strips them before
        indexing the slice's tag store (otherwise only ``1/num_slices`` of
        the sets would ever be used).  Directories in this model operate
        on these slice-local addresses.
        """
        return block // self._num_slices

    def global_address(self, local_block: int, slice_id: int) -> int:
        """Inverse of :meth:`slice_local_address` for a given home slice."""
        return local_block * self._num_slices + slice_id

    def tracked_cache_id(self, core: int, is_instruction: bool) -> int:
        """Tracked-cache id for an access issued by ``core``."""
        if not 0 <= core < self._config.num_cores:
            raise IndexError(f"core {core} out of range")
        if self._config.tracked_level is CacheLevel.L1:
            return core * 2 + (0 if is_instruction else 1)
        return core

    def core_of_cache(self, cache_id: int) -> int:
        """Core (tile) that owns a tracked cache."""
        if self._config.tracked_level is CacheLevel.L1:
            return cache_id // 2
        return cache_id

    # -- statistics ------------------------------------------------------------
    def directory_stats(self) -> DirectoryStats:
        """Statistics merged across all directory slices."""
        merged = DirectoryStats()
        for directory in self._directories:
            merged = merged.merge(directory.stats)
        return merged

    def sample_occupancy(self) -> float:
        """Sample every slice's occupancy; returns the mean of this sample."""
        values = [directory.sample_occupancy() for directory in self._directories]
        return sum(values) / len(values)

    def reset_stats(self) -> None:
        """Clear directory, cache and traffic statistics (end of warm-up)."""
        for directory in self._directories:
            directory.reset_stats()
        for cache in self._tracked:
            cache.reset_stats()
        if self._l2_banks is not None:
            for bank in self._l2_banks:
                bank.reset_stats()
        self._traffic = TrafficStats()

    # -- the access path ---------------------------------------------------------
    def access(self, access: MemoryAccess) -> None:
        """Execute one memory access through the coherence protocol."""
        core = access.core
        if not 0 <= core < self._num_cores:
            raise IndexError(f"core {core} out of range")
        self.access_scalar(core, access.address, access.is_write, access.is_instruction)

    def access_scalar(
        self, core: int, address: int, is_write: bool, is_instruction: bool
    ) -> None:
        """Execute one access given as plain scalars.

        Behaviourally identical to :meth:`access`, except that ``core`` is
        trusted: range validation lives in :meth:`access` and in the
        chunk-level validation of :meth:`access_batch`, not here.
        """
        self._accesses += 1
        block = self._page_mapper.translate(address) >> self._offset_bits
        if self._l1_tracked:
            cache_id = core * 2 + (0 if is_instruction else 1)
        else:
            cache_id = core
        num_slices = self._num_slices
        self._access_block(
            block, block // num_slices, block % num_slices, cache_id, is_write
        )

    def access_batch(
        self,
        cores: Sequence[int],
        addresses: Sequence[int],
        writes: Sequence[bool],
        instrs: Sequence[bool],
        start: int = 0,
        stop: Optional[int] = None,
    ) -> int:
        """Execute the ``[start, stop)`` slice of a trace chunk; returns its size.

        The chunk fields may be numpy arrays (trace replays, vectorised
        generators) or plain sequences.  Address math runs vectorised over
        the whole slice — page translation, block/home/local derivation and
        tracked-cache selection — so the per-access loop does none; the
        ``0 <= core < num_cores`` check runs once per slice instead of per
        access.  Equivalent to calling :meth:`access_scalar` per element.
        """
        cores = np.asarray(cores)
        if stop is None:
            stop = len(cores)
        count = stop - start
        if count <= 0:
            return 0
        seg_cores = cores[start:stop]
        # Chunk-level validation, hoisted out of the per-access path: a
        # malformed trace fails before any of the slice executes.
        if int(seg_cores.min()) < 0 or int(seg_cores.max()) >= self._num_cores:
            raise IndexError(
                f"core out of range [0, {self._num_cores}) in trace chunk"
            )
        with _TRACER.span("translate"):
            physical = self._page_mapper.translate_batch(
                np.asarray(addresses)[start:stop]
            )
            block_array = physical >> self._offset_bits
            locals_array, homes_array = np.divmod(block_array, self._num_slices)
            homes = homes_array.tolist()
            locals_ = locals_array.tolist()
            if self._l1_tracked:
                instr_segment = np.asarray(instrs)[start:stop]
                cache_ids = (seg_cores * 2 + np.where(instr_segment, 0, 1)).tolist()
            else:
                cache_ids = seg_cores.tolist()
            blocks = block_array.tolist()
            write_flags = np.asarray(writes)[start:stop].tolist()
        self._accesses += count

        tracked = self._tracked
        banks = self._l2_banks
        directories = self._directories
        # Pre-bound per-cache touch methods: one bind per cache per batch
        # instead of one attribute bind per access.
        touch_code_of = [cache.touch_code for cache in tracked]
        folded = 0
        with _TRACER.span("batch_kernel"):
            i = 0
            while i < count:
                block = blocks[i]
                cache_id = cache_ids[i]
                is_write = write_flags[i]
                state = touch_code_of[cache_id](block, is_write)
                if state >= 0:
                    if is_write and state != STATE_MODIFIED:
                        self._write_hit_upgrade(
                            block, locals_[i], homes[i], cache_id,
                            tracked[cache_id], state
                        )
                else:
                    home = homes[i]
                    if banks is not None:
                        # Inlined touch_or_fill: one call on a bank hit, two on
                        # a bank miss.
                        bank = banks[home]
                        if bank.touch_code(block, is_write) < 0:
                            bank.fill_miss_code(block)
                    if is_write:
                        self._handle_write_miss(
                            block, locals_[i], home, cache_id, tracked[cache_id],
                            directories[home],
                        )
                    else:
                        self._handle_read_miss(
                            block, locals_[i], home, cache_id, tracked[cache_id],
                            directories[home],
                        )
                i += 1
                if i < count and blocks[i] == block and cache_ids[i] == cache_id:
                    # Run-length fast path: the next access targets the same
                    # block from the same cache.  Repeats that cannot change
                    # any state — reads while resident, or any access while
                    # MODIFIED (M implies dirty) — fold into counter bumps.
                    cache = tracked[cache_id]
                    state = cache.state_code_of(block)
                    j = i
                    if state == STATE_MODIFIED:
                        while (
                            j < count
                            and blocks[j] == block
                            and cache_ids[j] == cache_id
                        ):
                            j += 1
                    elif state > 0:
                        while (
                            j < count
                            and blocks[j] == block
                            and cache_ids[j] == cache_id
                            and not write_flags[j]
                        ):
                            j += 1
                    if j > i:
                        cache.touch_repeats(block, j - i)
                        folded += j - i
                        i = j
        _BATCH_CHUNKS.inc()
        _BATCH_ACCESSES.add(count)
        _BATCH_FOLDED.add(folded)
        _BATCH_SCALAR.add(count - folded)
        return count

    def _access_block(
        self, block: int, local: int, home: int, cache_id: int, is_write: bool
    ) -> None:
        """Execute one access whose address math is already resolved."""
        cache = self._tracked[cache_id]
        state = cache.touch_code(block, is_write)
        if state >= 0:
            if is_write and state != STATE_MODIFIED:
                self._write_hit_upgrade(block, local, home, cache_id, cache, state)
            return
        if self._l2_banks is not None:
            bank = self._l2_banks[home]
            if bank.touch_code(block, is_write) < 0:
                bank.fill_miss_code(block)
        if is_write:
            self._handle_write_miss(
                block, local, home, cache_id, cache, self._directories[home]
            )
        else:
            self._handle_read_miss(
                block, local, home, cache_id, cache, self._directories[home]
            )

    # -- protocol actions ----------------------------------------------------------
    def _write_hit_upgrade(
        self,
        block: int,
        local: int,
        home: int,
        cache_id: int,
        cache: SetAssociativeCache,
        state: int,
    ) -> None:
        """Write hit in E or S state (M write hits never reach here)."""
        if state == STATE_EXCLUSIVE:
            # Silent E -> M upgrade; no directory interaction needed.
            cache.set_state_code(block, STATE_MODIFIED)
            return
        # S -> M upgrade: the home must invalidate the other sharers.
        core = self._core_of[cache_id]
        if self._track_traffic:
            traffic = self._traffic
            traffic.messages[_GET_MODIFIED] += 1
            traffic.hops += self._hop_table[core][home]
            traffic.bytes_transferred += _GET_MODIFIED_BYTES
        result = self._directories[home].acquire_exclusive(local, cache_id)
        self._apply_coherence_invalidations(block, result, home, requester=cache_id)
        if result.invalidations:
            self._apply_forced_invalidations(result.invalidations, home)
        cache.set_state_code(block, STATE_MODIFIED)

    def _handle_write_miss(
        self,
        block: int,
        local: int,
        home: int,
        cache_id: int,
        cache: SetAssociativeCache,
        directory: Directory,
    ) -> None:
        core = self._core_of[cache_id]
        track = self._track_traffic
        if track:
            traffic = self._traffic
            hop_table = self._hop_table
            traffic.messages[_GET_MODIFIED] += 1
            traffic.hops += hop_table[core][home]
            traffic.bytes_transferred += _GET_MODIFIED_BYTES
        result = directory.acquire_exclusive(local, cache_id)
        self._apply_coherence_invalidations(block, result, home, requester=cache_id)
        if result.invalidations:
            self._apply_forced_invalidations(result.invalidations, home)
        if track:
            traffic.messages[_DATA] += 1
            traffic.hops += hop_table[home][core]
            traffic.bytes_transferred += _DATA_BYTES
        victim = cache.fill_miss_code(block, STATE_MODIFIED, True)
        if victim >= 0:
            self._evict_notify(victim, cache_id, core, cache.victim_dirty)

    def _handle_read_miss(
        self,
        block: int,
        local: int,
        home: int,
        cache_id: int,
        cache: SetAssociativeCache,
        directory: Directory,
    ) -> None:
        core = self._core_of[cache_id]
        track = self._track_traffic
        if track:
            traffic = self._traffic
            hop_table = self._hop_table
            traffic.messages[_GET_SHARED] += 1
            traffic.hops += hop_table[core][home]
            traffic.bytes_transferred += _GET_SHARED_BYTES
        found, prior_sharers, result = directory.lookup_add(local, cache_id)
        if found:
            self._downgrade_owner(block, prior_sharers, home, requester=cache_id)
            new_state = STATE_SHARED
        else:
            new_state = STATE_EXCLUSIVE
        if result.invalidations:
            self._apply_forced_invalidations(result.invalidations, home)
        if track:
            traffic.messages[_DATA] += 1
            traffic.hops += hop_table[home][core]
            traffic.bytes_transferred += _DATA_BYTES
        victim = cache.fill_miss_code(block, new_state, False)
        if victim >= 0:
            self._evict_notify(victim, cache_id, core, cache.victim_dirty)

    def _downgrade_owner(
        self, block: int, sharers, home: int, requester: int
    ) -> None:
        """On a read miss, an M/E owner must be downgraded to S."""
        for sharer in sharers:
            if sharer == requester:
                continue
            owner_cache = self._tracked[sharer]
            state = owner_cache.state_code_of(block)
            if state >= STATE_EXCLUSIVE:  # MODIFIED or EXCLUSIVE
                self._record(MessageType.FWD_GET, home, self._core_of[sharer])
                if state == STATE_MODIFIED:
                    self._record(
                        MessageType.PUT_MODIFIED, self._core_of[sharer], home
                    )
                owner_cache.set_state_code(block, STATE_SHARED)

    def _apply_coherence_invalidations(
        self, block: int, result: UpdateResult, home: int, requester: int
    ) -> None:
        """Invalidate the accessed block in every other reported sharer."""
        for sharer in result.coherence_invalidations:
            if sharer == requester:
                continue
            self._record(MessageType.INVALIDATE, home, self._core_of[sharer])
            self._tracked[sharer].invalidate(block)
            self._record(MessageType.INV_ACK, self._core_of[sharer], home)

    def _apply_forced_invalidations(
        self, invalidations: Sequence[Invalidation], home: int
    ) -> None:
        """Invalidate blocks whose directory entries were victimised.

        The directory has already dropped the entry; the private caches
        must drop their copies to preserve the inclusion property between
        the directory and the tracked caches.  Victim addresses arrive in
        slice-local form and are translated back to global block addresses
        before touching the caches.
        """
        for invalidation in invalidations:
            block = self.global_address(invalidation.address, home)
            for sharer in invalidation.caches:
                self._record(
                    MessageType.INVALIDATE, home, self._core_of[sharer]
                )
                self._tracked[sharer].invalidate(block)
                self._record(
                    MessageType.INV_ACK, self._core_of[sharer], home
                )

    def _evict_notify(
        self, victim: int, cache_id: int, core: int, victim_dirty: bool
    ) -> None:
        """Notify the victim's home directory of a private-cache eviction.

        ``core`` is the evicting cache's tile (the caller already has it);
        both miss handlers share this path so eviction traffic accounting
        cannot diverge between reads and writes.
        """
        num_slices = self._num_slices
        victim_home = victim % num_slices
        if self._track_traffic:
            traffic = self._traffic
            traffic.hops += self._hop_table[core][victim_home]
            if victim_dirty:
                traffic.messages[_PUT_MODIFIED] += 1
                traffic.bytes_transferred += _PUT_MODIFIED_BYTES
            else:
                traffic.messages[_PUT_SHARED] += 1
                traffic.bytes_transferred += _PUT_SHARED_BYTES
        self._directories[victim_home].remove_sharer(
            victim // num_slices, cache_id
        )

    # -- consistency checking (used by integration tests) --------------------------
    def check_inclusion(self) -> List[str]:
        """Verify directory/cache consistency; returns a list of violations.

        Two invariants are checked:

        * every block resident in a tracked cache is reported as shared by
          that cache in its home directory slice (no silently untracked
          blocks);
        * every *exact* directory organization reports only true sharers
          (inexact encodings legitimately report supersets and are skipped).
        """
        violations: List[str] = []
        for cache_id, cache in enumerate(self._tracked):
            for block in cache.resident_addresses():
                directory = self._directories[self.home_slice(block)]
                sharers = directory.lookup(self.slice_local_address(block)).sharers
                if cache_id not in sharers:
                    violations.append(
                        f"block {block:#x} resident in cache {cache_id} "
                        f"but not tracked by its home directory"
                    )
        return violations

    # -- helpers ---------------------------------------------------------------------
    def _record(self, message_type: MessageType, source: int, destination: int) -> None:
        if not self._track_traffic:
            return
        # Inlined TrafficStats.record: the counters are plain attributes
        # (the message dict is initialised with every type, so no .get
        # fallback is needed).  The per-miss request/data/eviction messages
        # inline this body directly at their call sites; this method serves
        # the invalidation and downgrade paths.
        traffic = self._traffic
        traffic.messages[message_type] += 1
        traffic.hops += self._hop_table[source][destination]
        traffic.bytes_transferred += MESSAGE_BYTES_BY_TYPE[message_type]
