"""Coherence message types and traffic accounting.

The model is not cycle-accurate, but counting protocol messages (and the
hops they travel, via :class:`~repro.coherence.interconnect.MeshInterconnect`)
lets experiments reason about the *traffic* consequences of directory
decisions — in particular the extra invalidation and re-fetch traffic
caused by forced invalidations and by inexact sharer encodings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict

__all__ = ["MessageType", "TrafficStats", "MESSAGE_BYTES_BY_TYPE", "message_bytes"]


class MessageType(str, Enum):
    """Protocol message classes exchanged between tiles."""

    GET_SHARED = "GetS"          #: read miss request to the home directory
    GET_MODIFIED = "GetM"        #: write miss / upgrade request to the home
    PUT_SHARED = "PutS"          #: clean eviction notification
    PUT_MODIFIED = "PutM"        #: dirty eviction (write-back) notification
    INVALIDATE = "Inv"           #: directory-to-sharer invalidation
    INV_ACK = "InvAck"           #: sharer acknowledgement
    DATA = "Data"                #: data response (from home or owner)
    FWD_GET = "FwdGet"           #: request forwarded to the current owner


# Message payload sizes in bytes: control messages carry an address and a
# handful of command bits (8 B); data messages carry a 64 B cache block plus
# the control header.
_CONTROL_BYTES = 8
_DATA_BYTES = 72


def message_bytes(message_type: MessageType) -> int:
    """Wire size of one message of the given type."""
    if message_type is MessageType.DATA:
        return _DATA_BYTES
    return _CONTROL_BYTES


#: Precomputed wire size per message type, covering every member; the
#: traffic recorders (here and the inlined one in TiledCMP._record) index
#: it unconditionally a few times per access.
MESSAGE_BYTES_BY_TYPE: Dict[MessageType, int] = {
    t: message_bytes(t) for t in MessageType
}


@dataclass
class TrafficStats:
    """Counts of protocol messages and the hops they traversed."""

    messages: Dict[MessageType, int] = field(
        default_factory=lambda: {t: 0 for t in MessageType}
    )
    hops: int = 0
    bytes_transferred: int = 0

    def record(self, message_type: MessageType, hops: int = 0, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        messages = self.messages
        messages[message_type] = messages.get(message_type, 0) + count
        self.hops += hops * count
        self.bytes_transferred += MESSAGE_BYTES_BY_TYPE[message_type] * count

    @property
    def total_messages(self) -> int:
        return sum(self.messages.values())

    @property
    def invalidation_messages(self) -> int:
        return self.messages.get(MessageType.INVALIDATE, 0)

    def merge(self, other: "TrafficStats") -> "TrafficStats":
        merged = TrafficStats()
        for key in set(self.messages) | set(other.messages):
            merged.messages[key] = self.messages.get(key, 0) + other.messages.get(key, 0)
        merged.hops = self.hops + other.hops
        merged.bytes_transferred = self.bytes_transferred + other.bytes_transferred
        return merged
