"""Virtual-to-physical page mapping.

The workload generators lay their footprints out in contiguous *virtual*
regions, but caches and coherence directories are physically indexed: the
operating system allocates physical pages essentially at random, so blocks
that are contiguous in an application's address space end up scattered
across physical memory at page granularity.

This scattering is what makes real directory sets fill *unevenly* — and
the resulting set conflicts are precisely the effect the Sparse-directory
baselines of Figure 12 suffer from.  Feeding the contiguous virtual
addresses directly to the directories would index every set perfectly
uniformly and hide those conflicts entirely, so the coherence system
passes every access through a :class:`PageMapper` that emulates an OS
first-touch physical allocator: the first time a virtual page is seen it
is assigned a random free physical page, and the assignment is remembered
for the rest of the run.

The mapping is deterministic for a given seed, and identical access
streams therefore see identical physical layouts regardless of which
directory organization is being evaluated — exactly the controlled
comparison the paper performs.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import numpy as np

__all__ = ["PageMapper"]


class PageMapper:
    """First-touch random physical page allocator.

    Parameters
    ----------
    page_bytes:
        Page size; Table 1 uses 8 KB pages (scaled-down systems scale the
        page with the caches so the pages-per-directory-set ratio is
        preserved).
    physical_pages:
        Size of the physical page pool to draw from.  The default (2^24
        pages) is far larger than any generated footprint, so allocation
        never fails and collisions are resolved by redrawing.
    seed:
        RNG seed; the same seed reproduces the same layout.
    """

    def __init__(
        self,
        page_bytes: int = 8192,
        physical_pages: int = 1 << 24,
        seed: int = 0,
    ) -> None:
        if page_bytes <= 0:
            raise ValueError("page_bytes must be positive")
        if physical_pages <= 0:
            raise ValueError("physical_pages must be positive")
        self._page_bytes = page_bytes
        self._physical_pages = physical_pages
        self._rng = np.random.default_rng(seed)
        self._page_table: Dict[int, int] = {}
        self._allocated: Set[int] = set()
        # Power-of-two page sizes (every configuration in this library)
        # translate with a shift and a mask instead of a divmod.
        if page_bytes & (page_bytes - 1) == 0:
            self._page_shift: Optional[int] = page_bytes.bit_length() - 1
            self._offset_mask = page_bytes - 1
        else:
            self._page_shift = None
            self._offset_mask = 0

    @property
    def page_bytes(self) -> int:
        return self._page_bytes

    @property
    def pages_mapped(self) -> int:
        """Number of virtual pages touched so far."""
        return len(self._page_table)

    def translate(self, virtual_address: int) -> int:
        """Translate a virtual byte address to its physical byte address."""
        if virtual_address < 0:
            raise ValueError("virtual_address must be non-negative")
        shift = self._page_shift
        if shift is not None:
            virtual_page = virtual_address >> shift
            physical_page = self._page_table.get(virtual_page)
            if physical_page is None:
                physical_page = self._allocate()
                self._page_table[virtual_page] = physical_page
            return (physical_page << shift) | (virtual_address & self._offset_mask)
        virtual_page, offset = divmod(virtual_address, self._page_bytes)
        physical_page = self._page_table.get(virtual_page)
        if physical_page is None:
            physical_page = self._allocate()
            self._page_table[virtual_page] = physical_page
        return physical_page * self._page_bytes + offset

    def translate_batch(self, virtual_addresses: np.ndarray) -> np.ndarray:
        """Translate a whole array of virtual byte addresses at once.

        Equivalent to mapping :meth:`translate` over the array — including
        the first-touch allocation order: unseen pages are allocated in
        order of first occurrence within the array, so interleaving batch
        and scalar translation over the same access stream produces the
        same page table and draws the RNG identically.
        """
        addresses = np.asarray(virtual_addresses, dtype=np.int64)
        if addresses.size == 0:
            return addresses.copy()
        if int(addresses.min()) < 0:
            raise ValueError("virtual_address must be non-negative")
        shift = self._page_shift
        if shift is not None:
            virtual_pages = addresses >> shift
            offsets = addresses & self._offset_mask
        else:
            virtual_pages = addresses // self._page_bytes
            offsets = addresses % self._page_bytes
        unique_pages, first_seen, inverse = np.unique(
            virtual_pages, return_index=True, return_inverse=True
        )
        table = self._page_table
        unique_list = unique_pages.tolist()
        missing = [
            (position, page)
            for page, position in zip(unique_list, first_seen.tolist())
            if page not in table
        ]
        if missing:
            # First-touch order: allocate in stream order, not sorted order.
            missing.sort()
            for _, page in missing:
                table[page] = self._allocate()
        physical_pages = np.fromiter(
            (table[page] for page in unique_list),
            dtype=np.int64,
            count=len(unique_list),
        )[inverse]
        if shift is not None:
            return (physical_pages << shift) | offsets
        return physical_pages * self._page_bytes + offsets

    def translate_blocks(
        self,
        virtual_addresses: np.ndarray,
        offset_bits: int,
        num_slices: int,
    ) -> "Tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Fused whole-chunk address resolution for the coherence system.

        Translates a chunk of virtual byte addresses and derives the three
        arrays every batched access needs: the physical block address, the
        slice-local address (block with the interleaving bits stripped) and
        the home slice.  Equivalent to :meth:`translate_batch` followed by
        a shift and a divmod; fused here so the batch front-end performs
        one call per chunk and the interleaving rule stays written in one
        place alongside the translation it depends on.
        """
        physical = self.translate_batch(virtual_addresses)
        blocks = physical >> offset_bits
        locals_, homes = np.divmod(blocks, num_slices)
        return blocks, locals_, homes

    def _allocate(self) -> int:
        if len(self._allocated) >= self._physical_pages:
            raise RuntimeError("physical page pool exhausted")
        while True:
            candidate = int(self._rng.integers(0, self._physical_pages))
            if candidate not in self._allocated:
                self._allocated.add(candidate)
                return candidate
