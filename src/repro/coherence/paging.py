"""Virtual-to-physical page mapping.

The workload generators lay their footprints out in contiguous *virtual*
regions, but caches and coherence directories are physically indexed: the
operating system allocates physical pages essentially at random, so blocks
that are contiguous in an application's address space end up scattered
across physical memory at page granularity.

This scattering is what makes real directory sets fill *unevenly* — and
the resulting set conflicts are precisely the effect the Sparse-directory
baselines of Figure 12 suffer from.  Feeding the contiguous virtual
addresses directly to the directories would index every set perfectly
uniformly and hide those conflicts entirely, so the coherence system
passes every access through a :class:`PageMapper` that emulates an OS
first-touch physical allocator: the first time a virtual page is seen it
is assigned a random free physical page, and the assignment is remembered
for the rest of the run.

The mapping is deterministic for a given seed, and identical access
streams therefore see identical physical layouts regardless of which
directory organization is being evaluated — exactly the controlled
comparison the paper performs.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import numpy as np

__all__ = ["PageMapper"]


class PageMapper:
    """First-touch random physical page allocator.

    Parameters
    ----------
    page_bytes:
        Page size; Table 1 uses 8 KB pages (scaled-down systems scale the
        page with the caches so the pages-per-directory-set ratio is
        preserved).
    physical_pages:
        Size of the physical page pool to draw from.  The default (2^24
        pages) is far larger than any generated footprint, so allocation
        never fails and collisions are resolved by redrawing.
    seed:
        RNG seed; the same seed reproduces the same layout.
    """

    def __init__(
        self,
        page_bytes: int = 8192,
        physical_pages: int = 1 << 24,
        seed: int = 0,
    ) -> None:
        if page_bytes <= 0:
            raise ValueError("page_bytes must be positive")
        if physical_pages <= 0:
            raise ValueError("physical_pages must be positive")
        self._page_bytes = page_bytes
        self._physical_pages = physical_pages
        self._rng = np.random.default_rng(seed)
        self._page_table: Dict[int, int] = {}
        self._allocated: Set[int] = set()
        # Dense gather cache of ``_page_table`` (index = virtual page,
        # -1 = not cached), grown on demand by translate_batch: once a
        # run's footprint is touched, whole-chunk translation collapses
        # to a single fancy-index gather instead of a unique/dict walk.
        self._phys_cache: Optional[np.ndarray] = None
        # Power-of-two page sizes (every configuration in this library)
        # translate with a shift and a mask instead of a divmod.
        if page_bytes & (page_bytes - 1) == 0:
            self._page_shift: Optional[int] = page_bytes.bit_length() - 1
            self._offset_mask = page_bytes - 1
        else:
            self._page_shift = None
            self._offset_mask = 0

    @property
    def page_bytes(self) -> int:
        return self._page_bytes

    @property
    def pages_mapped(self) -> int:
        """Number of virtual pages touched so far."""
        return len(self._page_table)

    def translate(self, virtual_address: int) -> int:
        """Translate a virtual byte address to its physical byte address."""
        if virtual_address < 0:
            raise ValueError("virtual_address must be non-negative")
        shift = self._page_shift
        if shift is not None:
            virtual_page = virtual_address >> shift
            physical_page = self._page_table.get(virtual_page)
            if physical_page is None:
                physical_page = self._allocate()
                self._page_table[virtual_page] = physical_page
            return (physical_page << shift) | (virtual_address & self._offset_mask)
        virtual_page, offset = divmod(virtual_address, self._page_bytes)
        physical_page = self._page_table.get(virtual_page)
        if physical_page is None:
            physical_page = self._allocate()
            self._page_table[virtual_page] = physical_page
        return physical_page * self._page_bytes + offset

    def translate_batch(self, virtual_addresses: np.ndarray) -> np.ndarray:
        """Translate a whole array of virtual byte addresses at once.

        Equivalent to mapping :meth:`translate` over the array — including
        the first-touch allocation order: unseen pages are allocated in
        order of first occurrence within the array, so interleaving batch
        and scalar translation over the same access stream produces the
        same page table and draws the RNG identically.
        """
        addresses = np.asarray(virtual_addresses, dtype=np.int64)
        if addresses.size == 0:
            return addresses.copy()
        if int(addresses.min()) < 0:
            raise ValueError("virtual_address must be non-negative")
        shift = self._page_shift
        if shift is not None:
            virtual_pages = addresses >> shift
            offsets = addresses & self._offset_mask
        else:
            virtual_pages = addresses // self._page_bytes
            offsets = addresses % self._page_bytes
        physical_pages = self._gather_pages(virtual_pages)
        if shift is not None:
            return (physical_pages << shift) | offsets
        return physical_pages * self._page_bytes + offsets

    #: Dense-cache ceiling: footprints touching virtual pages beyond this
    #: index keep the dict-walk path instead of materialising a huge array.
    _PHYS_CACHE_MAX_PAGES = 1 << 22

    def _gather_pages(self, virtual_pages: np.ndarray) -> np.ndarray:
        """Physical page for every virtual page, first-touch allocating.

        Steady state (all pages mapped and cached) is one fancy-index
        gather; misses fall back to the historical unique/dict walk —
        allocating unseen pages in order of first occurrence within the
        chunk, exactly like mapping :meth:`translate` over the stream.
        """
        cache = self._phys_cache
        max_page = int(virtual_pages.max())
        if max_page >= self._PHYS_CACHE_MAX_PAGES:
            return self._gather_pages_uncached(virtual_pages)
        if cache is None or max_page >= cache.size:
            size = max(1024, 2 * (max_page + 1))
            grown = np.full(size, -1, dtype=np.int64)
            if cache is not None:
                grown[: cache.size] = cache
            elif self._page_table:
                # Adopt mappings made through the scalar translate path.
                for page, phys in self._page_table.items():
                    if page < size:
                        grown[page] = phys
            self._phys_cache = cache = grown
        physical_pages = cache[virtual_pages]
        miss_mask = physical_pages < 0
        if miss_mask.any():
            miss_pages = virtual_pages[miss_mask]
            unique_pages, first_seen = np.unique(miss_pages, return_index=True)
            table = self._page_table
            missing = []
            for page, position in zip(unique_pages.tolist(), first_seen.tolist()):
                phys = table.get(page)
                if phys is None:
                    missing.append((position, page))
                else:  # mapped by scalar translate, not yet cached
                    cache[page] = phys
            if missing:
                # First-touch order: allocate in stream order, not sorted
                # order (selection under the miss mask preserves it).
                missing.sort()
                for _, page in missing:
                    phys = self._allocate()
                    table[page] = phys
                    cache[page] = phys
            physical_pages = cache[virtual_pages]
        return physical_pages

    def _gather_pages_uncached(self, virtual_pages: np.ndarray) -> np.ndarray:
        """The historical unique/dict-walk gather (sparse huge footprints)."""
        unique_pages, first_seen, inverse = np.unique(
            virtual_pages, return_index=True, return_inverse=True
        )
        table = self._page_table
        unique_list = unique_pages.tolist()
        missing = [
            (position, page)
            for page, position in zip(unique_list, first_seen.tolist())
            if page not in table
        ]
        if missing:
            # First-touch order: allocate in stream order, not sorted order.
            missing.sort()
            for _, page in missing:
                table[page] = self._allocate()
        return np.fromiter(
            (table[page] for page in unique_list),
            dtype=np.int64,
            count=len(unique_list),
        )[inverse]

    def translate_blocks(
        self,
        virtual_addresses: np.ndarray,
        offset_bits: int,
        num_slices: int,
    ) -> "Tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Fused whole-chunk address resolution for the coherence system.

        Translates a chunk of virtual byte addresses and derives the three
        arrays every batched access needs: the physical block address, the
        slice-local address (block with the interleaving bits stripped) and
        the home slice.  Equivalent to :meth:`translate_batch` followed by
        a shift and a divmod; fused here so the batch front-end performs
        one call per chunk and the interleaving rule stays written in one
        place alongside the translation it depends on.
        """
        physical = self.translate_batch(virtual_addresses)
        blocks = physical >> offset_bits
        locals_, homes = np.divmod(blocks, num_slices)
        return blocks, locals_, homes

    def _allocate(self) -> int:
        if len(self._allocated) >= self._physical_pages:
            raise RuntimeError("physical page pool exhausted")
        while True:
            candidate = int(self._rng.integers(0, self._physical_pages))
            if candidate not in self._allocated:
                self._allocated.add(candidate)
                return candidate
