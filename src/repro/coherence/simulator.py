"""Trace-driven simulation harness.

The paper's methodology (Section 5) warms the micro-architectural state
before measuring; :class:`TraceSimulator` mirrors that: a configurable
number of warm-up accesses are executed with statistics discarded, then a
measurement window is executed during which directory statistics,
occupancy samples, cache hit rates and traffic are collected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.cache.cache import CacheStats
from repro.coherence.messages import TrafficStats
from repro.coherence.system import MemoryAccess, TiledCMP
from repro.directories.base import DirectoryStats

__all__ = ["SimulationResult", "TraceSimulator"]


@dataclass
class SimulationResult:
    """Everything measured during the measurement window of one run."""

    accesses: int
    directory_stats: DirectoryStats
    per_slice_stats: List[DirectoryStats]
    traffic: TrafficStats
    cache_hit_rate: float
    average_occupancy: float
    occupancy_samples: List[float] = field(default_factory=list)

    @property
    def average_insertion_attempts(self) -> float:
        return self.directory_stats.average_insertion_attempts

    @property
    def forced_invalidation_rate(self) -> float:
        return self.directory_stats.forced_invalidation_rate

    def attempt_distribution(self) -> Dict[int, float]:
        return self.directory_stats.attempt_distribution()


class TraceSimulator:
    """Runs a stream of :class:`MemoryAccess` through a :class:`TiledCMP`."""

    def __init__(
        self,
        system: TiledCMP,
        warmup_accesses: int = 0,
        occupancy_sample_interval: int = 1000,
    ) -> None:
        if warmup_accesses < 0:
            raise ValueError("warmup_accesses must be non-negative")
        if occupancy_sample_interval <= 0:
            raise ValueError("occupancy_sample_interval must be positive")
        self._system = system
        self._warmup = warmup_accesses
        self._sample_interval = occupancy_sample_interval

    @property
    def system(self) -> TiledCMP:
        return self._system

    def run(
        self,
        trace: Iterable[MemoryAccess],
        max_accesses: Optional[int] = None,
    ) -> SimulationResult:
        """Execute the trace and return measurement-window statistics.

        ``max_accesses`` bounds the *measured* accesses (the warm-up is on
        top of it); an unbounded generator trace therefore still
        terminates.
        """
        system = self._system
        occupancy_samples: List[float] = []
        measured = 0
        iterator: Iterator[MemoryAccess] = iter(trace)

        for position, access in enumerate(iterator):
            if position == self._warmup:
                system.reset_stats()
            system.access(access)
            in_measurement = position >= self._warmup
            if in_measurement:
                measured += 1
                if measured % self._sample_interval == 0:
                    occupancy_samples.append(system.sample_occupancy())
                if max_accesses is not None and measured >= max_accesses:
                    break

        # Always take at least one occupancy sample so short runs report a
        # meaningful average instead of zero.
        if measured > 0 and not occupancy_samples:
            occupancy_samples.append(system.sample_occupancy())

        per_slice = [directory.stats for directory in system.directories]
        merged = system.directory_stats()
        hits = sum(cache.stats.hits for cache in system.tracked_caches)
        accesses = sum(cache.stats.accesses for cache in system.tracked_caches)
        hit_rate = hits / accesses if accesses else 0.0
        average_occupancy = (
            sum(occupancy_samples) / len(occupancy_samples)
            if occupancy_samples
            else 0.0
        )
        return SimulationResult(
            accesses=measured,
            directory_stats=merged,
            per_slice_stats=list(per_slice),
            traffic=system.traffic,
            cache_hit_rate=hit_rate,
            average_occupancy=average_occupancy,
            occupancy_samples=occupancy_samples,
        )
