"""Trace-driven simulation harness.

The paper's methodology (Section 5) warms the micro-architectural state
before measuring; :class:`TraceSimulator` mirrors that: a configurable
number of warm-up accesses are executed with statistics discarded, then a
measurement window is executed during which directory statistics,
occupancy samples, cache hit rates and traffic are collected.

Two entry points drive the same measurement logic:

* :meth:`TraceSimulator.run` consumes a stream of
  :class:`~repro.coherence.system.MemoryAccess` objects (the original,
  fully general interface);
* :meth:`TraceSimulator.run_chunks` consumes *trace chunks* — tuples of
  parallel ``(cores, addresses, is_writes, is_instructions)`` sequences
  produced by :meth:`~repro.workloads.base.Workload.trace_chunks` — and
  feeds whole sub-slices into
  :meth:`~repro.coherence.system.TiledCMP.access_batch`.  Chunks are cut
  only where the measurement semantics demand it (the warm-up boundary,
  occupancy-sample points, the measurement end), so the per-access math
  runs vectorised and no per-element Python conversion happens here.

Both paths execute accesses in the same order with the same warm-up and
sampling semantics, so their results are bit-identical.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.coherence.messages import TrafficStats
from repro.coherence.system import MemoryAccess, TiledCMP
from repro.directories.base import DirectoryStats
from repro.obs.metrics import counter as _obs_counter
from repro.obs.timeline import Timeline
from repro.obs.tracing import TRACER as _TRACER

__all__ = ["SimulationResult", "TraceSimulator", "TraceChunk"]

# Phase spans are opened per chunk / per sample point — never per access
# (DESIGN.md "Observability").  ``trace_production`` times the workload
# generator (or replay mmap) producing the next chunk; ``translate`` and
# ``batch_kernel`` are opened inside ``TiledCMP.access_batch``;
# ``occupancy_sampling`` times the directory occupancy probes.
_WARMUP_ACCESSES = _obs_counter(
    "sim.run.warmup_accesses", help="accesses executed during warm-up"
)
_MEASURED_ACCESSES = _obs_counter(
    "sim.run.measured_accesses", help="accesses executed while measuring"
)
_OCC_SAMPLES = _obs_counter(
    "sim.run.occupancy_samples", help="directory occupancy samples taken"
)
_SAMPLED_WINDOWS = _obs_counter(
    "sim.run.sampled_windows", help="SMARTS measurement windows completed"
)
_TIMELINE_SAMPLES = _obs_counter(
    "sim.run.timeline_samples", help="full timeline channel samples taken"
)

#: Parallel per-access field sequences: (cores, addresses, writes, instrs).
TraceChunk = Tuple[Sequence[int], Sequence[int], Sequence[bool], Sequence[bool]]


def _chunk_arrays(cores, addresses, writes, instrs):
    """Chunk fields as numpy arrays, converted at most once per chunk.

    ``access_batch`` is called once per measurement sub-slice (sample
    points, warm-up boundary); converting list-backed chunks here keeps
    that conversion O(chunk) instead of O(chunk x sub-slices).  Array
    inputs (replays, vectorised generators) pass through untouched.
    """
    return (
        np.asarray(cores),
        np.asarray(addresses),
        np.asarray(writes),
        np.asarray(instrs),
    )


@dataclass
class SimulationResult:
    """Everything measured during the measurement window of one run."""

    accesses: int
    directory_stats: DirectoryStats
    per_slice_stats: List[DirectoryStats]
    traffic: TrafficStats
    cache_hit_rate: float
    average_occupancy: float
    #: The run's counter timeline.  Always carries the occupancy channel
    #: (the store of what used to be an ad-hoc ``List[float]``); the full
    #: channel set exists only when the simulator was built with a
    #: ``timeline_interval``.
    timeline: Optional[Timeline] = None

    @property
    def occupancy_samples(self) -> List[float]:
        """Occupancy samples as plain floats (the pre-timeline interface)."""
        if self.timeline is None:
            return []
        return self.timeline.occupancy_list()

    @property
    def average_insertion_attempts(self) -> float:
        return self.directory_stats.average_insertion_attempts

    @property
    def forced_invalidation_rate(self) -> float:
        return self.directory_stats.forced_invalidation_rate

    def attempt_distribution(self) -> Dict[int, float]:
        return self.directory_stats.attempt_distribution()


class TraceSimulator:
    """Runs a stream of memory accesses through a :class:`TiledCMP`."""

    def __init__(
        self,
        system: TiledCMP,
        warmup_accesses: int = 0,
        occupancy_sample_interval: int = 1000,
        timeline_interval: Optional[int] = None,
    ) -> None:
        if warmup_accesses < 0:
            raise ValueError("warmup_accesses must be non-negative")
        if occupancy_sample_interval <= 0:
            raise ValueError("occupancy_sample_interval must be positive")
        if timeline_interval is not None and timeline_interval <= 0:
            raise ValueError("timeline_interval must be positive")
        self._system = system
        self._warmup = warmup_accesses
        self._sample_interval = occupancy_sample_interval
        self._timeline_interval = timeline_interval

    @property
    def system(self) -> TiledCMP:
        return self._system

    def _make_timeline(self, mode: str = "interval") -> Timeline:
        return Timeline(
            occupancy_interval=self._sample_interval,
            interval=self._timeline_interval,
            banks=len(self._system.directories),
            mode=mode,
        )

    def run(
        self,
        trace: Iterable[MemoryAccess],
        max_accesses: Optional[int] = None,
    ) -> SimulationResult:
        """Execute the trace and return measurement-window statistics.

        ``max_accesses`` bounds the *measured* accesses (the warm-up is on
        top of it); an unbounded generator trace therefore still
        terminates.  The iterator is consumed exactly up to the last
        executed access (no prefetching), so callers may keep using its
        tail afterwards.
        """
        system = self._system
        warmup = self._warmup
        interval = self._sample_interval
        tl_interval = self._timeline_interval
        timeline = self._make_timeline()
        measured = 0
        iterator: Iterator[MemoryAccess] = iter(trace)

        for position, access in enumerate(iterator):
            if position == warmup:
                system.reset_stats()
            system.access(access)
            if position >= warmup:
                measured += 1
                if measured % interval == 0:
                    timeline.record_occupancy(system.sample_occupancy())
                if tl_interval is not None and measured % tl_interval == 0:
                    timeline.sample(system)
                    _TIMELINE_SAMPLES.inc()
                if max_accesses is not None and measured >= max_accesses:
                    break

        return self._build_result(measured, timeline)

    def run_chunks(
        self,
        chunks: Iterable[TraceChunk],
        max_accesses: Optional[int] = None,
    ) -> SimulationResult:
        """Execute a chunked trace; semantics identical to :meth:`run`.

        Each chunk is executed through the system's batched front-end in
        sub-slices that end exactly at the warm-up boundary, at every
        occupancy-sample point, at every timeline-sample point and at the
        measurement end, so warm-up and sampling behave per-access even
        though execution is batched.  Because the timeline only ever
        observes the system at these sub-slice boundaries — where the
        scalar and vector chunk kernels are bit-identical — enabling it
        cannot change any measured statistic, and both kernels produce
        byte-identical timelines.
        """
        system = self._system
        access_batch = system.access_batch
        warmup = self._warmup
        interval = self._sample_interval
        tl_interval = self._timeline_interval
        timeline = self._make_timeline()
        position = 0
        measured = 0
        until_sample = interval
        until_timeline = tl_interval
        # A non-positive bound behaves like the original ``measured >= max``
        # check: the first measured access trips it.
        remaining = max(1, max_accesses) if max_accesses is not None else None

        # Chunk production is pulled manually (instead of a ``for`` over
        # ``chunks``) so the generator's own cost lands in its span.
        iterator = iter(chunks)
        # The chunk kernels churn through short-lived, acyclic objects
        # (zip rows, candidate index tuples, pooled sharer sets), so
        # generational collection passes can never free anything here --
        # they only show up as pauses in the middle of the measured
        # region.  Collection is paused for the loop and restored after.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                with _TRACER.span("trace_production"):
                    chunk = next(iterator, None)
                if chunk is None:
                    break
                cores, addresses, writes, instrs = _chunk_arrays(*chunk)
                length = len(cores)
                offset = 0
                while offset < length:
                    if position < warmup:
                        span = min(length - offset, warmup - position)
                        access_batch(cores, addresses, writes, instrs, offset, offset + span)
                        position += span
                        offset += span
                        _WARMUP_ACCESSES.add(span)
                        continue
                    if position == warmup:
                        system.reset_stats()
                    span = length - offset
                    if span > until_sample:
                        span = until_sample
                    if until_timeline is not None and span > until_timeline:
                        span = until_timeline
                    if remaining is not None and span > remaining:
                        span = remaining
                    access_batch(cores, addresses, writes, instrs, offset, offset + span)
                    position += span
                    offset += span
                    measured += span
                    until_sample -= span
                    _MEASURED_ACCESSES.add(span)
                    if until_sample == 0:
                        with _TRACER.span("occupancy_sampling"):
                            timeline.record_occupancy(system.sample_occupancy())
                        _OCC_SAMPLES.inc()
                        until_sample = interval
                    if until_timeline is not None:
                        until_timeline -= span
                        if until_timeline == 0:
                            with _TRACER.span("timeline_sampling"):
                                timeline.sample(system)
                            _TIMELINE_SAMPLES.inc()
                            until_timeline = tl_interval
                    if remaining is not None:
                        remaining -= span
                        if remaining == 0:
                            return self._build_result(measured, timeline)
        finally:
            if gc_was_enabled:
                gc.enable()

        return self._build_result(measured, timeline)

    def run_sampled(
        self,
        chunks: Iterable[TraceChunk],
        measure_window: int,
        skip_window: int,
        max_windows: Optional[int] = None,
    ) -> Tuple[SimulationResult, int]:
        """SMARTS-style systematic sampling over a chunked trace.

        The stream is consumed as alternating windows: ``skip_window``
        accesses executed for state only (caches, directories and the page
        mapper all advance, but statistics are discarded), then
        ``measure_window`` accesses measured.  Statistics from all measured
        windows are merged, so the returned
        :class:`SimulationResult` covers *only* the measured windows —
        every skipped access doubles as functional warming for the window
        that follows it, which is what makes sparse sampling of a long
        trace representative.

        The constructor's ``warmup_accesses`` is not applied here (each
        window brings its own warming); windows end when ``max_windows``
        is reached or the trace runs dry.  A partially measured final
        window is discarded — including its pending occupancy samples.
        Returns ``(result, windows_measured)``.

        When a ``timeline_interval`` was configured, the full channel set
        samples once per *completed* window (mode ``"window"``): the
        per-window statistics reset makes a finer cadence meaningless for
        cumulative counters, and one point per window is exactly the
        federated per-window summary the merge reports.
        """
        if measure_window <= 0:
            raise ValueError("measure_window must be positive")
        if skip_window < 0:
            raise ValueError("skip_window must be non-negative")
        if max_windows is not None and max_windows <= 0:
            raise ValueError("max_windows must be positive")
        system = self._system
        access_batch = system.access_batch
        interval = self._sample_interval

        merged = None  # DirectoryStats of all measured windows
        per_slice: Optional[List] = None
        traffic = TrafficStats()
        hits = 0
        cache_accesses = 0
        measured_total = 0
        windows = 0
        timeline = self._make_timeline(mode="window")

        measuring = skip_window == 0
        remaining = measure_window if measuring else skip_window
        if measuring:
            system.reset_stats()
            timeline.mark_reset()
        until_sample = interval
        # Occupancy samples buffer per window and flush only when the
        # window completes, preserving the discard-partial-window rule.
        window_samples: List[float] = []
        done = False

        iterator = iter(chunks)
        while True:
            with _TRACER.span("trace_production"):
                chunk = next(iterator, None)
            if chunk is None:
                break
            cores, addresses, writes, instrs = _chunk_arrays(*chunk)
            length = len(cores)
            offset = 0
            while offset < length:
                span = min(length - offset, remaining)
                if measuring and span > until_sample:
                    span = until_sample
                access_batch(cores, addresses, writes, instrs, offset, offset + span)
                offset += span
                remaining -= span
                if measuring:
                    until_sample -= span
                    _MEASURED_ACCESSES.add(span)
                    if until_sample == 0:
                        with _TRACER.span("occupancy_sampling"):
                            window_samples.append(system.sample_occupancy())
                        _OCC_SAMPLES.inc()
                        until_sample = interval
                else:
                    _WARMUP_ACCESSES.add(span)
                if remaining == 0:
                    if measuring:
                        # Window complete: fold its statistics into the totals.
                        window_stats = system.directory_stats()
                        merged = (
                            window_stats if merged is None else merged.merge(window_stats)
                        )
                        # Snapshot (merge into a fresh object), never alias the
                        # live stats: the next skip window keeps mutating them.
                        slices = [
                            DirectoryStats().merge(d.stats) for d in system.directories
                        ]
                        if per_slice is None:
                            per_slice = slices
                        else:
                            per_slice = [
                                acc.merge(cur) for acc, cur in zip(per_slice, slices)
                            ]
                        traffic = traffic.merge(system.traffic)
                        hits += sum(c.stats.hits for c in system.tracked_caches)
                        cache_accesses += sum(
                            c.stats.accesses for c in system.tracked_caches
                        )
                        if not window_samples:
                            window_samples.append(system.sample_occupancy())
                        timeline.record_occupancy_many(window_samples)
                        window_samples = []
                        if timeline.enabled:
                            with _TRACER.span("timeline_sampling"):
                                timeline.sample(system)
                            _TIMELINE_SAMPLES.inc()
                        measured_total += measure_window
                        windows += 1
                        _SAMPLED_WINDOWS.inc()
                        if max_windows is not None and windows >= max_windows:
                            done = True
                            break
                        measuring = skip_window == 0
                        remaining = skip_window if skip_window else measure_window
                        if measuring:
                            system.reset_stats()
                            timeline.mark_reset()
                            until_sample = interval
                    else:
                        measuring = True
                        remaining = measure_window
                        system.reset_stats()
                        timeline.mark_reset()
                        until_sample = interval
            if done:
                break

        hit_rate = hits / cache_accesses if cache_accesses else 0.0
        occupancy_samples = timeline.occupancy_list()
        average_occupancy = (
            sum(occupancy_samples) / len(occupancy_samples) if occupancy_samples else 0.0
        )
        if merged is None:
            merged = DirectoryStats()
            per_slice = [DirectoryStats() for _ in system.directories]
        timeline.publish_gauges()
        result = SimulationResult(
            accesses=measured_total,
            directory_stats=merged,
            per_slice_stats=list(per_slice or []),
            traffic=traffic,
            cache_hit_rate=hit_rate,
            average_occupancy=average_occupancy,
            timeline=timeline,
        )
        return result, windows

    def _build_result(self, measured: int, timeline: Timeline) -> SimulationResult:
        """Assemble the measurement-window statistics (shared by both loops)."""
        system = self._system
        # Always take at least one occupancy sample so short runs report a
        # meaningful average instead of zero; same guarantee for the full
        # channel set so an enabled timeline is never empty.
        if measured > 0 and not timeline.num_samples("occupancy"):
            timeline.record_occupancy(system.sample_occupancy())
        if timeline.enabled and measured > 0 and not timeline.num_samples("occupancy_banks"):
            timeline.sample(system)
            _TIMELINE_SAMPLES.inc()
        occupancy_samples = timeline.occupancy_list()

        per_slice = [directory.stats for directory in system.directories]
        merged = system.directory_stats()
        hits = sum(cache.stats.hits for cache in system.tracked_caches)
        accesses = sum(cache.stats.accesses for cache in system.tracked_caches)
        hit_rate = hits / accesses if accesses else 0.0
        average_occupancy = (
            sum(occupancy_samples) / len(occupancy_samples)
            if occupancy_samples
            else 0.0
        )
        timeline.publish_gauges()
        return SimulationResult(
            accesses=measured,
            directory_stats=merged,
            per_slice_stats=list(per_slice),
            traffic=system.traffic,
            cache_hit_rate=hit_rate,
            average_occupancy=average_occupancy,
            timeline=timeline,
        )
