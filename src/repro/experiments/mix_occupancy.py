"""Multi-programmed mix sweep — occupancy and forced invalidations.

A scenario class the paper could not explore: its Flexus traces are
single-application, so every figure assumes all 16 cores run one program.
Consolidated servers instead co-schedule programs on disjoint core groups,
which changes what the directory sees — a mostly-private program (ocean)
sharing a tile with a heavily-shared one (Apache) contributes most of the
live directory entries, while the server program contributes most of the
write-upgrade and invalidation activity.

This driver sweeps the chosen Cuckoo design over a matrix of two-program
mixes (every unordered pair drawn from a program pool, each program on
half the cores, via :class:`~repro.traces.mix.MixWorkload`) on both system
configurations, and reports directory occupancy (vs. the 1x worst case)
and the forced-invalidation rate per mix.  Single-program baselines ride
along so each mix can be read against its constituents.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.frame import Column, SweepFrame
from repro.analysis.tables import format_percentage
from repro.engine import ParallelRunner, RunGrid, RunSpec, serial_runner
from repro.experiments import common

__all__ = ["MixOccupancyResult", "DEFAULT_PROGRAMS", "mixes_for", "run", "grid", "format_table"]

#: Default program pool: two server workloads with large shared footprints
#: and two with dominantly private footprints, so the pair matrix spans the
#: sharing spectrum.
DEFAULT_PROGRAMS = ("Apache", "Oracle", "Qry17", "ocean")


def mixes_for(programs: Sequence[str], num_cores: int = 16) -> List[str]:
    """Every unordered pair of ``programs``, each on half the cores."""
    if num_cores % 2 != 0:
        raise ValueError("num_cores must be even to split across two programs")
    half = num_cores // 2
    return [f"{half}x{a}+{half}x{b}" for a, b in combinations(programs, 2)]


@dataclass
class MixOccupancyResult:
    """Occupancy and invalidation rate per scenario and configuration.

    ``scenarios`` maps scenario label (a mix spec or a single-program
    baseline name) to ``{"Shared L2": (occupancy, invalidation_rate),
    "Private L2": ...}``.
    """

    scenarios: Dict[str, Dict[str, Tuple[float, float]]]
    programs: Tuple[str, ...]

    def mixes(self) -> List[str]:
        return [label for label in self.scenarios if "+" in label]


def _spec(
    scenario: str,
    tracked_level: str,
    num_cores: int,
    scale: int,
    measure_accesses: int,
    seed: int,
) -> RunSpec:
    """One simulation point; mixes are routed through ``RunSpec.mix``."""
    return RunSpec(
        workload=scenario,
        tracked_level=tracked_level,
        organization="cuckoo",
        ways=4,
        provisioning=1.0,
        num_cores=num_cores,
        scale=scale,
        seed=seed,
        measure_accesses=measure_accesses,
        mix=scenario if "+" in scenario else None,
    )


def grid(
    workloads: Optional[Sequence[str]] = None,
    num_cores: int = 16,
    scale: int = common.DEFAULT_SCALE,
    measure_accesses: int = common.DEFAULT_MEASURE_ACCESSES,
    seed: int = 0,
) -> RunGrid:
    """The sweep: every pair mix plus the single-program baselines.

    ``workloads`` is the program *pool* the pair matrix is drawn from, not
    the point list (the engine's ``--workloads`` flag therefore narrows the
    matrix).
    """
    programs = tuple(workloads) if workloads is not None else DEFAULT_PROGRAMS
    scenarios = list(programs) + mixes_for(programs, num_cores)
    return RunGrid(
        _spec(scenario, level, num_cores, scale, measure_accesses, seed)
        for level in ("L1", "L2")
        for scenario in scenarios
    )


def run(
    workloads: Optional[Sequence[str]] = None,
    num_cores: int = 16,
    scale: int = common.DEFAULT_SCALE,
    measure_accesses: int = common.DEFAULT_MEASURE_ACCESSES,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> MixOccupancyResult:
    """Execute the mix matrix through the engine."""
    programs = tuple(workloads) if workloads is not None else DEFAULT_PROGRAMS
    runner = runner if runner is not None else serial_runner()
    report = runner.run(grid(programs, num_cores, scale, measure_accesses, seed))
    scenarios: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for scenario in list(programs) + mixes_for(programs, num_cores):
        per_level: Dict[str, Tuple[float, float]] = {}
        for level, label in (("L1", "Shared L2"), ("L2", "Private L2")):
            point = report.result_for(
                _spec(scenario, level, num_cores, scale, measure_accesses, seed)
            )
            per_level[label] = (
                point.occupancy_vs_worst_case,
                point.forced_invalidation_rate,
            )
        scenarios[scenario] = per_level
    return MixOccupancyResult(scenarios=scenarios, programs=programs)


def format_table(result: MixOccupancyResult) -> str:
    frame = SweepFrame.from_rows(
        {
            "scenario": label,
            "shared_occupancy": per_level["Shared L2"][0],
            "shared_invalidations": per_level["Shared L2"][1],
            "private_occupancy": per_level["Private L2"][0],
            "private_invalidations": per_level["Private L2"][1],
        }
        for label, per_level in result.scenarios.items()
    )
    occupancy = lambda value: format_percentage(value, digits=1)  # noqa: E731
    invalidations = lambda value: format_percentage(value, digits=3)  # noqa: E731
    return frame.render(
        [
            Column("Scenario", "scenario"),
            Column("Shared-L2 occ.", "shared_occupancy", occupancy),
            Column("Shared-L2 inv.", "shared_invalidations", invalidations),
            Column("Private-L2 occ.", "private_occupancy", occupancy),
            Column("Private-L2 inv.", "private_invalidations", invalidations),
        ],
        title="Mix sweep: directory occupancy and forced invalidations (Cuckoo 4w 1x)",
    )
