"""Experiment drivers: one module per table/figure of the paper.

Every module exposes a ``run(...)`` function returning a plain result
object (dataclass or dict of series) and a ``format_table(result)``
function that renders it as the rows the paper plots.  The
simulation-based drivers additionally expose a ``grid(...)`` function
declaring their sweep as a :class:`repro.engine.spec.RunGrid`; ``run``
accepts a ``runner=`` keyword to execute that grid through a configured
:class:`repro.engine.runner.ParallelRunner` (parallel workers plus the
content-addressed result cache).  The benchmark harnesses in
``benchmarks/``, the examples in ``examples/`` and the ``repro-run`` CLI
are thin wrappers around these drivers.

=====================  ====================================================
Module                 Paper artefact
=====================  ====================================================
``fig04_scalability``  Figure 4 — area/energy scalability of the baselines
``fig07_hash``         Figure 7 — d-ary cuckoo hash characteristics
``fig08_occupancy``    Figure 8 — average directory occupancy per workload
``fig09_provisioning`` Figure 9 — insertion attempts / failures vs. sizing
``fig10_attempts``     Figure 10 — average insertion attempts per workload
``fig11_worst_case``   Figure 11 — worst-case insertion-attempt distribution
``fig12_invalidations`` Figure 12 — forced-invalidation rate comparison
``fig13_power_area``   Figure 13 — power/area comparison to 1024 cores
=====================  ====================================================
"""

from repro.experiments import common
from repro.experiments.ablation_hash_functions import run as run_hash_ablation
from repro.experiments.fig04_scalability import run as run_fig04
from repro.experiments.fig07_hash_characteristics import run as run_fig07
from repro.experiments.fig08_occupancy import run as run_fig08
from repro.experiments.fig09_provisioning import run as run_fig09
from repro.experiments.fig10_insertion_attempts import run as run_fig10
from repro.experiments.fig11_worst_case import run as run_fig11
from repro.experiments.fig12_invalidations import run as run_fig12
from repro.experiments.fig13_power_area import run as run_fig13

__all__ = [
    "common",
    "run_hash_ablation",
    "run_fig04",
    "run_fig07",
    "run_fig08",
    "run_fig09",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
]
