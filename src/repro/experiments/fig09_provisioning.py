"""Figure 9 — Cuckoo directory sizing sweep.

Sweeps the Cuckoo directory geometry from 2x over-provisioned down to
3/8x under-provisioned for both system configurations and reports, for
each geometry, the average number of insertion attempts and the forced
invalidation rate, averaged across the workload suite.  Under-provisioned
designs show the exponential blow-up the paper describes; 1x (Shared-L2)
and 1.5x (Private-L2) are sufficient for near-zero invalidations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.frame import Column, SweepFrame
from repro.analysis.tables import format_percentage
from repro.engine import ParallelRunner, RunGrid, RunSpec, serial_runner
from repro.experiments import common
from repro.workloads.suite import WORKLOAD_NAMES

__all__ = ["ProvisioningPoint", "ProvisioningResult", "run", "grid", "format_table",
           "SHARED_L2_GEOMETRIES", "PRIVATE_L2_GEOMETRIES"]

#: (ways, provisioning factor, paper label) — the Shared-L2 sweep of Figure 9.
SHARED_L2_GEOMETRIES: Sequence[Tuple[int, float, str]] = (
    (4, 2.0, "4 x 1024 (2x)"),
    (3, 1.5, "3 x 1024 (1.5x)"),
    (4, 1.0, "4 x 512 (1x)"),
    (3, 0.75, "3 x 512 (3/4x)"),
    (4, 0.5, "4 x 256 (1/2x)"),
    (3, 0.375, "3 x 256 (3/8x)"),
)

#: (ways, provisioning factor, paper label) — the Private-L2 sweep of Figure 9.
PRIVATE_L2_GEOMETRIES: Sequence[Tuple[int, float, str]] = (
    (4, 2.0, "4 x 8192 (2x)"),
    (3, 1.5, "3 x 8192 (1.5x)"),
    (8, 1.0, "8 x 2048 (1x)"),
    (3, 0.75, "3 x 4096 (3/4x)"),
    (8, 0.5, "8 x 1024 (1/2x)"),
    (3, 0.375, "3 x 2048 (3/8x)"),
)


@dataclass
class ProvisioningPoint:
    """Averaged behaviour of one directory geometry."""

    label: str
    ways: int
    provisioning: float
    average_insertion_attempts: float
    forced_invalidation_rate: float
    per_workload_attempts: Dict[str, float]
    per_workload_invalidation_rate: Dict[str, float]


@dataclass
class ProvisioningResult:
    shared_l2: List[ProvisioningPoint]
    private_l2: List[ProvisioningPoint]

    def configurations(self) -> Dict[str, List[ProvisioningPoint]]:
        return {"Shared L2": self.shared_l2, "Private L2": self.private_l2}


def _spec(
    workload: str,
    tracked_level: str,
    ways: int,
    provisioning: float,
    scale: int,
    measure_accesses: int,
    seed: int,
) -> RunSpec:
    return RunSpec(
        workload=workload,
        tracked_level=tracked_level,
        organization="cuckoo",
        ways=ways,
        provisioning=provisioning,
        scale=scale,
        measure_accesses=measure_accesses,
        seed=seed,
    )


def grid(
    workloads: Optional[Sequence[str]] = None,
    scale: int = common.DEFAULT_SCALE,
    measure_accesses: int = common.DEFAULT_MEASURE_ACCESSES,
    seed: int = 0,
) -> RunGrid:
    """The Figure 9 sweep: every geometry × workload, both configurations."""
    names = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    sweep = RunGrid()
    for level, geometries in (
        ("L1", SHARED_L2_GEOMETRIES),
        ("L2", PRIVATE_L2_GEOMETRIES),
    ):
        for ways, provisioning, _label in geometries:
            for name in names:
                sweep.add(
                    _spec(name, level, ways, provisioning, scale, measure_accesses, seed)
                )
    return sweep


def _sweep(
    report,
    tracked_level: str,
    geometries: Sequence[Tuple[int, float, str]],
    workload_names: Sequence[str],
    scale: int,
    measure_accesses: int,
    seed: int,
) -> List[ProvisioningPoint]:
    points: List[ProvisioningPoint] = []
    for ways, provisioning, label in geometries:
        attempts: Dict[str, float] = {}
        invalidations: Dict[str, float] = {}
        for name in workload_names:
            result = report.result_for(
                _spec(name, tracked_level, ways, provisioning, scale, measure_accesses, seed)
            )
            attempts[name] = result.average_insertion_attempts
            invalidations[name] = result.forced_invalidation_rate
        # One streaming reduction per geometry; the accumulators add in
        # workload order, so the means match the former sum()/len() loops
        # bit-for-bit.
        summary = SweepFrame.aggregate(
            (
                {"attempts": attempts[name], "invalidations": invalidations[name]}
                for name in attempts
            ),
            group_by=(),
            metrics={"attempts": "mean", "invalidations": "mean"},
        ).rows()
        means = summary[0] if summary else {"attempts": 0.0, "invalidations": 0.0}
        points.append(
            ProvisioningPoint(
                label=label,
                ways=ways,
                provisioning=provisioning,
                average_insertion_attempts=means["attempts"],
                forced_invalidation_rate=means["invalidations"],
                per_workload_attempts=attempts,
                per_workload_invalidation_rate=invalidations,
            )
        )
    return points


def run(
    workloads: Optional[Sequence[str]] = None,
    scale: int = common.DEFAULT_SCALE,
    measure_accesses: int = common.DEFAULT_MEASURE_ACCESSES,
    seed: int = 0,
    runner: Optional[ParallelRunner] = None,
) -> ProvisioningResult:
    """Reproduce Figure 9 on the scaled-down system."""
    names = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    runner = runner if runner is not None else serial_runner()
    report = runner.run(grid(names, scale, measure_accesses, seed))
    shared = _sweep(
        report, "L1", SHARED_L2_GEOMETRIES, names, scale, measure_accesses, seed
    )
    private = _sweep(
        report, "L2", PRIVATE_L2_GEOMETRIES, names, scale, measure_accesses, seed
    )
    return ProvisioningResult(shared_l2=shared, private_l2=private)


def format_table(result: ProvisioningResult) -> str:
    columns = [
        Column("Geometry", "label"),
        Column("Avg insertion attempts", "attempts", lambda value: f"{value:.2f}"),
        Column("Forced invalidation rate", "invalidations", format_percentage),
    ]
    sections: List[str] = []
    for config_name, points in result.configurations().items():
        frame = SweepFrame.from_rows(
            {
                "label": point.label,
                "attempts": point.average_insertion_attempts,
                "invalidations": point.forced_invalidation_rate,
            }
            for point in points
        )
        sections.append(
            frame.render(
                columns,
                title=f"Figure 9 ({config_name}): Cuckoo directory sizing sweep",
            )
        )
    return "\n\n".join(sections)
