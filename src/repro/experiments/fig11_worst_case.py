"""Figure 11 — worst-case insertion-attempt distributions.

Plots the distribution of insertion attempts (fraction of insert
operations needing 1, 2, …, 32 attempts) for the benchmarks with the
longest-tailed behaviour: OLTP Oracle in the Shared-L2 configuration and
ocean in the Private-L2 configuration, using the chosen directory designs
of Section 5.3.  The expectation the paper verifies is an exponentially
decaying tail with essentially no mass at the 32-attempt cut-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.frame import SweepFrame
from repro.analysis.tables import format_percentage
from repro.engine import ParallelRunner, RunGrid, RunSpec, serial_runner
from repro.experiments import common
from repro.experiments.fig10_insertion_attempts import (
    PRIVATE_L2_DESIGN,
    SHARED_L2_DESIGN,
)

__all__ = ["WorstCaseResult", "run", "grid", "format_table"]


@dataclass
class WorstCaseResult:
    """Attempt distributions, keyed by a 'workload (configuration)' label."""

    distributions: Dict[str, Dict[int, float]]
    max_attempts: int = 32


def _cases(shared_workload: str, private_workload: str):
    return (
        (shared_workload, "L1", SHARED_L2_DESIGN, "Shared L2"),
        (private_workload, "L2", PRIVATE_L2_DESIGN, "Private L2"),
    )


def _spec(
    workload: str,
    tracked_level: str,
    design: tuple,
    scale: int,
    measure_accesses: int,
    seed: int,
) -> RunSpec:
    ways, provisioning = design
    return RunSpec(
        workload=workload,
        tracked_level=tracked_level,
        organization="cuckoo",
        ways=ways,
        provisioning=provisioning,
        scale=scale,
        measure_accesses=measure_accesses,
        seed=seed,
    )


def grid(
    scale: int = common.DEFAULT_SCALE,
    measure_accesses: int = common.DEFAULT_MEASURE_ACCESSES,
    seed: int = 0,
    shared_workload: str = "Oracle",
    private_workload: str = "ocean",
) -> RunGrid:
    """The Figure 11 points: the two longest-tailed workload/config pairs."""
    return RunGrid(
        _spec(name, level, design, scale, measure_accesses, seed)
        for name, level, design, _label in _cases(shared_workload, private_workload)
    )


def run(
    scale: int = common.DEFAULT_SCALE,
    measure_accesses: int = common.DEFAULT_MEASURE_ACCESSES,
    seed: int = 0,
    shared_workload: str = "Oracle",
    private_workload: str = "ocean",
    runner: Optional[ParallelRunner] = None,
) -> WorstCaseResult:
    """Reproduce Figure 11 on the scaled-down system."""
    runner = runner if runner is not None else serial_runner()
    report = runner.run(
        grid(scale, measure_accesses, seed, shared_workload, private_workload)
    )
    distributions: Dict[str, Dict[int, float]] = {}
    for name, level, design, config_label in _cases(shared_workload, private_workload):
        point = report.result_for(
            _spec(name, level, design, scale, measure_accesses, seed)
        )
        distributions[f"{name} ({config_label})"] = point.attempt_distribution()
    return WorstCaseResult(distributions=distributions)


def format_table(result: WorstCaseResult) -> str:
    labels = list(result.distributions)
    max_attempt = max(
        (max(d) for d in result.distributions.values() if d), default=1
    )
    frame = SweepFrame.from_rows(
        {"attempts": attempts, "case": label, "fraction": fraction}
        for label, distribution in result.distributions.items()
        for attempts, fraction in distribution.items()
    )
    return frame.pivot(
        index="attempts",
        columns="case",
        value="fraction",
        index_label="Insertion attempts",
        index_order=range(1, max_attempt + 1),
        column_order=labels,
        default=0.0,
        fmt=format_percentage,
    ).render(title="Figure 11: worst-case insertion attempt distributions")
