"""Figure 11 — worst-case insertion-attempt distributions.

Plots the distribution of insertion attempts (fraction of insert
operations needing 1, 2, …, 32 attempts) for the benchmarks with the
longest-tailed behaviour: OLTP Oracle in the Shared-L2 configuration and
ocean in the Private-L2 configuration, using the chosen directory designs
of Section 5.3.  The expectation the paper verifies is an exponentially
decaying tail with essentially no mass at the 32-attempt cut-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.tables import format_percentage, render_table
from repro.config import CacheLevel
from repro.experiments import common
from repro.experiments.fig10_insertion_attempts import (
    PRIVATE_L2_DESIGN,
    SHARED_L2_DESIGN,
)
from repro.workloads.suite import get_workload

__all__ = ["WorstCaseResult", "run", "format_table"]


@dataclass
class WorstCaseResult:
    """Attempt distributions, keyed by a 'workload (configuration)' label."""

    distributions: Dict[str, Dict[int, float]]
    max_attempts: int = 32


def run(
    scale: int = common.DEFAULT_SCALE,
    measure_accesses: int = common.DEFAULT_MEASURE_ACCESSES,
    seed: int = 0,
    shared_workload: str = "Oracle",
    private_workload: str = "ocean",
) -> WorstCaseResult:
    """Reproduce Figure 11 on the scaled-down system."""
    distributions: Dict[str, Dict[int, float]] = {}

    cases = (
        (shared_workload, CacheLevel.L1, SHARED_L2_DESIGN, "Shared L2"),
        (private_workload, CacheLevel.L2, PRIVATE_L2_DESIGN, "Private L2"),
    )
    for workload_name, tracked_level, (ways, provisioning), config_label in cases:
        system = common.scaled_system(tracked_level, scale=scale)
        workload = get_workload(workload_name)
        factory = common.cuckoo_factory(system, ways=ways, provisioning=provisioning)
        run_result = common.run_workload(
            workload,
            system,
            factory,
            measure_accesses=measure_accesses,
            seed=seed,
        )
        label = f"{workload_name} ({config_label})"
        distributions[label] = run_result.result.attempt_distribution()
    return WorstCaseResult(distributions=distributions)


def format_table(result: WorstCaseResult) -> str:
    labels = list(result.distributions)
    headers = ["Insertion attempts"] + labels
    max_attempt = max(
        (max(d) for d in result.distributions.values() if d), default=1
    )
    rows: List[List[object]] = []
    for attempts in range(1, max_attempt + 1):
        row: List[object] = [attempts]
        for label in labels:
            fraction = result.distributions[label].get(attempts, 0.0)
            row.append(format_percentage(fraction))
        rows.append(row)
    return render_table(
        headers,
        rows,
        title="Figure 11: worst-case insertion attempt distributions",
    )
