"""Figure 7 — d-ary cuckoo hash characteristics.

The paper characterises the raw hashing technique, independent of any
coherence behaviour: random keys are inserted into 2/3/4/8-ary cuckoo
tables (indexed with strong hash functions to remove hash-function bias)
and two quantities are recorded as a function of the table occupancy at
insertion time:

* the average number of insertion attempts until a successful insertion,
  and
* the probability that an insertion fails to find a vacant slot within 32
  attempts.

The paper notes the curves depend only on occupancy, not on the absolute
table capacity, which the accompanying test suite verifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.frame import SweepFrame
from repro.analysis.stats import bin_by
from repro.analysis.tables import format_percentage
from repro.core.cuckoo_hash import CuckooHashTable
from repro.hashing.strong import StrongHashFamily

__all__ = ["HashCharacteristics", "run", "format_table"]


@dataclass
class HashCharacteristics:
    """Binned insertion behaviour for one table arity."""

    arity: int
    occupancy_bins: List[float] = field(default_factory=list)
    average_attempts: List[float] = field(default_factory=list)
    failure_probability: List[float] = field(default_factory=list)

    def as_series(self) -> Dict[float, Tuple[float, float]]:
        return {
            occupancy: (attempts, failures)
            for occupancy, attempts, failures in zip(
                self.occupancy_bins, self.average_attempts, self.failure_probability
            )
        }


def _measure_arity(
    arity: int,
    capacity: int,
    num_keys: int,
    max_attempts: int,
    bin_width: float,
    seed: int,
) -> HashCharacteristics:
    num_sets = max(1, capacity // arity)
    hash_family = StrongHashFamily(arity, num_sets, seed=seed)
    table = CuckooHashTable(
        num_ways=arity,
        num_sets=num_sets,
        hash_family=hash_family,
        max_attempts=max_attempts,
    )
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1 << 48, size=num_keys, dtype=np.int64).tolist()
    # Batched hashing: every offered key's candidate indices come from one
    # vectorized sweep, so the per-key duplicate check and insertion pay no
    # scalar hashing at all (the displacement walk still hashes the keys it
    # displaces, which cannot be known in advance).
    all_indices = hash_family.batch_indices(keys)

    attempt_samples: List[Tuple[float, float]] = []
    failure_samples: List[Tuple[float, float]] = []
    for key, candidates in zip(keys, all_indices):
        if table.find(key, candidates) is not None:
            continue
        occupancy_before = table.occupancy()
        if occupancy_before >= 1.0:
            break
        result = table.insert(key, candidate_indices=candidates)
        attempt_samples.append((occupancy_before, float(result.attempts)))
        failure_samples.append((occupancy_before, 0.0 if result.success else 1.0))

    attempts_binned = bin_by(attempt_samples, bin_width)
    failures_binned = bin_by(failure_samples, bin_width)
    bins = sorted(set(attempts_binned) | set(failures_binned))
    return HashCharacteristics(
        arity=arity,
        occupancy_bins=bins,
        average_attempts=[attempts_binned.get(b, 0.0) for b in bins],
        failure_probability=[failures_binned.get(b, 0.0) for b in bins],
    )


def run(
    arities: Sequence[int] = (2, 3, 4, 8),
    capacity: int = 32_768,
    num_keys: int = 100_000,
    max_attempts: int = 32,
    bin_width: float = 0.05,
    seed: int = 1,
) -> Dict[int, HashCharacteristics]:
    """Reproduce Figure 7.

    ``num_keys`` random values are offered to each table; insertion stops
    when the table is full, so the sweep covers the whole occupancy range.
    Returns a mapping from arity to its binned characteristics.
    """
    results: Dict[int, HashCharacteristics] = {}
    for arity in arities:
        results[arity] = _measure_arity(
            arity=arity,
            capacity=capacity,
            num_keys=num_keys,
            max_attempts=max_attempts,
            bin_width=bin_width,
            seed=seed + arity,
        )
    return results


def format_table(results: Dict[int, HashCharacteristics]) -> str:
    """Render both panels of Figure 7 as one table."""
    arities = sorted(results)
    all_bins = sorted({b for r in results.values() for b in r.occupancy_bins})
    # Cells are pre-formatted because the two panels use different number
    # formats; the pivot then only places them, leaving absent
    # (occupancy, column) combinations as "-" placeholders.
    frame = SweepFrame.from_rows(
        {"occupancy": f"{occupancy:.3f}", "column": column, "cell": cell}
        for arity in arities
        for occupancy, (attempts, failures) in results[arity].as_series().items()
        for column, cell in (
            (f"{arity}-ary attempts", f"{attempts:.2f}"),
            (f"{arity}-ary failure", format_percentage(failures)),
        )
    )
    column_order = [f"{arity}-ary attempts" for arity in arities] + [
        f"{arity}-ary failure" for arity in arities
    ]
    return frame.pivot(
        index="occupancy",
        columns="column",
        value="cell",
        index_label="Occupancy",
        index_order=[f"{occupancy:.3f}" for occupancy in all_bins],
        column_order=column_order,
    ).render(
        title="Figure 7: d-ary cuckoo hash insertion attempts and failure probability"
    )
