"""Figure 12 — forced-invalidation rate comparison.

Replays each Table 2 workload against four directory organizations on
identical systems and reports forced invalidations as a fraction of
directory entry insertions:

* **Sparse 2x** — 8-way set-associative, 2x capacity over-provisioning;
* **Sparse 8x** — 8-way set-associative, 8x over-provisioning;
* **Skewed 2x** — 4-way skewed-associative, 2x over-provisioning
  (same capacity as Sparse 2x, conventional single-step victimisation);
* **Cuckoo** — the chosen designs of Section 5.3: 4-way at 1x for
  Shared-L2, 3-way at 1.5x for Private-L2 (half the capacity of the 2x
  baselines).

The expected ordering — Sparse 2x worst, Skewed 2x better on the skewed
server workloads, Sparse 8x acceptable but still conflicting, Cuckoo
near-zero despite the smallest capacity — is what the accompanying
benchmark verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.tables import format_percentage, render_table
from repro.config import CacheLevel, SystemConfig
from repro.directories.base import Directory
from repro.experiments import common
from repro.workloads.suite import WORKLOAD_NAMES, get_workload

__all__ = ["InvalidationResult", "run", "format_table", "ORGANIZATION_LABELS"]

ORGANIZATION_LABELS = ("Sparse 2x", "Sparse 8x", "Skewed 2x", "Cuckoo")


@dataclass
class InvalidationResult:
    """Invalidation rate per configuration, organization and workload."""

    shared_l2: Dict[str, Dict[str, float]]
    private_l2: Dict[str, Dict[str, float]]
    cuckoo_label_shared: str = "Cuckoo 1x"
    cuckoo_label_private: str = "Cuckoo 1.5x"

    def configurations(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        return {"Shared L2": self.shared_l2, "Private L2": self.private_l2}


def _factories(
    system: SystemConfig, tracked_level: CacheLevel
) -> Dict[str, Callable[[int, int], Directory]]:
    if tracked_level is CacheLevel.L1:
        cuckoo_ways, cuckoo_provisioning = 4, 1.0
    else:
        cuckoo_ways, cuckoo_provisioning = 3, 1.5
    return {
        "Sparse 2x": common.sparse_factory(system, ways=8, provisioning=2.0),
        "Sparse 8x": common.sparse_factory(system, ways=8, provisioning=8.0),
        "Skewed 2x": common.skewed_factory(system, ways=4, provisioning=2.0),
        "Cuckoo": common.cuckoo_factory(
            system, ways=cuckoo_ways, provisioning=cuckoo_provisioning
        ),
    }


def _measure(
    tracked_level: CacheLevel,
    workload_names: Sequence[str],
    organizations: Sequence[str],
    scale: int,
    measure_accesses: int,
    seed: int,
) -> Dict[str, Dict[str, float]]:
    system = common.scaled_system(tracked_level, scale=scale)
    rates: Dict[str, Dict[str, float]] = {org: {} for org in organizations}
    for name in workload_names:
        workload = get_workload(name)
        factories = _factories(system, tracked_level)
        for org in organizations:
            run_result = common.run_workload(
                workload,
                system,
                factories[org],
                measure_accesses=measure_accesses,
                seed=seed,
            )
            stats = run_result.result.directory_stats
            rates[org][name] = stats.forced_invalidation_rate
    return rates


def run(
    workloads: Optional[Sequence[str]] = None,
    organizations: Sequence[str] = ORGANIZATION_LABELS,
    scale: int = common.DEFAULT_SCALE,
    measure_accesses: int = common.DEFAULT_MEASURE_ACCESSES,
    seed: int = 0,
) -> InvalidationResult:
    """Reproduce Figure 12 on the scaled-down system."""
    names = list(workloads) if workloads is not None else list(WORKLOAD_NAMES)
    shared = _measure(
        CacheLevel.L1, names, organizations, scale, measure_accesses, seed
    )
    private = _measure(
        CacheLevel.L2, names, organizations, scale, measure_accesses, seed
    )
    return InvalidationResult(shared_l2=shared, private_l2=private)


def format_table(result: InvalidationResult) -> str:
    sections: List[str] = []
    for config_name, rates in result.configurations().items():
        organizations = list(rates)
        workload_names = list(next(iter(rates.values()), {}))
        headers = ["Workload"] + organizations
        rows: List[List[object]] = []
        for name in workload_names:
            row: List[object] = [name]
            for org in organizations:
                row.append(format_percentage(rates[org].get(name, 0.0), digits=3))
            rows.append(row)
        sections.append(
            render_table(
                headers,
                rows,
                title=f"Figure 12 ({config_name}): directory forced-invalidation rates",
            )
        )
    return "\n\n".join(sections)
